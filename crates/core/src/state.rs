//! The global state function σ and entity states (§2).
//!
//! Each entity has a state; `σ : E → S` determines the global state of the
//! system. The state of an object may be a [`Context`] — such an object is a
//! *context object* (e.g. a Unix directory). Compound-name resolution
//! consults σ at every step: `c(n1 n2…nk) = σ(c(n1))(n2…nk)` when `σ(c(n1))`
//! is a context.
//!
//! [`SystemState`] is σ made concrete: a table of activities and a table of
//! objects, each with a state. It deliberately knows nothing about machines,
//! networks or messages — those live in the `naming-sim` substrate. The core
//! model only needs "entities with states, some of which are contexts".
//!
//! ## Sharding
//!
//! Internally the object table is split into up to [`MAX_SHARDS`]
//! *shards*, each an independently versioned, `Arc`-shared column of the
//! table. An [`ObjectId`] packs `(shard, local index)` into its 32 bits
//! ([`SHARD_BITS`] high bits select the shard), so a state created with
//! [`SystemState::new`] — one shard — hands out ids identical to the
//! pre-sharding dense indices. Sharding buys two things at scale:
//!
//! * **Per-shard generations.** Every shard carries its own
//!   `naming_version`/`epoch` pair, advanced only when *that* shard is
//!   written. Caches ([`crate::memo::ResolutionMemo`],
//!   [`crate::snapshot::SnapshotMemo`]) validate against the generations of
//!   just the shards a resolution walked, so a write to one zone leaves
//!   every other zone's cached footprints intact.
//! * **Copy-on-publish.** `SystemState::clone` clones a `Vec<Arc<Shard>>` —
//!   O(shards), not O(objects). Mutation goes through `Arc::make_mut`, so
//!   the first write to a shard after a clone copies that shard alone.
//!   [`crate::snapshot::StateSnapshot::capture`] therefore shares every
//!   untouched shard between the published snapshot and the staging state.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::entity::{ActivityId, Entity, ObjectId};
use crate::lease::ZoneSerial;
use crate::name::{CompoundName, Name};

/// Number of high bits of an [`ObjectId`] that select the shard.
pub const SHARD_BITS: u32 = 10;

/// Maximum number of shards a [`SystemState`] may be created with.
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// Number of low bits of an [`ObjectId`] that index within a shard.
pub const LOCAL_BITS: u32 = 32 - SHARD_BITS;

/// Maximum number of objects a single shard can hold.
pub const MAX_SHARD_OBJECTS: usize = 1 << LOCAL_BITS;

const LOCAL_MASK: usize = (1 << LOCAL_BITS) - 1;

/// A segment of a structured object: literal content or an embedded name.
///
/// The paper (§4, §6 Example 2) models documents, program sources and
/// multi-file executables as objects with *embedded names*: "Names can be
/// embedded in objects to build structured objects."
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Literal content.
    Text(String),
    /// An embedded name referring to another entity (e.g. `\include{ch1}`).
    Embedded(CompoundName),
}

/// The state of a structured object: a sequence of segments.
///
/// "The meaning of a structured object depends on the meanings of the
/// embedded names" — resolving every [`Segment::Embedded`] under a given
/// resolution rule yields the object's meaning.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    segments: Vec<Segment>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Document {
        Document::default()
    }

    /// Creates a document from segments.
    pub fn from_segments(segments: Vec<Segment>) -> Document {
        Document { segments }
    }

    /// Appends a literal text segment.
    pub fn push_text(&mut self, text: impl Into<String>) -> &mut Document {
        self.segments.push(Segment::Text(text.into()));
        self
    }

    /// Appends an embedded name segment.
    pub fn push_embedded(&mut self, name: CompoundName) -> &mut Document {
        self.segments.push(Segment::Embedded(name));
        self
    }

    /// The segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterates over just the embedded names.
    pub fn embedded_names(&self) -> impl Iterator<Item = &CompoundName> {
        self.segments.iter().filter_map(|s| match s {
            Segment::Embedded(n) => Some(n),
            Segment::Text(_) => None,
        })
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if the document has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// The state of an object: `S_O`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectState {
    /// The object is a *context object* (e.g. a directory).
    Context(Context),
    /// Opaque byte content (e.g. an ordinary file).
    Data(Vec<u8>),
    /// A structured object containing embedded names (§6 Example 2).
    Document(Document),
    /// No interesting state.
    Empty,
}

impl ObjectState {
    /// The context, if this object is a context object.
    pub fn as_context(&self) -> Option<&Context> {
        match self {
            ObjectState::Context(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable access to the context, if this object is a context object.
    pub fn as_context_mut(&mut self) -> Option<&mut Context> {
        match self {
            ObjectState::Context(c) => Some(c),
            _ => None,
        }
    }

    /// True if this object's state is a context (`σ(o) ∈ C`).
    pub fn is_context(&self) -> bool {
        matches!(self, ObjectState::Context(_))
    }
}

/// The state of an activity: `S_A`.
///
/// The paper leaves activity states abstract; the model only needs them to
/// be disjoint from object states. We record liveness and an opaque tag the
/// substrate may use.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityState {
    /// Whether the activity is still running.
    pub alive: bool,
    /// Substrate-defined tag (e.g. the hosting machine's index).
    pub tag: u64,
}

#[derive(Clone, Debug)]
struct ActivityRecord {
    label: String,
    state: ActivityState,
}

/// Per-shard arena of object labels: one contiguous byte buffer plus
/// `(offset, len)` spans, indexed by the `u32` a record stores instead of
/// a boxed `String`.
///
/// The shard is the natural arena: it is cloned as a unit by
/// `Arc::make_mut` and dropped as a unit, so labels need no individual
/// ownership. At the million-context tier this replaces ~10⁶ separate
/// string allocations per shard column with two, and shrinks each object
/// record by `String`'s 24 bytes (plus allocator overhead per label).
/// Labels are immutable after creation — the arena is append-only, which
/// is also what makes the spans stable across `Arc::make_mut` copies.
#[derive(Clone, Debug, Default)]
struct LabelArena {
    bytes: String,
    spans: Vec<(u32, u32)>,
}

impl LabelArena {
    /// Appends a label, returning its index.
    fn push(&mut self, label: &str) -> u32 {
        let start = u32::try_from(self.bytes.len()).expect("label arena overflow");
        let len = u32::try_from(label.len()).expect("label too long");
        self.bytes.push_str(label);
        let idx = u32::try_from(self.spans.len()).expect("label arena overflow");
        self.spans.push((start, len));
        idx
    }

    #[inline]
    fn get(&self, idx: u32) -> &str {
        let (start, len) = self.spans[idx as usize];
        &self.bytes[start as usize..(start + len) as usize]
    }
}

#[derive(Clone, Debug)]
struct ObjectRecord {
    /// Index into the owning shard's [`LabelArena`].
    label: u32,
    state: ObjectState,
}

/// One `Arc`-shared column of the object table, with its own generation
/// counters. See the module docs for the sharding design.
#[derive(Clone, Debug, Default)]
struct Shard {
    objects: Vec<ObjectRecord>,
    /// Arena holding every object label in this shard; `ObjectRecord.label`
    /// indexes into it.
    labels: LabelArena,
    /// Shard-local mirror of [`SystemState::naming_version`]: advanced only
    /// when *this* shard is written.
    naming_version: u64,
    /// Shard-local mirror of [`SystemState::epoch`].
    epoch: u64,
    /// SOA-style zone serial: advanced (wrapping) on exactly the writes
    /// that advance `naming_version`. Unlike the generation counters,
    /// serials are *published* facts — anti-entropy ships them to
    /// replicas, which validate leased cache entries against their local
    /// copy instead of against σ. See [`crate::lease`].
    serial: ZoneSerial,
}

/// The global state function σ: tables of activities and objects with their
/// states.
///
/// # Examples
///
/// ```
/// use naming_core::state::{ObjectState, SystemState};
/// use naming_core::name::Name;
/// use naming_core::entity::Entity;
///
/// let mut sys = SystemState::new();
/// let root = sys.add_context_object("root");
/// let etc = sys.add_context_object("etc");
/// sys.bind(root, Name::new("etc"), etc).unwrap();
/// assert_eq!(sys.context(root).unwrap().lookup(Name::new("etc")), Entity::Object(etc));
/// ```
///
/// A state is created with a fixed shard count ([`SystemState::with_shards`];
/// [`SystemState::new`] is the single-shard case). Object creation routes to
/// the *default shard* ([`SystemState::set_default_shard`]) unless an
/// explicit `*_in` constructor is used; an object's shard is fixed for life
/// and recoverable from its id ([`SystemState::shard_of`]).
#[derive(Clone, Debug)]
pub struct SystemState {
    activities: Vec<ActivityRecord>,
    shards: Vec<Arc<Shard>>,
    /// Shard that [`SystemState::add_object`] and friends allocate into.
    default_shard: usize,
    /// Bumped on every naming-relevant mutation (bind, unbind, and any
    /// handout of mutable state). A [`crate::memo::ResolutionMemo`] entry
    /// validated at naming version `v` is still valid, with no further
    /// checks, while the state's naming version is `v`.
    naming_version: u64,
    /// Bumped when mutable access could have *replaced* state wholesale
    /// ([`SystemState::context_mut`] / [`SystemState::object_state_mut`]):
    /// replacement can rewind a context's own version counter, so
    /// per-context generations are no longer conclusive and memo entries
    /// from an earlier epoch must be discarded.
    epoch: u64,
    /// Bumped on *every* mutation, including object/activity creation and
    /// activity-state handouts (which do not move `naming_version`).
    /// Lets a publisher detect an empty staged delta exactly.
    revision: u64,
}

impl Default for SystemState {
    fn default() -> SystemState {
        SystemState::with_shards(1)
    }
}

/// Error produced by [`SystemState`] operations on non-context objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotAContextError {
    /// The offending object.
    pub object: ObjectId,
}

impl fmt::Display for NotAContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object {} is not a context object", self.object)
    }
}

impl std::error::Error for NotAContextError {}

impl SystemState {
    /// Creates an empty system state: no activities, no objects, one shard.
    ///
    /// With a single shard, object ids are exactly the dense creation-order
    /// indices.
    pub fn new() -> SystemState {
        SystemState::with_shards(1)
    }

    /// Creates an empty system state whose object table is split into
    /// `shards` independently versioned shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn with_shards(shards: usize) -> SystemState {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        SystemState {
            activities: Vec::new(),
            shards: (0..shards).map(|_| Arc::new(Shard::default())).collect(),
            default_shard: 0,
            naming_version: 0,
            epoch: 0,
            revision: 0,
        }
    }

    // --- shards -----------------------------------------------------------

    #[inline]
    fn split(o: ObjectId) -> (usize, usize) {
        let i = o.index();
        (i >> LOCAL_BITS, i & LOCAL_MASK)
    }

    #[inline]
    fn pack(shard: usize, local: usize) -> ObjectId {
        ObjectId::from_index(((shard as u32) << LOCAL_BITS) | local as u32)
    }

    /// Number of shards the object table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that holds object `o` (encoded in the id's high bits).
    pub fn shard_of(&self, o: ObjectId) -> usize {
        Self::split(o).0
    }

    /// The shard an [`ObjectId`] encodes, computed from the id alone — no
    /// state access. This is what lets a *client* stamp cache entries
    /// with zone dependencies without consulting σ: the shard is
    /// configuration (baked into the id at creation), not state.
    pub fn shard_of_id(o: ObjectId) -> usize {
        Self::split(o).0
    }

    /// The shard that [`SystemState::add_object`] currently allocates into.
    pub fn default_shard(&self) -> usize {
        self.default_shard
    }

    /// Routes subsequent [`SystemState::add_object`] /
    /// [`SystemState::add_context_object`] / … calls to shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn set_default_shard(&mut self, shard: usize) {
        assert!(shard < self.shards.len(), "no shard {shard}");
        self.default_shard = shard;
    }

    /// Shard-local naming version: advanced exactly when a naming-relevant
    /// write lands in shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.shards[shard].naming_version
    }

    /// Shard-local epoch: advanced exactly when an escape-hatch handout
    /// ([`SystemState::context_mut`] / [`SystemState::object_state_mut`])
    /// targets shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch
    }

    /// The SOA-style zone serial of shard `shard`: advanced on exactly
    /// the naming writes that advance [`SystemState::shard_version`],
    /// with wrapping ([`ZoneSerial`]) arithmetic. This is the value
    /// anti-entropy publishes to replicas.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn shard_serial(&self, shard: usize) -> ZoneSerial {
        self.shards[shard].serial
    }

    /// The zone serial of every shard, in shard order.
    pub fn shard_serials(&self) -> Vec<ZoneSerial> {
        self.shards.iter().map(|s| s.serial).collect()
    }

    /// `(naming_version, epoch)` of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn shard_stamp(&self, shard: usize) -> (u64, u64) {
        let s = &self.shards[shard];
        (s.naming_version, s.epoch)
    }

    /// `(naming_version, epoch)` of every shard, in shard order.
    pub fn shard_stamps(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| (s.naming_version, s.epoch))
            .collect()
    }

    /// Number of objects in shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state.
    pub fn shard_object_count(&self, shard: usize) -> usize {
        self.shards[shard].objects.len()
    }

    /// How many shards `self` physically shares (same allocation, untouched
    /// since the fork) with `other` — a clone-lineage diagnostic for the
    /// copy-on-publish machinery.
    pub fn shards_shared_with(&self, other: &SystemState) -> usize {
        self.shards
            .iter()
            .zip(other.shards.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Monotonic counter of *all* mutations, including object/activity
    /// creation. Two observations of equal revision bracket a window with
    /// no mutation at all; see
    /// [`ConcurrentService::publish`](../../naming_resolver/concurrent/struct.ConcurrentService.html)
    /// for the empty-delta fast path built on it.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Records shard write heat: the `state.shard.writes` histogram takes
    /// the *shard index* as its value, so one histogram exposes the whole
    /// write distribution (a hot shard shows up as a heavy bucket).
    /// Observational only — compiled out without the `telemetry` feature.
    #[inline]
    fn note_shard_write(shard: usize) {
        #[cfg(feature = "telemetry")]
        naming_telemetry::histogram!("state.shard.writes").record(shard as u64);
        #[cfg(not(feature = "telemetry"))]
        let _ = shard;
    }

    // --- activities -------------------------------------------------------

    /// Adds a live activity and returns its id.
    pub fn add_activity(&mut self, label: impl Into<String>) -> ActivityId {
        let id = ActivityId::from_index(
            u32::try_from(self.activities.len()).expect("activity table overflow"),
        );
        self.revision += 1;
        self.activities.push(ActivityRecord {
            label: label.into(),
            state: ActivityState {
                alive: true,
                tag: 0,
            },
        });
        id
    }

    /// Number of activities ever created.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// The label given at creation.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an id from this state.
    pub fn activity_label(&self, a: ActivityId) -> &str {
        &self.activities[a.index()].label
    }

    /// The activity's state.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an id from this state.
    pub fn activity_state(&self, a: ActivityId) -> &ActivityState {
        &self.activities[a.index()].state
    }

    /// Mutable access to the activity's state.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an id from this state.
    pub fn activity_state_mut(&mut self, a: ActivityId) -> &mut ActivityState {
        self.revision += 1;
        &mut self.activities[a.index()].state
    }

    /// Iterates over all activity ids in creation order.
    pub fn activities(&self) -> impl Iterator<Item = ActivityId> + '_ {
        (0..self.activities.len()).map(|i| ActivityId::from_index(i as u32))
    }

    // --- objects ----------------------------------------------------------

    /// Adds an object with the given state to the default shard and returns
    /// its id.
    pub fn add_object(&mut self, label: impl AsRef<str>, state: ObjectState) -> ObjectId {
        self.add_object_in(self.default_shard, label, state)
    }

    /// Adds an object with the given state to shard `shard` and returns its
    /// id. The label is copied into the shard's label arena.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of this state, or if the shard is
    /// full ([`MAX_SHARD_OBJECTS`]).
    pub fn add_object_in(
        &mut self,
        shard: usize,
        label: impl AsRef<str>,
        state: ObjectState,
    ) -> ObjectId {
        assert!(shard < self.shards.len(), "no shard {shard}");
        self.revision += 1;
        Self::note_shard_write(shard);
        let sh = Arc::make_mut(&mut self.shards[shard]);
        let local = sh.objects.len();
        assert!(
            local < MAX_SHARD_OBJECTS,
            "object table overflow in shard {shard}"
        );
        let label = sh.labels.push(label.as_ref());
        sh.objects.push(ObjectRecord { label, state });
        Self::pack(shard, local)
    }

    /// Adds an object whose state is an empty context (a fresh directory).
    pub fn add_context_object(&mut self, label: impl AsRef<str>) -> ObjectId {
        self.add_object(label, ObjectState::Context(Context::new()))
    }

    /// Adds a fresh directory to shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics like [`SystemState::add_object_in`].
    pub fn add_context_object_in(&mut self, shard: usize, label: impl AsRef<str>) -> ObjectId {
        self.add_object_in(shard, label, ObjectState::Context(Context::new()))
    }

    /// Adds a plain data object.
    pub fn add_data_object(&mut self, label: impl AsRef<str>, data: Vec<u8>) -> ObjectId {
        self.add_object(label, ObjectState::Data(data))
    }

    /// Adds a plain data object to shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics like [`SystemState::add_object_in`].
    pub fn add_data_object_in(
        &mut self,
        shard: usize,
        label: impl AsRef<str>,
        data: Vec<u8>,
    ) -> ObjectId {
        self.add_object_in(shard, label, ObjectState::Data(data))
    }

    /// Adds a structured object with embedded names.
    pub fn add_document_object(&mut self, label: impl AsRef<str>, doc: Document) -> ObjectId {
        self.add_object(label, ObjectState::Document(doc))
    }

    /// Number of objects ever created, across all shards.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.len()).sum()
    }

    #[inline]
    fn record(&self, o: ObjectId) -> &ObjectRecord {
        let (s, l) = Self::split(o);
        &self.shards[s].objects[l]
    }

    /// The label given at creation (resolved from the owning shard's label
    /// arena).
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an id from this state.
    pub fn object_label(&self, o: ObjectId) -> &str {
        let (s, l) = Self::split(o);
        let sh = &self.shards[s];
        sh.labels.get(sh.objects[l].label)
    }

    /// σ applied to an object: its current state.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an id from this state.
    pub fn object_state(&self, o: ObjectId) -> &ObjectState {
        &self.record(o).state
    }

    /// Mutable access to an object's state.
    ///
    /// This is a raw escape hatch: the caller may replace the state
    /// entirely (e.g. turn a context object into a data object), so it
    /// advances both the naming version and the epoch — conservatively
    /// invalidating every memoized resolution. Prefer
    /// [`SystemState::bind`] / [`SystemState::unbind`] on the hot path;
    /// they invalidate only the resolutions that traversed the mutated
    /// context.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not an id from this state.
    pub fn object_state_mut(&mut self, o: ObjectId) -> &mut ObjectState {
        let (s, l) = Self::split(o);
        self.naming_version += 1;
        self.epoch += 1;
        self.revision += 1;
        Self::note_shard_write(s);
        let sh = Arc::make_mut(&mut self.shards[s]);
        sh.naming_version += 1;
        sh.epoch += 1;
        sh.serial = sh.serial.bump();
        &mut sh.objects[l].state
    }

    /// Iterates over all object ids, shard by shard, in creation order
    /// within each shard. For a single-shard state this is exactly global
    /// creation order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(s, sh)| (0..sh.objects.len()).map(move |l| Self::pack(s, l)))
    }

    /// True if `o` is a context object in the current state.
    pub fn is_context_object(&self, o: ObjectId) -> bool {
        self.object_state(o).is_context()
    }

    /// The context of a context object.
    ///
    /// Returns `None` if the object's state is not a context.
    pub fn context(&self, o: ObjectId) -> Option<&Context> {
        self.object_state(o).as_context()
    }

    /// Mutable context of a context object.
    ///
    /// Returns `None` if the object's state is not a context. Like
    /// [`SystemState::object_state_mut`], this is a raw escape hatch
    /// (callers may assign a whole replacement context, rewinding its
    /// version counter), so it advances the epoch. Prefer
    /// [`SystemState::bind`] / [`SystemState::unbind`] for fine-grained
    /// memo invalidation.
    pub fn context_mut(&mut self, o: ObjectId) -> Option<&mut Context> {
        let (s, l) = Self::split(o);
        self.naming_version += 1;
        self.epoch += 1;
        self.revision += 1;
        Self::note_shard_write(s);
        let sh = Arc::make_mut(&mut self.shards[s]);
        sh.naming_version += 1;
        sh.epoch += 1;
        sh.serial = sh.serial.bump();
        sh.objects[l].state.as_context_mut()
    }

    /// Mutable context access for `bind`/`unbind` and other operations
    /// whose effects are fully visible in the context's own version
    /// counter. Does not touch the state-level counters; callers bump
    /// `naming_version` themselves when they mutate.
    fn context_mut_internal(&mut self, o: ObjectId) -> Option<&mut Context> {
        let (s, l) = Self::split(o);
        Arc::make_mut(&mut self.shards[s]).objects[l]
            .state
            .as_context_mut()
    }

    /// Monotonic counter of naming-relevant mutations; see
    /// [`crate::memo::ResolutionMemo`] for how it enables O(1) memo-entry
    /// validation between writes.
    pub fn naming_version(&self) -> u64 {
        self.naming_version
    }

    /// Monotonic counter of wholesale state replacements (raw
    /// `*_mut` escape-hatch handouts). Memo entries recorded under an
    /// older epoch are unconditionally stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Binds `name` to `entity` in the context object `ctx`.
    ///
    /// Advances the context's generation (its version counter), the
    /// owning shard's naming version, and the state's naming version, so
    /// exactly the memoized resolutions that traversed `ctx` become
    /// invalid.
    ///
    /// # Errors
    ///
    /// Returns [`NotAContextError`] if `ctx` is not a context object.
    pub fn bind(
        &mut self,
        ctx: ObjectId,
        name: Name,
        entity: impl Into<Entity>,
    ) -> Result<Option<Entity>, NotAContextError> {
        if !self.is_context_object(ctx) {
            return Err(NotAContextError { object: ctx });
        }
        let (s, _) = Self::split(ctx);
        self.naming_version += 1;
        self.revision += 1;
        Self::note_shard_write(s);
        {
            let sh = Arc::make_mut(&mut self.shards[s]);
            sh.naming_version += 1;
            sh.serial = sh.serial.bump();
        }
        let c = self.context_mut_internal(ctx).expect("checked above");
        Ok(c.bind(name, entity))
    }

    /// Removes the binding for `name` in the context object `ctx`.
    ///
    /// Advances the context's generation and the shard/state naming
    /// versions, like [`SystemState::bind`].
    ///
    /// # Errors
    ///
    /// Returns [`NotAContextError`] if `ctx` is not a context object.
    pub fn unbind(
        &mut self,
        ctx: ObjectId,
        name: Name,
    ) -> Result<Option<Entity>, NotAContextError> {
        if !self.is_context_object(ctx) {
            return Err(NotAContextError { object: ctx });
        }
        let (s, _) = Self::split(ctx);
        self.naming_version += 1;
        self.revision += 1;
        Self::note_shard_write(s);
        {
            let sh = Arc::make_mut(&mut self.shards[s]);
            sh.naming_version += 1;
            sh.serial = sh.serial.bump();
        }
        let c = self.context_mut_internal(ctx).expect("checked above");
        Ok(c.unbind(name))
    }

    /// Looks `name` up in the context object `ctx` (single-step resolution).
    ///
    /// Non-context objects yield [`Entity::Undefined`] for every name, per
    /// the total-function semantics.
    pub fn lookup(&self, ctx: ObjectId, name: Name) -> Entity {
        match self.context(ctx) {
            Some(c) => c.lookup(name),
            None => Entity::Undefined,
        }
    }

    /// Deep-copies the subtree of context objects reachable from `src`,
    /// returning the id of the copy of `src`.
    ///
    /// Every object reachable from `src` along naming-graph edges is
    /// duplicated — context objects *and* the data/document objects bound
    /// inside them — and bindings among copied objects are rewritten to the
    /// copies (including `..`-style back edges). Bindings to activities are
    /// preserved as-is: activities are not part of the subtree. Copies are
    /// allocated in the default shard.
    ///
    /// Used by the embedded-names experiments: "the subtree containing the
    /// structured object can be … relocated or copied without changing the
    /// meaning of the embedded names."
    pub fn deep_copy(&mut self, src: ObjectId) -> ObjectId {
        use std::collections::BTreeMap;
        // First pass: find the reachable object set (contexts traversed).
        let mut reach: Vec<ObjectId> = Vec::new();
        let mut seen: BTreeMap<ObjectId, ()> = BTreeMap::new();
        let mut stack = vec![src];
        while let Some(o) = stack.pop() {
            if seen.insert(o, ()).is_some() {
                continue;
            }
            reach.push(o);
            if let Some(c) = self.context(o) {
                for (_, e) in c.iter() {
                    if let Entity::Object(child) = e {
                        if !seen.contains_key(&child) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        // Second pass: allocate copies.
        let mut map: BTreeMap<ObjectId, ObjectId> = BTreeMap::new();
        for &o in &reach {
            let label = format!("{}~copy", self.object_label(o));
            let state = self.object_state(o).clone();
            let copy = self.add_object(label, state);
            map.insert(o, copy);
        }
        // Third pass: rewrite intra-subtree bindings to the copies.
        for &o in &reach {
            let copy = map[&o];
            if let Some(ctx) = self.context(copy).cloned() {
                let mut rewritten = ctx.clone();
                for (n, e) in ctx.iter() {
                    if let Entity::Object(t) = e {
                        if let Some(&tc) = map.get(&t) {
                            rewritten.bind(n, tc);
                        }
                    }
                }
                // Internal accessor: the copies are fresh objects no memo
                // entry can depend on, so no epoch flush is warranted.
                *self.context_mut_internal(copy).expect("copy is a context") = rewritten;
            }
        }
        map[&src]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_activities() {
        let mut s = SystemState::new();
        let a = s.add_activity("shell");
        let b = s.add_activity("editor");
        assert_eq!(s.activity_count(), 2);
        assert_eq!(s.activity_label(a), "shell");
        assert!(s.activity_state(b).alive);
        s.activity_state_mut(b).alive = false;
        assert!(!s.activity_state(b).alive);
        assert_eq!(s.activities().count(), 2);
    }

    #[test]
    fn add_and_query_objects() {
        let mut s = SystemState::new();
        let dir = s.add_context_object("root");
        let file = s.add_data_object("motd", b"hello".to_vec());
        assert!(s.is_context_object(dir));
        assert!(!s.is_context_object(file));
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.object_label(file), "motd");
    }

    #[test]
    fn bind_and_lookup() {
        let mut s = SystemState::new();
        let root = s.add_context_object("root");
        let etc = s.add_context_object("etc");
        s.bind(root, Name::new("etc"), etc).unwrap();
        assert_eq!(s.lookup(root, Name::new("etc")), Entity::Object(etc));
        assert_eq!(s.lookup(root, Name::new("usr")), Entity::Undefined);
        // Lookup in a non-context object is ⊥ for everything.
        let file = s.add_data_object("f", vec![]);
        assert_eq!(s.lookup(file, Name::new("etc")), Entity::Undefined);
    }

    #[test]
    fn bind_on_non_context_errors() {
        let mut s = SystemState::new();
        let file = s.add_data_object("f", vec![]);
        let err = s.bind(file, Name::new("x"), file).unwrap_err();
        assert_eq!(err.object, file);
        assert!(s.unbind(file, Name::new("x")).is_err());
    }

    #[test]
    fn naming_version_tracks_binds_epoch_tracks_escape_hatches() {
        let mut s = SystemState::new();
        let root = s.add_context_object("root");
        let etc = s.add_context_object("etc");
        let (nv0, ep0) = (s.naming_version(), s.epoch());

        // bind/unbind: naming version moves, epoch does not.
        s.bind(root, Name::new("etc"), etc).unwrap();
        assert!(s.naming_version() > nv0);
        assert_eq!(s.epoch(), ep0);
        let nv1 = s.naming_version();
        s.unbind(root, Name::new("etc")).unwrap();
        assert!(s.naming_version() > nv1);
        assert_eq!(s.epoch(), ep0);

        // A failed bind mutates nothing and bumps nothing.
        let file = s.add_data_object("f", vec![]);
        let (nv2, ep2) = (s.naming_version(), s.epoch());
        assert!(s.bind(file, Name::new("x"), file).is_err());
        assert!(s.unbind(file, Name::new("x")).is_err());
        assert_eq!((s.naming_version(), s.epoch()), (nv2, ep2));

        // Raw escape hatches advance the epoch.
        let _ = s.context_mut(root);
        assert!(s.epoch() > ep2);
        let ep3 = s.epoch();
        let _ = s.object_state_mut(file);
        assert!(s.epoch() > ep3);
    }

    #[test]
    fn single_shard_ids_are_dense_indices() {
        let mut s = SystemState::new();
        for i in 0..64 {
            let o = s.add_context_object(format!("c{i}"));
            assert_eq!(o.index(), i);
            assert_eq!(s.shard_of(o), 0);
        }
        assert_eq!(s.shard_count(), 1);
    }

    #[test]
    fn sharded_ids_round_trip_and_route() {
        let mut s = SystemState::with_shards(4);
        let a = s.add_context_object_in(0, "a");
        let b = s.add_context_object_in(3, "b");
        let c = s.add_data_object_in(3, "c", vec![1]);
        assert_eq!(s.shard_of(a), 0);
        assert_eq!(s.shard_of(b), 3);
        assert_eq!(s.shard_of(c), 3);
        assert_ne!(b, c);
        assert_eq!(s.object_label(b), "b");
        assert_eq!(s.object_label(c), "c");
        assert_eq!(s.object_count(), 3);
        assert_eq!(s.shard_object_count(3), 2);
        // Default-shard routing.
        s.set_default_shard(2);
        let d = s.add_context_object("d");
        assert_eq!(s.shard_of(d), 2);
        // objects() visits every id exactly once.
        let all: Vec<_> = s.objects().collect();
        assert_eq!(all.len(), 4);
        for &o in &[a, b, c, d] {
            assert!(all.contains(&o));
        }
    }

    #[test]
    fn writes_bump_only_their_shard() {
        let mut s = SystemState::with_shards(2);
        let a = s.add_context_object_in(0, "a");
        let b = s.add_context_object_in(1, "b");
        let (v0, v1) = (s.shard_version(0), s.shard_version(1));
        s.bind(a, Name::new("b"), b).unwrap();
        assert!(s.shard_version(0) > v0);
        assert_eq!(s.shard_version(1), v1);
        // Escape hatches bump only the owning shard's epoch.
        let e1 = s.shard_epoch(1);
        let _ = s.context_mut(b);
        assert_eq!(s.shard_epoch(0), 0);
        assert!(s.shard_epoch(1) > e1);
    }

    #[test]
    fn zone_serials_track_exactly_the_shard_naming_writes() {
        let mut s = SystemState::with_shards(2);
        let a = s.add_context_object_in(0, "a");
        let b = s.add_context_object_in(1, "b");
        let (s0, s1) = (s.shard_serial(0), s.shard_serial(1));
        // Object creation is not a naming write: serials hold still.
        assert_eq!((s0, s1), (ZoneSerial::ZERO, ZoneSerial::ZERO));
        // A bind in shard 0 advances shard 0's serial only, in lockstep
        // with its naming version.
        s.bind(a, Name::new("b"), b).unwrap();
        assert!(s.shard_serial(0).is_newer_than(s0));
        assert_eq!(s.shard_serial(1), s1);
        assert_eq!(s.shard_serial(0).get(), s.shard_version(0));
        // Unbind and escape hatches advance it too.
        s.unbind(a, Name::new("b")).unwrap();
        let _ = s.context_mut(b);
        assert_eq!(s.shard_serial(0).get(), s.shard_version(0));
        assert_eq!(s.shard_serial(1).get(), s.shard_version(1));
        assert_eq!(
            s.shard_serials(),
            vec![s.shard_serial(0), s.shard_serial(1)]
        );
        // shard_of_id agrees with the stateful accessor, stateless.
        assert_eq!(SystemState::shard_of_id(b), s.shard_of(b));
    }

    #[test]
    fn clone_shares_shards_until_written() {
        let mut s = SystemState::with_shards(4);
        let a = s.add_context_object_in(0, "a");
        let b = s.add_context_object_in(1, "b");
        s.bind(a, Name::new("b"), b).unwrap();
        let snap = s.clone();
        assert_eq!(snap.shards_shared_with(&s), 4);
        // A write to shard 0 unshares only shard 0.
        s.bind(a, Name::new("self"), a).unwrap();
        assert_eq!(snap.shards_shared_with(&s), 3);
        // The clone still sees the pre-write world.
        assert_eq!(snap.lookup(a, Name::new("self")), Entity::Undefined);
        assert_eq!(s.lookup(a, Name::new("self")), Entity::Object(a));
    }

    #[test]
    fn revision_counts_every_mutation() {
        let mut s = SystemState::new();
        let r0 = s.revision();
        let root = s.add_context_object("root");
        assert!(s.revision() > r0);
        let r1 = s.revision();
        let act = s.add_activity("p");
        assert!(s.revision() > r1);
        let r2 = s.revision();
        s.activity_state_mut(act).alive = false;
        assert!(s.revision() > r2);
        let r3 = s.revision();
        s.bind(root, Name::root(), root).unwrap();
        assert!(s.revision() > r3);
        // Reads do not move it.
        let r4 = s.revision();
        let _ = s.lookup(root, Name::root());
        let _ = s.object_state(root);
        assert_eq!(s.revision(), r4);
    }

    #[test]
    fn document_segments() {
        let mut d = Document::new();
        d.push_text("\\documentclass{article}");
        d.push_embedded(CompoundName::parse_path("ch1.tex").unwrap());
        d.push_embedded(CompoundName::parse_path("ch2.tex").unwrap());
        assert_eq!(d.len(), 3);
        assert_eq!(d.embedded_names().count(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn deep_copy_rewrites_internal_edges() {
        let mut s = SystemState::new();
        let top = s.add_context_object("top");
        let sub = s.add_context_object("sub");
        let leaf = s.add_data_object("leaf", b"x".to_vec());
        let shell = s.add_activity("shell");
        s.bind(top, Name::new("sub"), sub).unwrap();
        s.bind(top, Name::new("owner"), shell).unwrap();
        s.bind(sub, Name::new("leaf"), leaf).unwrap();
        s.bind(sub, Name::parent(), top).unwrap();

        let copy = s.deep_copy(top);
        assert_ne!(copy, top);
        let copy_sub = s
            .lookup(copy, Name::new("sub"))
            .as_object()
            .expect("sub copied");
        assert_ne!(copy_sub, sub);
        // Internal edge rewritten: copy's `..` points back at the copy root.
        assert_eq!(s.lookup(copy_sub, Name::parent()), Entity::Object(copy));
        // Activity binding preserved: activities are not part of a subtree.
        assert_eq!(s.lookup(copy, Name::new("owner")), Entity::Activity(shell));
        // Leaf inside was duplicated with the same content.
        let copy_leaf = s.lookup(copy_sub, Name::new("leaf")).as_object().unwrap();
        assert_ne!(copy_leaf, leaf);
        assert_eq!(s.object_state(copy_leaf), s.object_state(leaf));
    }

    #[test]
    fn deep_copy_handles_cycles() {
        let mut s = SystemState::new();
        let a = s.add_context_object("a");
        let b = s.add_context_object("b");
        s.bind(a, Name::new("b"), b).unwrap();
        s.bind(b, Name::new("a"), a).unwrap();
        let copy = s.deep_copy(a);
        let copy_b = s.lookup(copy, Name::new("b")).as_object().unwrap();
        let back = s.lookup(copy_b, Name::new("a")).as_object().unwrap();
        assert_eq!(back, copy);
    }
}
