//! # naming-core
//!
//! A faithful implementation of the formal naming model, closure
//! mechanisms, and coherence theory of
//!
//! > Sanjay Radia and Jan Pachl, *Coherence in Naming in Distributed
//! > Computing Environments*, ICDCS 1993.
//!
//! Names are resolved in a *context* — a total function from names to
//! entities ([`context::Context`]). Objects whose state is a context
//! (directories) induce the *naming graph* ([`graph::NamingGraph`]);
//! compound names resolve by walking it ([`resolve::Resolver`]). Which
//! context a resolution starts in is chosen by a *closure mechanism*: a
//! resolution rule over the circumstances of the resolution
//! ([`closure::ResolutionRule`], [`closure::MetaContext`]). A name is
//! *coherent* across activities when it denotes the same entity for all of
//! them ([`coherence`]); the audit engine ([`audit`]) quantifies the degree
//! of coherence of whole naming schemes.
//!
//! ## Quick start
//!
//! ```
//! use naming_core::prelude::*;
//!
//! // Build a tiny system: one directory tree, two processes.
//! let mut sys = SystemState::new();
//! let root = sys.add_context_object("root");
//! let etc = sys.add_context_object("etc");
//! let passwd = sys.add_data_object("passwd", vec![]);
//! sys.bind(root, Name::root(), root).unwrap();
//! sys.bind(root, Name::new("etc"), etc).unwrap();
//! sys.bind(etc, Name::new("passwd"), passwd).unwrap();
//!
//! let p1 = sys.add_activity("p1");
//! let p2 = sys.add_activity("p2");
//!
//! // Both processes share the same per-activity context: R(p1) = R(p2).
//! let mut reg = ContextRegistry::new();
//! reg.set_activity_context(p1, root);
//! reg.set_activity_context(p2, root);
//!
//! // "/etc/passwd" is then coherent between them.
//! let name = CompoundName::parse_path("/etc/passwd").unwrap();
//! let verdict = naming_core::coherence::check_coherence(
//!     &sys,
//!     &reg,
//!     &StandardRule::OfResolver,
//!     &[MetaContext::internal(p1), MetaContext::internal(p2)],
//!     &name,
//!     None,
//! );
//! assert!(verdict.is_coherent());
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`name`] | §2 | atomic and compound names |
//! | [`entity`] | §2 | activities, objects, ⊥ |
//! | [`context`] | §2 | contexts as total functions |
//! | [`state`] | §2 | the global state function σ; documents with embedded names |
//! | [`graph`] | §2 | the naming graph; reachability; name synthesis |
//! | [`resolve`] | §2 | compound-name resolution |
//! | [`memo`] | §5 | generation-versioned resolution memoization |
//! | [`lease`] | §5 | zone serials and TTL leases for bounded staleness |
//! | [`snapshot`] | §5 | immutable copy-on-publish snapshots of σ |
//! | [`hash`] | — | deterministic hashing for internal indexes |
//! | [`closure`] | §3 | meta-context, resolution rules R(a), R(sender), R(object) |
//! | [`coherence`] | §4–5 | coherence, weak coherence, degree-of-coherence stats |
//! | [`replica`] | §5 | replica groups for weak coherence |
//! | [`audit`] | §5 | parallel coherence auditor |
//! | [`builder`] | — | fluent naming-graph construction |
//! | [`monitor`] | — | coherence time series over churn |
//! | [`report`] | — | table rendering for experiments |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod builder;
pub mod closure;
pub mod coherence;
pub mod context;
pub mod entity;
pub mod graph;
pub mod hash;
pub mod lease;
pub mod memo;
pub mod monitor;
pub mod name;
#[cfg(feature = "telemetry")]
mod obs;
pub mod replica;
pub mod report;
pub mod resolve;
pub mod snapshot;
pub mod state;

/// Convenient re-exports of the types used in almost every program built on
/// this crate.
pub mod prelude {
    pub use crate::closure::{
        resolve_with_rule, resolve_with_rule_memo, ContextRegistry, MetaContext, NameSource,
        PerSourceRule, ResolutionRule, StandardRule,
    };
    pub use crate::coherence::{check_coherence, CoherenceStats, CoherenceVerdict};
    pub use crate::context::Context;
    pub use crate::entity::{ActivityId, Entity, ObjectId};
    pub use crate::lease::{Lease, ZoneSerial};
    pub use crate::memo::{MemoStats, ResolutionMemo};
    pub use crate::name::{CompoundName, Name};
    pub use crate::replica::ReplicaRegistry;
    pub use crate::resolve::{Resolution, ResolveError, Resolver};
    pub use crate::snapshot::{
        resolve_with_rule_snapshot, SnapshotMemo, SnapshotMemoStats, StateSnapshot,
    };
    pub use crate::state::{Document, ObjectState, Segment, SystemState};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let mut sys = SystemState::new();
        let _a: ActivityId = sys.add_activity("x");
        let _r = Resolver::new();
        let _c = Context::new();
        let _reg = ContextRegistry::new();
    }
}
