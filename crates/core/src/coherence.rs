//! Coherence in naming (§4–§5): the paper's central property, made
//! checkable.
//!
//! "There are circumstances where it is desirable for the entity denoted by
//! a name to be the same in different parts of the system. We call this
//! property *coherence in naming*."
//!
//! A name `n` is **coherent** across a set of resolution circumstances
//! (activity + name source pairs) under a resolution rule `R` when
//! `R(m1)(n) = R(m2)(n) ≠ ⊥` for all pairs of circumstances. It is **weakly
//! coherent** when the denoted entities are replicas of the same replicated
//! object (§5). We additionally distinguish the *vacuous* case where the
//! name denotes `⊥` everywhere — such a name gives no common reference but
//! also causes no confusion.
//!
//! The paper's three sources of names (Fig. 1) are captured by giving each
//! participant a [`MetaContext`]; per-source experiments build participant
//! sets whose sources differ.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::closure::{resolve_with_rule, ContextRegistry, MetaContext, ResolutionRule};
use crate::entity::{ActivityId, Entity};
use crate::name::CompoundName;
use crate::replica::{ReplicaGroupId, ReplicaRegistry};
use crate::state::SystemState;

/// The outcome of checking one name across a set of participants.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoherenceVerdict {
    /// Every participant resolves the name to the same defined entity.
    Coherent(Entity),
    /// Participants resolve the name to (distinct) replicas of the same
    /// replicated object — sufficient when the object is replicated (§5).
    WeaklyCoherent(ReplicaGroupId),
    /// Participants disagree (or some resolve while others cannot).
    Incoherent {
        /// Each participant's resolution, in participant order.
        resolutions: Vec<(ActivityId, Entity)>,
    },
    /// The name denotes `⊥` for every participant.
    Vacuous,
}

impl CoherenceVerdict {
    /// True for [`CoherenceVerdict::Coherent`].
    pub fn is_coherent(&self) -> bool {
        matches!(self, CoherenceVerdict::Coherent(_))
    }

    /// True for [`CoherenceVerdict::Coherent`] or
    /// [`CoherenceVerdict::WeaklyCoherent`].
    pub fn is_weakly_coherent(&self) -> bool {
        matches!(
            self,
            CoherenceVerdict::Coherent(_) | CoherenceVerdict::WeaklyCoherent(_)
        )
    }

    /// True for [`CoherenceVerdict::Incoherent`].
    pub fn is_incoherent(&self) -> bool {
        matches!(self, CoherenceVerdict::Incoherent { .. })
    }

    /// Short label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            CoherenceVerdict::Coherent(_) => "coherent",
            CoherenceVerdict::WeaklyCoherent(_) => "weak",
            CoherenceVerdict::Incoherent { .. } => "incoherent",
            CoherenceVerdict::Vacuous => "vacuous",
        }
    }
}

impl fmt::Display for CoherenceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}

/// Checks coherence of `name` across `participants` under `rule`.
///
/// If `replicas` is provided, disagreeing resolutions that land in one
/// replica group are classified as weakly coherent.
///
/// # Examples
///
/// ```
/// use naming_core::prelude::*;
/// use naming_core::coherence::{check_coherence, CoherenceVerdict};
///
/// let mut sys = SystemState::new();
/// let shared = sys.add_context_object("shared");
/// let f = sys.add_data_object("f", vec![]);
/// sys.bind(shared, Name::new("f"), f).unwrap();
/// let a1 = sys.add_activity("a1");
/// let a2 = sys.add_activity("a2");
/// let mut reg = ContextRegistry::new();
/// reg.set_activity_context(a1, shared);
/// reg.set_activity_context(a2, shared);
///
/// let verdict = check_coherence(
///     &sys,
///     &reg,
///     &StandardRule::OfResolver,
///     &[MetaContext::internal(a1), MetaContext::internal(a2)],
///     &CompoundName::atom(Name::new("f")),
///     None,
/// );
/// assert!(verdict.is_coherent());
/// ```
pub fn check_coherence(
    state: &SystemState,
    registry: &ContextRegistry,
    rule: &(dyn ResolutionRule + Sync),
    participants: &[MetaContext],
    name: &CompoundName,
    replicas: Option<&ReplicaRegistry>,
) -> CoherenceVerdict {
    let resolutions = sweep_participants(state, registry, rule, participants, name);
    let verdict = classify(&resolutions, replicas);
    #[cfg(feature = "telemetry")]
    {
        naming_telemetry::counter!("coherence.checks").bump();
        match &verdict {
            CoherenceVerdict::Incoherent { resolutions } => {
                naming_telemetry::counter!("coherence.incoherent").bump();
                if naming_telemetry::recorder::is_active() {
                    let distinct: std::collections::BTreeSet<String> =
                        resolutions.iter().map(|(_, e)| e.to_string()).collect();
                    naming_telemetry::recorder::instant(
                        "coherence",
                        format!("incoherent {name}"),
                        vec![
                            ("rule".to_string(), rule.rule_name().to_string()),
                            ("participants".to_string(), resolutions.len().to_string()),
                            (
                                "entities".to_string(),
                                distinct.into_iter().collect::<Vec<_>>().join(", "),
                            ),
                        ],
                    );
                }
            }
            CoherenceVerdict::WeaklyCoherent(group) => {
                naming_telemetry::counter!("coherence.weak").bump();
                if naming_telemetry::recorder::is_active() {
                    naming_telemetry::recorder::instant(
                        "coherence",
                        format!("weakly-coherent {name}"),
                        vec![
                            ("rule".to_string(), rule.rule_name().to_string()),
                            ("replica_group".to_string(), format!("{group:?}")),
                        ],
                    );
                }
            }
            CoherenceVerdict::Coherent(_) | CoherenceVerdict::Vacuous => {}
        }
    }
    verdict
}

/// Participant count above which the sweep in [`check_coherence`] shards
/// across threads (with the `parallel` feature). One resolution is far too
/// small a work unit to pay a thread for; below this bound a serial sweep
/// wins outright.
#[cfg(feature = "parallel")]
pub const PARALLEL_SWEEP_THRESHOLD: usize = 512;

/// Resolves `name` once per participant, in participant order.
///
/// With the `parallel` feature, sweeps over at least
/// [`PARALLEL_SWEEP_THRESHOLD`] participants are sharded across scoped
/// threads; chunks are stitched back in participant order, so the result —
/// and every verdict derived from it — is identical to the serial sweep.
fn sweep_participants(
    state: &SystemState,
    registry: &ContextRegistry,
    rule: &(dyn ResolutionRule + Sync),
    participants: &[MetaContext],
    name: &CompoundName,
) -> Vec<(ActivityId, Entity)> {
    let resolve_one = |m: &MetaContext| {
        (
            m.resolver,
            resolve_with_rule(state, registry, rule, m, name),
        )
    };
    #[cfg(feature = "parallel")]
    if participants.len() >= PARALLEL_SWEEP_THRESHOLD {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(participants.len());
        if workers > 1 {
            let chunk = participants.len().div_ceil(workers);
            let mut out: Vec<(ActivityId, Entity)> = Vec::with_capacity(participants.len());
            crossbeam::scope(|scope| {
                let handles: Vec<_> = participants
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move |_| slice.iter().map(resolve_one).collect::<Vec<_>>())
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("sweep worker panicked"));
                }
            })
            .expect("sweep scope");
            return out;
        }
    }
    participants.iter().map(resolve_one).collect()
}

/// Classifies a set of per-participant resolutions into a verdict.
///
/// Exposed separately so callers that already hold resolutions (e.g. the
/// audit engine, or schemes with bespoke resolution paths) can reuse the
/// classification logic.
pub fn classify(
    resolutions: &[(ActivityId, Entity)],
    replicas: Option<&ReplicaRegistry>,
) -> CoherenceVerdict {
    if resolutions.is_empty() {
        return CoherenceVerdict::Vacuous;
    }
    if resolutions.iter().all(|(_, e)| !e.is_defined()) {
        return CoherenceVerdict::Vacuous;
    }
    let first = resolutions[0].1;
    if resolutions.iter().all(|(_, e)| *e == first) && first.is_defined() {
        return CoherenceVerdict::Coherent(first);
    }
    if let Some(reps) = replicas {
        let all_equiv = resolutions
            .iter()
            .all(|(_, e)| reps.entities_equivalent(first, *e));
        if all_equiv && first.is_defined() {
            if let Entity::Object(o) = first {
                return CoherenceVerdict::WeaklyCoherent(reps.group_of(o));
            }
        }
    }
    CoherenceVerdict::Incoherent {
        resolutions: resolutions.to_vec(),
    }
}

/// Degree-of-coherence statistics over a set of names.
///
/// The paper speaks of "the degree of coherence in a naming scheme"; we
/// quantify it as the fraction of checked names that are (weakly) coherent
/// across the participant set. `pairwise` additionally counts coherence over
/// unordered participant pairs, which grades *partial* coherence — a name
/// coherent among 9 of 10 activities scores 36/45 pairs rather than 0.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoherenceStats {
    /// Names checked.
    pub total: usize,
    /// Names coherent across all participants.
    pub coherent: usize,
    /// Names weakly coherent (replica-equivalent) but not coherent.
    pub weakly_coherent: usize,
    /// Names with disagreeing resolutions.
    pub incoherent: usize,
    /// Names undefined for every participant.
    pub vacuous: usize,
    /// Unordered participant pairs agreeing, across all names.
    pub pairs_agreeing: usize,
    /// Total unordered participant pairs considered, across all names.
    pub pairs_total: usize,
}

impl CoherenceStats {
    /// Creates empty statistics.
    pub fn new() -> CoherenceStats {
        CoherenceStats::default()
    }

    /// Folds one verdict (plus its resolutions for pairwise counting) into
    /// the statistics.
    pub fn record(&mut self, verdict: &CoherenceVerdict) {
        self.total += 1;
        match verdict {
            CoherenceVerdict::Coherent(_) => self.coherent += 1,
            CoherenceVerdict::WeaklyCoherent(_) => self.weakly_coherent += 1,
            CoherenceVerdict::Incoherent { resolutions } => {
                self.incoherent += 1;
                self.record_pairs_from(resolutions, None);
            }
            CoherenceVerdict::Vacuous => self.vacuous += 1,
        }
        // Coherent / weak verdicts imply all pairs agree; count them too so
        // pairwise rates are comparable across verdict kinds. We cannot know
        // the participant count from the verdict alone for those cases, so
        // callers wanting exact pairwise numbers use `record_with_pairs`.
    }

    /// Folds one verdict with explicit pairwise accounting over
    /// `participant_count` participants.
    pub fn record_with_pairs(
        &mut self,
        verdict: &CoherenceVerdict,
        participant_count: usize,
        replicas: Option<&ReplicaRegistry>,
    ) {
        self.total += 1;
        let pairs = participant_count.saturating_mul(participant_count.saturating_sub(1)) / 2;
        match verdict {
            CoherenceVerdict::Coherent(_) => {
                self.coherent += 1;
                self.pairs_agreeing += pairs;
                self.pairs_total += pairs;
            }
            CoherenceVerdict::WeaklyCoherent(_) => {
                self.weakly_coherent += 1;
                self.pairs_agreeing += pairs;
                self.pairs_total += pairs;
            }
            CoherenceVerdict::Incoherent { resolutions } => {
                self.incoherent += 1;
                self.record_pairs_from(resolutions, replicas);
            }
            CoherenceVerdict::Vacuous => {
                self.vacuous += 1;
                // Vacuous names give no pairs: there is nothing to agree on.
            }
        }
    }

    fn record_pairs_from(
        &mut self,
        resolutions: &[(ActivityId, Entity)],
        replicas: Option<&ReplicaRegistry>,
    ) {
        for i in 0..resolutions.len() {
            for j in (i + 1)..resolutions.len() {
                let (a, b) = (resolutions[i].1, resolutions[j].1);
                self.pairs_total += 1;
                let agree = match replicas {
                    Some(r) => r.entities_equivalent(a, b) && a.is_defined(),
                    None => a == b && a.is_defined(),
                };
                if agree {
                    self.pairs_agreeing += 1;
                }
            }
        }
    }

    /// Fraction of names strictly coherent, in `[0, 1]`; 0 when no names.
    pub fn coherence_rate(&self) -> f64 {
        rate(self.coherent, self.total)
    }

    /// Fraction of names at least weakly coherent.
    pub fn weak_coherence_rate(&self) -> f64 {
        rate(self.coherent + self.weakly_coherent, self.total)
    }

    /// Fraction of names incoherent.
    pub fn incoherence_rate(&self) -> f64 {
        rate(self.incoherent, self.total)
    }

    /// Fraction of participant pairs agreeing.
    pub fn pairwise_rate(&self) -> f64 {
        rate(self.pairs_agreeing, self.pairs_total)
    }

    /// Merges another statistics value into this one.
    pub fn merge(&mut self, other: &CoherenceStats) {
        self.total += other.total;
        self.coherent += other.coherent;
        self.weakly_coherent += other.weakly_coherent;
        self.incoherent += other.incoherent;
        self.vacuous += other.vacuous;
        self.pairs_agreeing += other.pairs_agreeing;
        self.pairs_total += other.pairs_total;
    }
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for CoherenceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} coherent ({:.1}%), {} weak, {} incoherent, {} vacuous",
            self.coherent,
            self.total,
            100.0 * self.coherence_rate(),
            self.weakly_coherent,
            self.incoherent,
            self.vacuous
        )
    }
}

/// A *global name* (§4): one that denotes the same entity in the context of
/// every activity.
///
/// "Only a global name — a name that denotes the same entity in the context
/// of each activity — can be used as a common reference to a shared entity"
/// when the rule is `R(activity)`.
///
/// Checks the name across every activity registered in `registry` under
/// `R(activity)` with an internal source.
pub fn is_global_name(
    state: &SystemState,
    registry: &ContextRegistry,
    name: &CompoundName,
) -> bool {
    let metas: Vec<MetaContext> = registry
        .activity_contexts()
        .map(|(a, _)| MetaContext::internal(a))
        .collect();
    if metas.is_empty() {
        return false;
    }
    check_coherence(
        state,
        registry,
        &crate::closure::StandardRule::OfResolver,
        &metas,
        name,
        None,
    )
    .is_coherent()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::StandardRule;
    use crate::entity::ObjectId;
    use crate::name::Name;

    struct Fix {
        sys: SystemState,
        reg: ContextRegistry,
        a1: ActivityId,
        a2: ActivityId,
        a3: ActivityId,
        f_shared: ObjectId,
        f1: ObjectId,
        f2: ObjectId,
    }

    /// a1, a2 share a binding for "shared"; "local" differs between them;
    /// a3 has an empty context.
    fn fix() -> Fix {
        let mut sys = SystemState::new();
        let c1 = sys.add_context_object("c1");
        let c2 = sys.add_context_object("c2");
        let c3 = sys.add_context_object("c3");
        let f_shared = sys.add_data_object("fs", vec![]);
        let f1 = sys.add_data_object("f1", vec![]);
        let f2 = sys.add_data_object("f2", vec![]);
        let shared = Name::new("shared");
        let local = Name::new("local");
        sys.bind(c1, shared, f_shared).unwrap();
        sys.bind(c2, shared, f_shared).unwrap();
        sys.bind(c3, shared, f_shared).unwrap();
        sys.bind(c1, local, f1).unwrap();
        sys.bind(c2, local, f2).unwrap();
        let a1 = sys.add_activity("a1");
        let a2 = sys.add_activity("a2");
        let a3 = sys.add_activity("a3");
        let mut reg = ContextRegistry::new();
        reg.set_activity_context(a1, c1);
        reg.set_activity_context(a2, c2);
        reg.set_activity_context(a3, c3);
        Fix {
            sys,
            reg,
            a1,
            a2,
            a3,
            f_shared,
            f1,
            f2,
        }
    }

    fn internal_metas(f: &Fix) -> Vec<MetaContext> {
        vec![
            MetaContext::internal(f.a1),
            MetaContext::internal(f.a2),
            MetaContext::internal(f.a3),
        ]
    }

    #[test]
    fn coherent_name() {
        let f = fix();
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &internal_metas(&f),
            &CompoundName::atom(Name::new("shared")),
            None,
        );
        assert_eq!(v, CoherenceVerdict::Coherent(Entity::Object(f.f_shared)));
        assert!(v.is_coherent() && v.is_weakly_coherent());
    }

    #[test]
    fn incoherent_name() {
        let f = fix();
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &internal_metas(&f),
            &CompoundName::atom(Name::new("local")),
            None,
        );
        assert!(v.is_incoherent());
        if let CoherenceVerdict::Incoherent { resolutions } = &v {
            assert_eq!(resolutions.len(), 3);
            assert_eq!(resolutions[0].1, Entity::Object(f.f1));
            assert_eq!(resolutions[1].1, Entity::Object(f.f2));
            assert_eq!(resolutions[2].1, Entity::Undefined);
        }
    }

    #[test]
    fn defined_vs_undefined_is_incoherent() {
        let f = fix();
        // a1 resolves "local", a3 cannot: that is incoherence, not vacuity.
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &[MetaContext::internal(f.a1), MetaContext::internal(f.a3)],
            &CompoundName::atom(Name::new("local")),
            None,
        );
        assert!(v.is_incoherent());
    }

    #[test]
    fn vacuous_name() {
        let f = fix();
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &internal_metas(&f),
            &CompoundName::atom(Name::new("nowhere")),
            None,
        );
        assert_eq!(v, CoherenceVerdict::Vacuous);
        assert!(!v.is_coherent() && !v.is_incoherent());
    }

    #[test]
    fn weak_coherence_with_replicas() {
        let mut f = fix();
        // Rebind "local" so a1 and a2 see different replicas of one binary.
        let mut reps = ReplicaRegistry::new();
        reps.declare_replicas(f.f1, f.f2);
        // a3 must also see a replica for weak coherence; bind it.
        let c3 = f.reg.activity_context(f.a3).unwrap();
        f.sys.bind(c3, Name::new("local"), f.f1).unwrap();
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &internal_metas(&f),
            &CompoundName::atom(Name::new("local")),
            Some(&reps),
        );
        assert!(matches!(v, CoherenceVerdict::WeaklyCoherent(_)));
        assert!(v.is_weakly_coherent() && !v.is_coherent());
    }

    #[test]
    fn replicas_do_not_mask_real_disagreement() {
        let f = fix();
        let mut reps = ReplicaRegistry::new();
        reps.declare_replicas(f.f1, f.f_shared); // unrelated group
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &internal_metas(&f),
            &CompoundName::atom(Name::new("local")),
            Some(&reps),
        );
        assert!(v.is_incoherent());
    }

    #[test]
    fn empty_participants_is_vacuous() {
        let f = fix();
        let v = check_coherence(
            &f.sys,
            &f.reg,
            &StandardRule::OfResolver,
            &[],
            &CompoundName::atom(Name::new("shared")),
            None,
        );
        assert_eq!(v, CoherenceVerdict::Vacuous);
    }

    #[test]
    fn stats_accumulate() {
        let f = fix();
        let mut stats = CoherenceStats::new();
        for name in ["shared", "local", "nowhere"] {
            let v = check_coherence(
                &f.sys,
                &f.reg,
                &StandardRule::OfResolver,
                &internal_metas(&f),
                &CompoundName::atom(Name::new(name)),
                None,
            );
            stats.record_with_pairs(&v, 3, None);
        }
        assert_eq!(stats.total, 3);
        assert_eq!(stats.coherent, 1);
        assert_eq!(stats.incoherent, 1);
        assert_eq!(stats.vacuous, 1);
        assert!((stats.coherence_rate() - 1.0 / 3.0).abs() < 1e-9);
        // Pairs: "shared" contributes 3 agreeing; "local" contributes 0 of 3
        // (f1 vs f2 disagree, f1 vs ⊥, f2 vs ⊥); vacuous contributes none.
        assert_eq!(stats.pairs_total, 6);
        assert_eq!(stats.pairs_agreeing, 3);
        assert!((stats.pairwise_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stats_merge() {
        let mut a = CoherenceStats::new();
        a.record(&CoherenceVerdict::Coherent(Entity::Undefined));
        let mut b = CoherenceStats::new();
        b.record(&CoherenceVerdict::Vacuous);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.coherent, 1);
        assert_eq!(a.vacuous, 1);
    }

    #[test]
    fn global_name_detection() {
        let f = fix();
        assert!(is_global_name(
            &f.sys,
            &f.reg,
            &CompoundName::atom(Name::new("shared"))
        ));
        assert!(!is_global_name(
            &f.sys,
            &f.reg,
            &CompoundName::atom(Name::new("local"))
        ));
        assert!(!is_global_name(
            &f.sys,
            &f.reg,
            &CompoundName::atom(Name::new("nowhere"))
        ));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_matches_serial_order_and_verdict() {
        // Enough participants to cross PARALLEL_SWEEP_THRESHOLD; half see
        // one file, half the other, so the verdict carries every
        // resolution and any ordering slip would be visible.
        let mut sys = SystemState::new();
        let mut reg = ContextRegistry::new();
        let fa = sys.add_data_object("fa", vec![]);
        let fb = sys.add_data_object("fb", vec![]);
        let n = Name::new("x");
        let mut metas = Vec::new();
        let mut expect = Vec::new();
        for i in 0..(PARALLEL_SWEEP_THRESHOLD + 13) {
            let ctx = sys.add_context_object(format!("c{i}"));
            let f = if i % 2 == 0 { fa } else { fb };
            sys.bind(ctx, n, f).unwrap();
            let a = sys.add_activity(format!("a{i}"));
            reg.set_activity_context(a, ctx);
            metas.push(MetaContext::internal(a));
            expect.push((a, Entity::Object(f)));
        }
        let v = check_coherence(
            &sys,
            &reg,
            &StandardRule::OfResolver,
            &metas,
            &CompoundName::atom(n),
            None,
        );
        match v {
            CoherenceVerdict::Incoherent { resolutions } => assert_eq!(resolutions, expect),
            other => panic!("expected incoherent, got {other:?}"),
        }
    }

    #[test]
    fn verdict_display() {
        assert_eq!(CoherenceVerdict::Vacuous.to_string(), "vacuous");
        assert_eq!(
            CoherenceVerdict::Coherent(Entity::Undefined).kind(),
            "coherent"
        );
    }
}
