//! Contexts: total functions from names to entities (§2).
//!
//! "A context is a function that maps names to entities": `C = [N → E]`.
//! We represent the function by its finite support — an ordered map of
//! bindings — with every unbound name mapping to [`Entity::Undefined`].
//!
//! Contexts carry a *version* that increments on every mutation. Versions
//! power the cheap parent/child coherence-decay detection used by the Unix
//! experiment (E3), and they are the generation counters behind the
//! [`crate::memo::ResolutionMemo`]: a memo entry records the version of
//! every context it traversed, so a binding update invalidates exactly the
//! entries whose resolution paths crossed the mutated context.
//!
//! Lookups — the hot path of every resolution — go through a hash index;
//! a separately maintained sorted view keeps iteration lexicographic and
//! therefore deterministic across runs regardless of interning order.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::entity::Entity;
use crate::hash::FxHashMap;
use crate::name::Name;

/// A finite-support total function from [`Name`]s to [`Entity`]s.
///
/// # Examples
///
/// ```
/// use naming_core::context::Context;
/// use naming_core::entity::{Entity, ObjectId};
/// use naming_core::name::Name;
///
/// let mut c = Context::new();
/// let etc = ObjectId::from_index(0);
/// c.bind(Name::new("etc"), etc);
/// assert_eq!(c.lookup(Name::new("etc")), Entity::Object(etc));
/// // A context is a *total* function: unbound names map to ⊥.
/// assert_eq!(c.lookup(Name::new("missing")), Entity::Undefined);
/// ```
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct Context {
    /// Hash index over the bindings: every `lookup` is O(1).
    bindings: FxHashMap<Name, Entity>,
    /// The bound names in lexicographic order. Iteration and display read
    /// this view, never the hash index, so observable order is independent
    /// of hashing and of name-interning order.
    order: Vec<Name>,
    version: u64,
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("bindings", &self.iter().collect::<Vec<_>>())
            .field("version", &self.version)
            .finish()
    }
}

/// Two contexts are equal when they are the same *function* `N → E`;
/// the version counter is bookkeeping, not part of the function.
impl PartialEq for Context {
    fn eq(&self, other: &Context) -> bool {
        self.bindings == other.bindings
    }
}

impl Eq for Context {}

impl Context {
    /// Creates an empty context (every name maps to `⊥E`).
    pub fn new() -> Context {
        Context::default()
    }

    /// Creates a context from an iterator of bindings.
    pub fn from_bindings<I>(bindings: I) -> Context
    where
        I: IntoIterator<Item = (Name, Entity)>,
    {
        let mut c = Context::new();
        for (n, e) in bindings {
            c.bind(n, e);
        }
        c
    }

    /// Applies the context as a function: `c(n)`.
    ///
    /// Returns [`Entity::Undefined`] for unbound names — the context is a
    /// total function per the paper's model.
    pub fn lookup(&self, name: Name) -> Entity {
        self.bindings
            .get(&name)
            .copied()
            .unwrap_or(Entity::Undefined)
    }

    /// Returns the binding for `name` if one exists.
    pub fn get(&self, name: Name) -> Option<Entity> {
        self.bindings.get(&name).copied()
    }

    /// True if `name` has an explicit binding.
    pub fn contains(&self, name: Name) -> bool {
        self.bindings.contains_key(&name)
    }

    /// Binds `name` to `entity`, returning the previous binding if any.
    ///
    /// Binding to [`Entity::Undefined`] is equivalent to [`Context::unbind`].
    pub fn bind(&mut self, name: Name, entity: impl Into<Entity>) -> Option<Entity> {
        let entity = entity.into();
        self.version += 1;
        if entity == Entity::Undefined {
            return self.remove_binding(name);
        }
        let prev = self.bindings.insert(name, entity);
        if prev.is_none() {
            if let Err(at) = self.order.binary_search(&name) {
                self.order.insert(at, name);
            }
        }
        prev
    }

    /// Removes the binding for `name`, returning it if it existed.
    pub fn unbind(&mut self, name: Name) -> Option<Entity> {
        self.version += 1;
        self.remove_binding(name)
    }

    fn remove_binding(&mut self, name: Name) -> Option<Entity> {
        let prev = self.bindings.remove(&name);
        if prev.is_some() {
            if let Ok(at) = self.order.binary_search(&name) {
                self.order.remove(at);
            }
        }
        prev
    }

    /// Number of explicit bindings (the support of the function).
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if the context has no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Mutation counter; bumps on every [`bind`](Context::bind) /
    /// [`unbind`](Context::unbind).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterates over bindings in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (Name, Entity)> + '_ {
        self.order.iter().map(|n| (*n, self.bindings[n]))
    }

    /// Iterates over the bound names in lexicographic order.
    pub fn names(&self) -> impl Iterator<Item = Name> + '_ {
        self.order.iter().copied()
    }

    /// Returns a copy of this context with a fresh version counter.
    ///
    /// This models Unix-style context inheritance: "a child inherits the
    /// context of its parent. A parent and a child have coherence for all
    /// names until one of them modifies its context."
    pub fn inherit(&self) -> Context {
        Context {
            bindings: self.bindings.clone(),
            order: self.order.clone(),
            version: 0,
        }
    }

    /// True if two contexts agree on every name (same function `N → E`).
    ///
    /// Versions are ignored: two contexts with different mutation histories
    /// but identical bindings are the same function.
    pub fn same_function(&self, other: &Context) -> bool {
        self.bindings == other.bindings
    }

    /// True if the contexts agree on every name in `names`.
    ///
    /// This is the paper's §6.II condition `R(a1)(n) = R(a2)(n)` for all
    /// `n ∈ N'`: two activities have coherence for the subset `N'`.
    pub fn agree_on<'a, I>(&self, other: &Context, names: I) -> bool
    where
        I: IntoIterator<Item = &'a Name>,
    {
        names
            .into_iter()
            .all(|n| self.lookup(*n) == other.lookup(*n))
    }

    /// Names on which the two contexts disagree (symmetric difference of
    /// meaning), in lexicographic order.
    pub fn disagreements(&self, other: &Context) -> Vec<Name> {
        let mut out = Vec::new();
        let mut seen: Vec<Name> = self.names().collect();
        seen.extend(other.names());
        seen.sort_unstable();
        seen.dedup();
        for n in seen {
            if self.lookup(n) != other.lookup(n) {
                out.push(n);
            }
        }
        out
    }
}

impl FromIterator<(Name, Entity)> for Context {
    fn from_iter<I: IntoIterator<Item = (Name, Entity)>>(iter: I) -> Context {
        Context::from_bindings(iter)
    }
}

impl Extend<(Name, Entity)> for Context {
    fn extend<I: IntoIterator<Item = (Name, Entity)>>(&mut self, iter: I) {
        for (n, e) in iter {
            self.bind(n, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{ActivityId, ObjectId};

    fn obj(i: u32) -> Entity {
        Entity::Object(ObjectId::from_index(i))
    }

    #[test]
    fn total_function_semantics() {
        let mut c = Context::new();
        assert_eq!(c.lookup(Name::new("x")), Entity::Undefined);
        c.bind(Name::new("x"), ObjectId::from_index(1));
        assert_eq!(c.lookup(Name::new("x")), obj(1));
        assert_eq!(c.get(Name::new("y")), None);
    }

    #[test]
    fn bind_returns_previous() {
        let mut c = Context::new();
        assert_eq!(c.bind(Name::new("x"), ObjectId::from_index(1)), None);
        assert_eq!(
            c.bind(Name::new("x"), ObjectId::from_index(2)),
            Some(obj(1))
        );
        assert_eq!(c.unbind(Name::new("x")), Some(obj(2)));
        assert_eq!(c.unbind(Name::new("x")), None);
    }

    #[test]
    fn binding_undefined_unbinds() {
        let mut c = Context::new();
        c.bind(Name::new("x"), ObjectId::from_index(1));
        c.bind(Name::new("x"), Entity::Undefined);
        assert!(!c.contains(Name::new("x")));
        assert!(c.is_empty());
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut c = Context::new();
        let v0 = c.version();
        c.bind(Name::new("x"), ObjectId::from_index(1));
        assert!(c.version() > v0);
        let v1 = c.version();
        c.unbind(Name::new("x"));
        assert!(c.version() > v1);
    }

    #[test]
    fn inherit_copies_bindings_resets_version() {
        let mut parent = Context::new();
        parent.bind(Name::new("x"), ObjectId::from_index(1));
        parent.bind(Name::new("y"), ActivityId::from_index(0));
        let child = parent.inherit();
        assert!(child.same_function(&parent));
        assert_eq!(child.version(), 0);
    }

    #[test]
    fn agreement_and_disagreement() {
        let mut a = Context::new();
        let mut b = Context::new();
        let x = Name::new("x");
        let y = Name::new("y");
        a.bind(x, ObjectId::from_index(1));
        b.bind(x, ObjectId::from_index(1));
        a.bind(y, ObjectId::from_index(2));
        b.bind(y, ObjectId::from_index(3));
        assert!(a.agree_on(&b, [&x]));
        assert!(!a.agree_on(&b, [&x, &y]));
        assert_eq!(a.disagreements(&b), vec![y]);
    }

    #[test]
    fn iteration_is_lexicographic() {
        let mut c = Context::new();
        c.bind(Name::new("zeta"), ObjectId::from_index(1));
        c.bind(Name::new("alpha"), ObjectId::from_index(2));
        c.bind(Name::new("mid"), ObjectId::from_index(3));
        let names: Vec<&str> = c.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn hash_index_and_sorted_view_stay_consistent() {
        // Interleave binds, rebinds and unbinds; the sorted view must track
        // the hash index exactly, with no duplicates or ghosts.
        let mut c = Context::new();
        let names: Vec<Name> = ["m", "c", "z", "a", "q", "c", "z"]
            .iter()
            .map(|s| Name::new(s))
            .collect();
        for (i, &n) in names.iter().enumerate() {
            c.bind(n, ObjectId::from_index(i as u32));
        }
        c.unbind(Name::new("q"));
        c.bind(Name::new("c"), Entity::Undefined); // bind-⊥ unbinds
        let listed: Vec<&str> = c.names().map(|n| n.as_str()).collect();
        assert_eq!(listed, vec!["a", "m", "z"]);
        assert_eq!(c.len(), 3);
        for n in c.names() {
            assert!(c.contains(n));
            assert_eq!(c.lookup(n), c.get(n).unwrap());
        }
        // Rebinding an existing name must not duplicate it in the view.
        c.bind(Name::new("a"), ObjectId::from_index(99));
        assert_eq!(c.names().count(), 3);
        assert_eq!(c.lookup(Name::new("a")), obj(99));
    }

    #[test]
    fn collect_and_extend() {
        let x = Name::new("x");
        let c: Context = [(x, obj(1))].into_iter().collect();
        assert_eq!(c.lookup(x), obj(1));
        let mut d = Context::new();
        d.extend([(x, obj(2))]);
        assert_eq!(d.lookup(x), obj(2));
    }
}
