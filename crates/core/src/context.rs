//! Contexts: total functions from names to entities (§2).
//!
//! "A context is a function that maps names to entities": `C = [N → E]`.
//! We represent the function by its finite support — an ordered map of
//! bindings — with every unbound name mapping to [`Entity::Undefined`].
//!
//! Contexts carry a *version* that increments on every mutation. Versions
//! power the cheap parent/child coherence-decay detection used by the Unix
//! experiment (E3), and they are the generation counters behind the
//! [`crate::memo::ResolutionMemo`]: a memo entry records the version of
//! every context it traversed, so a binding update invalidates exactly the
//! entries whose resolution paths crossed the mutated context.
//!
//! ## Two-tier representation
//!
//! The overwhelming majority of directories in a large namespace are tiny
//! (the million-context scale grid's leaves hold one binding each), so a
//! context stores up to [`INLINE_CAP`] bindings *inline* — three parallel
//! fixed arrays (names, entity kinds, entity ids), kept in lexicographic
//! name order, scanned by integer compares with no heap allocation at all.
//! A shard's context objects therefore live contiguously inside the
//! shard's object arena (see [`crate::state`]): resolving through a small
//! directory touches one record, never a separately allocated table.
//!
//! The ninth distinct binding *spills* the context into a boxed hash index
//! (O(1) lookups) plus a sorted view (deterministic iteration). Shrinking
//! back to [`DESPILL_AT`] bindings returns it to the inline form — the
//! hysteresis gap keeps a context oscillating around the threshold from
//! re-allocating on every mutation. Both representations denote the same
//! function: lookups, iteration order, equality and the version counter
//! are representation-independent, which the `context_repr` proptest suite
//! pins across the threshold in both directions.

use std::fmt;

use crate::entity::{ActivityId, Entity, ObjectId};
use crate::hash::FxHashMap;
use crate::name::Name;

/// Maximum number of bindings a context stores inline (no heap
/// allocation). The ninth distinct binding spills to the hash index.
pub const INLINE_CAP: usize = 8;

/// A spilled context returns to the inline representation when a removal
/// leaves it with this many bindings. Strictly below [`INLINE_CAP`] so a
/// context hovering at the threshold does not re-allocate per mutation.
pub const DESPILL_AT: usize = INLINE_CAP / 2;

/// Entity-kind tags for the inline columns ([`Entity::Undefined`] is never
/// stored: binding to ⊥ is an unbind).
const KIND_ACTIVITY: u8 = 0;
const KIND_OBJECT: u8 = 1;

#[inline]
fn pack(e: Entity) -> (u8, u32) {
    match e {
        Entity::Activity(a) => (KIND_ACTIVITY, a.index() as u32),
        Entity::Object(o) => (KIND_OBJECT, o.index() as u32),
        Entity::Undefined => unreachable!("⊥ bindings are removed, never stored"),
    }
}

#[inline]
fn unpack(kind: u8, id: u32) -> Entity {
    if kind == KIND_ACTIVITY {
        Entity::Activity(ActivityId::from_index(id))
    } else {
        Entity::Object(ObjectId::from_index(id))
    }
}

/// The inline tier: parallel columns sorted by name, no heap storage.
///
/// Struct-of-arrays so a lookup scans the 32-byte name column alone —
/// half a cache line of `u32` compares — and only touches the kind/id
/// columns on a hit.
#[derive(Clone)]
struct InlineCtx {
    len: u8,
    kinds: [u8; INLINE_CAP],
    names: [Name; INLINE_CAP],
    ids: [u32; INLINE_CAP],
}

impl InlineCtx {
    fn empty() -> InlineCtx {
        InlineCtx {
            len: 0,
            kinds: [0; INLINE_CAP],
            names: [Name::root(); INLINE_CAP],
            ids: [0; INLINE_CAP],
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    /// Index of `name`, by symbol equality (interned names compare as
    /// integers; order is irrelevant for membership).
    #[inline]
    fn position(&self, name: Name) -> Option<usize> {
        self.names[..self.len()].iter().position(|&n| n == name)
    }

    #[inline]
    fn entity_at(&self, i: usize) -> Entity {
        unpack(self.kinds[i], self.ids[i])
    }

    /// Lexicographic insertion point for a name known to be absent.
    fn insertion_point(&self, name: Name) -> usize {
        self.names[..self.len()]
            .iter()
            .position(|n| *n > name)
            .unwrap_or(self.len())
    }

    fn insert_at(&mut self, at: usize, name: Name, entity: Entity) {
        let len = self.len();
        debug_assert!(len < INLINE_CAP && at <= len);
        self.names.copy_within(at..len, at + 1);
        self.kinds.copy_within(at..len, at + 1);
        self.ids.copy_within(at..len, at + 1);
        let (kind, id) = pack(entity);
        self.names[at] = name;
        self.kinds[at] = kind;
        self.ids[at] = id;
        self.len += 1;
    }

    fn remove_at(&mut self, at: usize) -> Entity {
        let len = self.len();
        debug_assert!(at < len);
        let prev = self.entity_at(at);
        self.names.copy_within(at + 1..len, at);
        self.kinds.copy_within(at + 1..len, at);
        self.ids.copy_within(at + 1..len, at);
        self.len -= 1;
        prev
    }
}

/// The spilled tier: the pre-arena representation, boxed so the common
/// inline case never pays its footprint.
#[derive(Clone, Default)]
struct SpilledCtx {
    /// Hash index over the bindings: every `lookup` is O(1).
    bindings: FxHashMap<Name, Entity>,
    /// The bound names in lexicographic order. Iteration and display read
    /// this view, never the hash index, so observable order is independent
    /// of hashing and of name-interning order.
    order: Vec<Name>,
}

#[derive(Clone)]
enum Repr {
    Inline(InlineCtx),
    Spilled(Box<SpilledCtx>),
}

/// A finite-support total function from [`Name`]s to [`Entity`]s.
///
/// # Examples
///
/// ```
/// use naming_core::context::Context;
/// use naming_core::entity::{Entity, ObjectId};
/// use naming_core::name::Name;
///
/// let mut c = Context::new();
/// let etc = ObjectId::from_index(0);
/// c.bind(Name::new("etc"), etc);
/// assert_eq!(c.lookup(Name::new("etc")), Entity::Object(etc));
/// // A context is a *total* function: unbound names map to ⊥.
/// assert_eq!(c.lookup(Name::new("missing")), Entity::Undefined);
/// ```
#[derive(Clone)]
pub struct Context {
    repr: Repr,
    version: u64,
}

impl Default for Context {
    fn default() -> Context {
        Context {
            repr: Repr::Inline(InlineCtx::empty()),
            version: 0,
        }
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("bindings", &self.iter().collect::<Vec<_>>())
            .field("version", &self.version)
            .finish()
    }
}

/// Two contexts are equal when they are the same *function* `N → E`;
/// the version counter and the storage tier are bookkeeping, not part of
/// the function — an inline context equals a spilled one with the same
/// bindings.
impl PartialEq for Context {
    fn eq(&self, other: &Context) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Context {}

impl Context {
    /// Creates an empty context (every name maps to `⊥E`).
    pub fn new() -> Context {
        Context::default()
    }

    /// Creates a context from an iterator of bindings.
    pub fn from_bindings<I>(bindings: I) -> Context
    where
        I: IntoIterator<Item = (Name, Entity)>,
    {
        let mut c = Context::new();
        for (n, e) in bindings {
            c.bind(n, e);
        }
        c
    }

    /// Applies the context as a function: `c(n)`.
    ///
    /// Returns [`Entity::Undefined`] for unbound names — the context is a
    /// total function per the paper's model.
    #[inline]
    pub fn lookup(&self, name: Name) -> Entity {
        match &self.repr {
            Repr::Inline(inl) => match inl.position(name) {
                Some(i) => inl.entity_at(i),
                None => Entity::Undefined,
            },
            Repr::Spilled(sp) => sp.bindings.get(&name).copied().unwrap_or(Entity::Undefined),
        }
    }

    /// Returns the binding for `name` if one exists.
    #[inline]
    pub fn get(&self, name: Name) -> Option<Entity> {
        match &self.repr {
            Repr::Inline(inl) => inl.position(name).map(|i| inl.entity_at(i)),
            Repr::Spilled(sp) => sp.bindings.get(&name).copied(),
        }
    }

    /// True if `name` has an explicit binding.
    pub fn contains(&self, name: Name) -> bool {
        match &self.repr {
            Repr::Inline(inl) => inl.position(name).is_some(),
            Repr::Spilled(sp) => sp.bindings.contains_key(&name),
        }
    }

    /// Binds `name` to `entity`, returning the previous binding if any.
    ///
    /// Binding to [`Entity::Undefined`] is equivalent to [`Context::unbind`].
    pub fn bind(&mut self, name: Name, entity: impl Into<Entity>) -> Option<Entity> {
        let entity = entity.into();
        self.version += 1;
        if entity == Entity::Undefined {
            return self.remove_binding(name);
        }
        let prev = match &mut self.repr {
            Repr::Inline(inl) => {
                if let Some(i) = inl.position(name) {
                    let prev = inl.entity_at(i);
                    let (kind, id) = pack(entity);
                    inl.kinds[i] = kind;
                    inl.ids[i] = id;
                    Some(prev)
                } else if inl.len() < INLINE_CAP {
                    let at = inl.insertion_point(name);
                    inl.insert_at(at, name, entity);
                    None
                } else {
                    // Ninth distinct binding: spill to the hash index.
                    let mut sp = SpilledCtx {
                        bindings: FxHashMap::with_capacity_and_hasher(
                            INLINE_CAP * 2,
                            Default::default(),
                        ),
                        order: Vec::with_capacity(INLINE_CAP * 2),
                    };
                    for i in 0..inl.len() {
                        sp.bindings.insert(inl.names[i], inl.entity_at(i));
                        sp.order.push(inl.names[i]);
                    }
                    Self::spilled_insert(&mut sp, name, entity);
                    self.repr = Repr::Spilled(Box::new(sp));
                    None
                }
            }
            Repr::Spilled(sp) => Self::spilled_insert(sp, name, entity),
        };
        self.debug_check();
        prev
    }

    fn spilled_insert(sp: &mut SpilledCtx, name: Name, entity: Entity) -> Option<Entity> {
        let prev = sp.bindings.insert(name, entity);
        if prev.is_none() {
            if let Err(at) = sp.order.binary_search(&name) {
                sp.order.insert(at, name);
            }
        }
        prev
    }

    /// Removes the binding for `name`, returning it if it existed.
    pub fn unbind(&mut self, name: Name) -> Option<Entity> {
        self.version += 1;
        self.remove_binding(name)
    }

    fn remove_binding(&mut self, name: Name) -> Option<Entity> {
        let prev = match &mut self.repr {
            Repr::Inline(inl) => inl.position(name).map(|i| inl.remove_at(i)),
            Repr::Spilled(sp) => {
                let prev = sp.bindings.remove(&name);
                if prev.is_some() {
                    if let Ok(at) = sp.order.binary_search(&name) {
                        sp.order.remove(at);
                    }
                    if sp.bindings.len() <= DESPILL_AT {
                        // Shrunk back under the hysteresis mark: return to
                        // the inline tier (order is already sorted).
                        let mut inl = InlineCtx::empty();
                        for (i, &n) in sp.order.iter().enumerate() {
                            let (kind, id) = pack(sp.bindings[&n]);
                            inl.names[i] = n;
                            inl.kinds[i] = kind;
                            inl.ids[i] = id;
                        }
                        inl.len = sp.order.len() as u8;
                        self.repr = Repr::Inline(inl);
                    }
                }
                prev
            }
        };
        self.debug_check();
        prev
    }

    /// Number of explicit bindings (the support of the function).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(inl) => inl.len(),
            Repr::Spilled(sp) => sp.bindings.len(),
        }
    }

    /// True if the context has no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the context is currently in the spilled (hash-indexed)
    /// tier. Representation is unobservable through the map API — this
    /// accessor exists for tests and benchmarks pinning the two tiers
    /// against each other.
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, Repr::Spilled(_))
    }

    /// Forces the spilled representation regardless of size, without
    /// changing the function or the version counter. A diagnostic hook:
    /// benchmarks use it to measure inline vs. hash-index lookups at equal
    /// binding counts, and the equivalence tests use it to compare the two
    /// tiers directly. The context despills again per the usual rule when
    /// removals take it to [`DESPILL_AT`] bindings.
    pub fn force_spill(&mut self) {
        if let Repr::Inline(inl) = &self.repr {
            let mut sp = SpilledCtx::default();
            for i in 0..inl.len() {
                sp.bindings.insert(inl.names[i], inl.entity_at(i));
                sp.order.push(inl.names[i]);
            }
            self.repr = Repr::Spilled(Box::new(sp));
        }
        self.debug_check();
    }

    /// Mutation counter; bumps on every [`bind`](Context::bind) /
    /// [`unbind`](Context::unbind).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterates over bindings in lexicographic name order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { ctx: self, at: 0 }
    }

    /// Iterates over the bound names in lexicographic order.
    pub fn names(&self) -> impl Iterator<Item = Name> + '_ {
        self.iter().map(|(n, _)| n)
    }

    #[inline]
    fn pair_at(&self, at: usize) -> Option<(Name, Entity)> {
        match &self.repr {
            Repr::Inline(inl) => (at < inl.len()).then(|| (inl.names[at], inl.entity_at(at))),
            Repr::Spilled(sp) => sp.order.get(at).map(|&n| (n, sp.bindings[&n])),
        }
    }

    /// Returns a copy of this context with a fresh version counter.
    ///
    /// This models Unix-style context inheritance: "a child inherits the
    /// context of its parent. A parent and a child have coherence for all
    /// names until one of them modifies its context."
    pub fn inherit(&self) -> Context {
        Context {
            repr: self.repr.clone(),
            version: 0,
        }
    }

    /// True if two contexts agree on every name (same function `N → E`).
    ///
    /// Versions are ignored: two contexts with different mutation histories
    /// but identical bindings are the same function.
    pub fn same_function(&self, other: &Context) -> bool {
        self == other
    }

    /// True if the contexts agree on every name in `names`.
    ///
    /// This is the paper's §6.II condition `R(a1)(n) = R(a2)(n)` for all
    /// `n ∈ N'`: two activities have coherence for the subset `N'`.
    pub fn agree_on<'a, I>(&self, other: &Context, names: I) -> bool
    where
        I: IntoIterator<Item = &'a Name>,
    {
        names
            .into_iter()
            .all(|n| self.lookup(*n) == other.lookup(*n))
    }

    /// Names on which the two contexts disagree (symmetric difference of
    /// meaning), in lexicographic order.
    pub fn disagreements(&self, other: &Context) -> Vec<Name> {
        let mut out = Vec::new();
        let mut seen: Vec<Name> = self.names().collect();
        seen.extend(other.names());
        seen.sort_unstable();
        seen.dedup();
        for n in seen {
            if self.lookup(n) != other.lookup(n) {
                out.push(n);
            }
        }
        out
    }

    /// Debug-build invariant check, run after every mutation: the active
    /// tier respects its size bounds, names are strictly sorted and
    /// duplicate-free, and the spilled order view mirrors the hash index
    /// exactly. The CI transition leg runs the equivalence proptests in a
    /// debug build precisely so spills and despills cross this check.
    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            match &self.repr {
                Repr::Inline(inl) => {
                    assert!(inl.len() <= INLINE_CAP);
                    for w in inl.names[..inl.len()].windows(2) {
                        assert!(w[0] < w[1], "inline names out of order");
                    }
                }
                Repr::Spilled(sp) => {
                    assert_eq!(sp.bindings.len(), sp.order.len());
                    for w in sp.order.windows(2) {
                        assert!(w[0] < w[1], "spilled order out of order");
                    }
                    for n in &sp.order {
                        assert!(sp.bindings.contains_key(n), "order lists unbound name");
                    }
                }
            }
        }
    }
}

/// Iterator over a context's bindings in lexicographic name order; see
/// [`Context::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    ctx: &'a Context,
    at: usize,
}

impl Iterator for Iter<'_> {
    type Item = (Name, Entity);

    fn next(&mut self) -> Option<(Name, Entity)> {
        let pair = self.ctx.pair_at(self.at)?;
        self.at += 1;
        Some(pair)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ctx.len().saturating_sub(self.at);
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl FromIterator<(Name, Entity)> for Context {
    fn from_iter<I: IntoIterator<Item = (Name, Entity)>>(iter: I) -> Context {
        Context::from_bindings(iter)
    }
}

impl Extend<(Name, Entity)> for Context {
    fn extend<I: IntoIterator<Item = (Name, Entity)>>(&mut self, iter: I) {
        for (n, e) in iter {
            self.bind(n, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{ActivityId, ObjectId};

    fn obj(i: u32) -> Entity {
        Entity::Object(ObjectId::from_index(i))
    }

    #[test]
    fn total_function_semantics() {
        let mut c = Context::new();
        assert_eq!(c.lookup(Name::new("x")), Entity::Undefined);
        c.bind(Name::new("x"), ObjectId::from_index(1));
        assert_eq!(c.lookup(Name::new("x")), obj(1));
        assert_eq!(c.get(Name::new("y")), None);
    }

    #[test]
    fn bind_returns_previous() {
        let mut c = Context::new();
        assert_eq!(c.bind(Name::new("x"), ObjectId::from_index(1)), None);
        assert_eq!(
            c.bind(Name::new("x"), ObjectId::from_index(2)),
            Some(obj(1))
        );
        assert_eq!(c.unbind(Name::new("x")), Some(obj(2)));
        assert_eq!(c.unbind(Name::new("x")), None);
    }

    #[test]
    fn binding_undefined_unbinds() {
        let mut c = Context::new();
        c.bind(Name::new("x"), ObjectId::from_index(1));
        c.bind(Name::new("x"), Entity::Undefined);
        assert!(!c.contains(Name::new("x")));
        assert!(c.is_empty());
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut c = Context::new();
        let v0 = c.version();
        c.bind(Name::new("x"), ObjectId::from_index(1));
        assert!(c.version() > v0);
        let v1 = c.version();
        c.unbind(Name::new("x"));
        assert!(c.version() > v1);
    }

    #[test]
    fn inherit_copies_bindings_resets_version() {
        let mut parent = Context::new();
        parent.bind(Name::new("x"), ObjectId::from_index(1));
        parent.bind(Name::new("y"), ActivityId::from_index(0));
        let child = parent.inherit();
        assert!(child.same_function(&parent));
        assert_eq!(child.version(), 0);
    }

    #[test]
    fn agreement_and_disagreement() {
        let mut a = Context::new();
        let mut b = Context::new();
        let x = Name::new("x");
        let y = Name::new("y");
        a.bind(x, ObjectId::from_index(1));
        b.bind(x, ObjectId::from_index(1));
        a.bind(y, ObjectId::from_index(2));
        b.bind(y, ObjectId::from_index(3));
        assert!(a.agree_on(&b, [&x]));
        assert!(!a.agree_on(&b, [&x, &y]));
        assert_eq!(a.disagreements(&b), vec![y]);
    }

    #[test]
    fn iteration_is_lexicographic() {
        let mut c = Context::new();
        c.bind(Name::new("zeta"), ObjectId::from_index(1));
        c.bind(Name::new("alpha"), ObjectId::from_index(2));
        c.bind(Name::new("mid"), ObjectId::from_index(3));
        let names: Vec<&str> = c.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn hash_index_and_sorted_view_stay_consistent() {
        // Interleave binds, rebinds and unbinds; the sorted view must track
        // the bindings exactly, with no duplicates or ghosts.
        let mut c = Context::new();
        let names: Vec<Name> = ["m", "c", "z", "a", "q", "c", "z"]
            .iter()
            .map(|s| Name::new(s))
            .collect();
        for (i, &n) in names.iter().enumerate() {
            c.bind(n, ObjectId::from_index(i as u32));
        }
        c.unbind(Name::new("q"));
        c.bind(Name::new("c"), Entity::Undefined); // bind-⊥ unbinds
        let listed: Vec<&str> = c.names().map(|n| n.as_str()).collect();
        assert_eq!(listed, vec!["a", "m", "z"]);
        assert_eq!(c.len(), 3);
        for n in c.names().collect::<Vec<_>>() {
            assert!(c.contains(n));
            assert_eq!(c.lookup(n), c.get(n).unwrap());
        }
        // Rebinding an existing name must not duplicate it in the view.
        c.bind(Name::new("a"), ObjectId::from_index(99));
        assert_eq!(c.names().count(), 3);
        assert_eq!(c.lookup(Name::new("a")), obj(99));
    }

    #[test]
    fn collect_and_extend() {
        let x = Name::new("x");
        let c: Context = [(x, obj(1))].into_iter().collect();
        assert_eq!(c.lookup(x), obj(1));
        let mut d = Context::new();
        d.extend([(x, obj(2))]);
        assert_eq!(d.lookup(x), obj(2));
    }

    #[test]
    fn spills_at_ninth_binding_and_stays_equivalent() {
        let mut c = Context::new();
        for i in 0..INLINE_CAP {
            c.bind(Name::new(&format!("spill-{i:02}")), obj(i as u32));
            assert!(!c.is_spilled(), "≤{INLINE_CAP} bindings stay inline");
        }
        c.bind(Name::new("spill-99"), obj(99));
        assert!(c.is_spilled(), "binding {} spills", INLINE_CAP + 1);
        assert_eq!(c.len(), INLINE_CAP + 1);
        for i in 0..INLINE_CAP {
            assert_eq!(c.lookup(Name::new(&format!("spill-{i:02}"))), obj(i as u32));
        }
        // Iteration stays lexicographic across the spill.
        let listed: Vec<Name> = c.names().collect();
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn despills_with_hysteresis() {
        let mut c = Context::new();
        for i in 0..(INLINE_CAP + 1) {
            c.bind(Name::new(&format!("h-{i:02}")), obj(i as u32));
        }
        assert!(c.is_spilled());
        // Removing back to INLINE_CAP does *not* despill (hysteresis)…
        c.unbind(Name::new("h-00"));
        assert!(c.is_spilled());
        // …but shrinking to DESPILL_AT does.
        for i in 1..(INLINE_CAP + 1 - DESPILL_AT) {
            c.unbind(Name::new(&format!("h-{i:02}")));
        }
        assert_eq!(c.len(), DESPILL_AT);
        assert!(!c.is_spilled());
        // The survivors are intact and ordered.
        let listed: Vec<&str> = c.names().map(|n| n.as_str()).collect();
        let want: Vec<String> = (INLINE_CAP + 1 - DESPILL_AT..INLINE_CAP + 1)
            .map(|i| format!("h-{i:02}"))
            .collect();
        assert_eq!(listed, want.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut inline = Context::new();
        let mut spilled = Context::new();
        for i in 0..4u32 {
            let n = Name::new(&format!("eq-{i}"));
            inline.bind(n, obj(i));
            spilled.bind(n, obj(i));
        }
        spilled.force_spill();
        assert!(!inline.is_spilled() && spilled.is_spilled());
        assert_eq!(inline, spilled);
        assert!(inline.same_function(&spilled));
        // A divergence is seen through either representation.
        spilled.bind(Name::new("eq-0"), obj(7));
        assert_ne!(inline, spilled);
    }

    #[test]
    fn force_spill_preserves_function_and_version() {
        let mut c = Context::new();
        c.bind(Name::new("fs-a"), obj(1));
        c.bind(Name::new("fs-b"), ActivityId::from_index(2));
        let v = c.version();
        let before: Vec<(Name, Entity)> = c.iter().collect();
        c.force_spill();
        assert!(c.is_spilled());
        assert_eq!(c.version(), v);
        assert_eq!(c.iter().collect::<Vec<_>>(), before);
        assert_eq!(
            c.lookup(Name::new("fs-b")),
            ActivityId::from_index(2).into()
        );
    }
}
