//! Generation-versioned memoization of compound-name resolution.
//!
//! Resolution is a pure function of the traversed context objects'
//! states (§2: "the result depends on the state of the context objects
//! along the resolution path"). That makes its dependency footprint
//! exact and cheap to record: a resolution of `n1…nk` starting at `c`
//! touches at most `k` contexts. [`ResolutionMemo`] caches results keyed
//! on `(start context, name suffix)` and stamps every entry with the
//! *generation* (version counter) of each traversed context.
//!
//! Validation is then a version comparison, not a re-resolution:
//!
//! - **O(1) fast path** — every entry records the
//!   [`SystemState::naming_version`] at which it was last known valid.
//!   While the state's naming version is unchanged, the entry is valid
//!   with no further checks.
//! - **O(shards touched) middle path** — every entry also records the
//!   *shard generations* ([`SystemState::shard_version`]) of the shards
//!   its resolution path crossed. A write to one shard advances only that
//!   shard's generation, so after zone-local churn, entries whose paths
//!   stayed in other shards revalidate by comparing one integer per
//!   touched shard — without even reading the individual contexts.
//! - **O(path) slow path** — otherwise, a probed entry re-checks its
//!   recorded `(context, generation)` pairs. A bind or unbind bumps only
//!   the mutated context's generation, so exactly the entries whose
//!   resolution paths crossed that context fail the check; everything
//!   else revalidates by comparing a handful of integers.
//! - **Epoch flush** — raw escape hatches
//!   ([`SystemState::context_mut`], [`SystemState::object_state_mut`])
//!   may replace state wholesale and can rewind a context's own counter,
//!   so they advance the state *epoch*; entries from an older epoch are
//!   unconditionally stale.
//!
//! Because entries are keyed by suffix, one resolution of `/a/b/c` seeds
//! entries for `b/c` and `c` at the intermediate contexts, which later
//! resolutions of *different* names can reuse.
//!
//! The memo is bounded: inserts beyond capacity evict the least recently
//! used entry (an intrusive doubly linked list through a slab, so
//! probes, inserts and evictions are all O(1)).
//!
//! A memo is tied to the one [`SystemState`] it was populated against;
//! probing it with a different state is not meaningful (entries record
//! object ids and counters of the original).

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::entity::{Entity, ObjectId};
use crate::hash::FxHashMap;
use crate::name::Name;
use crate::state::SystemState;

/// Default bound on the number of memoized suffixes.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 16;

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Counters describing how a [`ResolutionMemo`] has behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Probes answered from a (validated) entry.
    pub hits: u64,
    /// Probes that found no entry.
    pub misses: u64,
    /// Entries discarded because a recorded generation or the epoch no
    /// longer matched the state.
    pub invalidations: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
}

impl MemoStats {
    /// Hit rate over all probes, in `[0, 1]`; `0` before any probe.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Probes between pushes of the local [`MemoStats`] into the global
/// metrics registry. Mirroring per batch rather than per operation keeps
/// the probe hot path free of atomics (a validated hit is ~15 ns; one
/// relaxed `fetch_add` would be a measurable fraction of that). The
/// remainder is flushed on [`Drop`], so registry totals are exact once
/// the memo is gone.
#[cfg(feature = "telemetry")]
const MIRROR_BATCH: u64 = 1024;

/// One recorded dependency: a traversed context and the generation its
/// version counter showed during the memoized resolution.
type Dep = (ObjectId, u64);

/// The distinct shards holding the dep contexts, each with the shard
/// naming version currently observed. Sorted by shard for determinism.
fn shard_footprint(state: &SystemState, deps: &[Dep]) -> Box<[(u32, u64)]> {
    let mut shards: Vec<u32> = deps
        .iter()
        .map(|&(o, _)| state.shard_of(o) as u32)
        .collect();
    shards.sort_unstable();
    shards.dedup();
    shards
        .into_iter()
        .map(|s| (s, state.shard_version(s as usize)))
        .collect()
}

/// Owned index key: start context plus name suffix.
type Key = (ObjectId, Box<[Name]>);

/// Borrowed view of a [`Key`], so the hot probe path can look up
/// `(ObjectId, &[Name])` without boxing the suffix. The standard
/// `Borrow<dyn Trait>` technique: both the owned key and the borrowed
/// pair present themselves through this trait, with `Hash`/`Eq` defined
/// once on the trait object so the map's contract (`k.borrow()` hashes
/// and compares like `k`) holds by construction.
trait KeyRef {
    fn parts(&self) -> (ObjectId, &[Name]);
}

impl KeyRef for Key {
    fn parts(&self) -> (ObjectId, &[Name]) {
        (self.0, &self.1)
    }
}

impl KeyRef for (ObjectId, &[Name]) {
    fn parts(&self) -> (ObjectId, &[Name]) {
        (self.0, self.1)
    }
}

impl Hash for dyn KeyRef + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let (start, suffix) = self.parts();
        start.hash(state);
        suffix.hash(state);
    }
}

impl PartialEq for dyn KeyRef + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.parts() == other.parts()
    }
}

impl Eq for dyn KeyRef + '_ {}

impl<'a> Borrow<dyn KeyRef + 'a> for Key {
    fn borrow(&self) -> &(dyn KeyRef + 'a) {
        self
    }
}

#[derive(Clone, Debug)]
struct Slot {
    start: ObjectId,
    suffix: Box<[Name]>,
    entity: Entity,
    /// `(context, generation)` for every context the resolution read.
    deps: Box<[Dep]>,
    /// `(shard, shard naming version)` for every distinct shard holding a
    /// dep context — the coarse footprint checked before the per-context
    /// deps. Refreshed whenever the entry revalidates.
    shard_deps: Box<[(u32, u64)]>,
    /// Epoch of the state when the entry was recorded.
    epoch: u64,
    /// Naming version at which the deps were last compared and found
    /// current; equality with the state's counter short-circuits
    /// validation entirely.
    validated_at: u64,
    prev: u32,
    next: u32,
}

/// A bounded, generation-validated cache of resolution results.
///
/// See the module docs for the invalidation protocol. Use
/// [`crate::resolve::Resolver::resolve_entity_memo`] to drive it, or
/// [`ResolutionMemo::probe`]/[`ResolutionMemo::record`] directly when
/// implementing a resolver.
///
/// # Examples
///
/// ```
/// use naming_core::prelude::*;
///
/// let mut sys = SystemState::new();
/// let root = sys.add_context_object("root");
/// let etc = sys.add_context_object("etc");
/// let passwd = sys.add_data_object("passwd", vec![]);
/// sys.bind(root, Name::root(), root).unwrap();
/// sys.bind(root, Name::new("etc"), etc).unwrap();
/// sys.bind(etc, Name::new("passwd"), passwd).unwrap();
///
/// let r = Resolver::new();
/// let mut memo = ResolutionMemo::new();
/// let name = CompoundName::parse_path("/etc/passwd").unwrap();
/// for _ in 0..3 {
///     assert_eq!(
///         r.resolve_entity_memo(&sys, root, &name, &mut memo),
///         Entity::Object(passwd)
///     );
/// }
/// assert_eq!(memo.stats().hits, 2);
///
/// // Rebinding /etc invalidates the affected entries; the memo heals.
/// let etc2 = sys.add_context_object("etc2");
/// sys.bind(root, Name::new("etc"), etc2).unwrap();
/// assert_eq!(
///     r.resolve_entity_memo(&sys, root, &name, &mut memo),
///     Entity::Undefined
/// );
/// assert!(memo.stats().invalidations > 0);
/// ```
#[derive(Clone, Debug)]
pub struct ResolutionMemo {
    index: FxHashMap<Key, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Most recently used slot, or NIL.
    head: u32,
    /// Least recently used slot, or NIL.
    tail: u32,
    capacity: usize,
    stats: MemoStats,
    /// The prefix of `stats` already pushed to the global metrics
    /// registry (see `mirror_stats`). Note that cloning a memo clones any
    /// not-yet-mirrored remainder with it, so both copies will eventually
    /// flush it — registry totals are aggregates, per-memo `stats()` is
    /// the exact record.
    #[cfg(feature = "telemetry")]
    mirrored: MemoStats,
}

impl Default for ResolutionMemo {
    fn default() -> ResolutionMemo {
        ResolutionMemo::with_capacity(DEFAULT_MEMO_CAPACITY)
    }
}

/// Flushes the not-yet-mirrored counter remainder, so registry totals
/// are exact once every memo has been dropped.
#[cfg(feature = "telemetry")]
impl Drop for ResolutionMemo {
    fn drop(&mut self) {
        self.mirror_stats();
    }
}

impl ResolutionMemo {
    /// A memo with the default capacity bound.
    pub fn new() -> ResolutionMemo {
        ResolutionMemo::default()
    }

    /// A memo holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> ResolutionMemo {
        assert!(capacity > 0, "memo capacity must be positive");
        ResolutionMemo {
            index: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: MemoStats::default(),
            #[cfg(feature = "telemetry")]
            mirrored: MemoStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Behavior counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Resets the counters (entries are kept).
    pub fn reset_stats(&mut self) {
        #[cfg(feature = "telemetry")]
        self.mirror_stats();
        self.stats = MemoStats::default();
        #[cfg(feature = "telemetry")]
        {
            self.mirrored = MemoStats::default();
        }
    }

    /// Pushes the counter deltas since the last flush into the global
    /// metrics registry (`memo.*`), so memo behavior shows up in
    /// `--metrics` snapshots alongside the other subsystems.
    #[cfg(feature = "telemetry")]
    fn mirror_stats(&mut self) {
        macro_rules! push {
            ($field:ident, $name:literal) => {
                let d = self.stats.$field.saturating_sub(self.mirrored.$field);
                if d > 0 {
                    naming_telemetry::counter!($name).add(d);
                }
            };
        }
        push!(hits, "memo.hits");
        push!(misses, "memo.misses");
        push!(invalidations, "memo.invalidations");
        push!(evictions, "memo.evictions");
        push!(inserts, "memo.inserts");
        self.mirrored = self.stats;
    }

    /// Flushes to the registry every [`MIRROR_BATCH`] probes. Each probe
    /// bumps exactly one of `hits`/`misses`, so their sum counts probes.
    #[inline]
    fn maybe_mirror(&mut self) {
        #[cfg(feature = "telemetry")]
        if (self.stats.hits + self.stats.misses).is_multiple_of(MIRROR_BATCH) {
            self.mirror_stats();
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up `(start, suffix)` and validates the entry against
    /// `state`'s generation counters. Returns the memoized entity on a
    /// validated hit; removes the entry and returns `None` if it has
    /// been invalidated by a write.
    pub fn probe(
        &mut self,
        state: &SystemState,
        start: ObjectId,
        suffix: &[Name],
    ) -> Option<Entity> {
        let Some(slot) = self.lookup(start, suffix) else {
            self.stats.misses += 1;
            self.maybe_mirror();
            return None;
        };
        let out = if self.validate(state, slot) {
            self.stats.hits += 1;
            self.touch(slot);
            Some(self.slots[slot as usize].entity)
        } else {
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            self.remove_slot(slot);
            None
        };
        self.maybe_mirror();
        out
    }

    /// Validating probe that also returns the entry's recorded dependency
    /// generations, so a resolver hitting mid-path can seed entries for the
    /// outer suffixes it walked to get there.
    pub(crate) fn probe_with_deps(
        &mut self,
        state: &SystemState,
        start: ObjectId,
        suffix: &[Name],
    ) -> Option<(Entity, Box<[Dep]>)> {
        let Some(slot) = self.lookup(start, suffix) else {
            self.stats.misses += 1;
            self.maybe_mirror();
            return None;
        };
        let out = if self.validate(state, slot) {
            self.stats.hits += 1;
            self.touch(slot);
            let s = &self.slots[slot as usize];
            Some((s.entity, s.deps.clone()))
        } else {
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            self.remove_slot(slot);
            None
        };
        self.maybe_mirror();
        out
    }

    /// Like [`ResolutionMemo::probe`] but *without* validation: returns
    /// whatever is stored, even if the state has moved on. This is the
    /// stale-serving mode used to measure cache incoherence (§5): a
    /// caching resolver that keeps answering from stale entries is
    /// exactly the paper's "cached name resolutions become incoherent
    /// with the authoritative contexts".
    ///
    /// Accounting matches the validating probes: every call bumps
    /// exactly one of `hits`/`misses` (absent → miss, present → hit),
    /// so [`MemoStats::hit_rate`] is comparable across probe variants.
    pub fn probe_stale(&mut self, start: ObjectId, suffix: &[Name]) -> Option<Entity> {
        let Some(slot) = self.lookup(start, suffix) else {
            self.stats.misses += 1;
            self.maybe_mirror();
            return None;
        };
        self.stats.hits += 1;
        self.maybe_mirror();
        self.touch(slot);
        Some(self.slots[slot as usize].entity)
    }

    /// True if the entry for `(start, suffix)` exists but no longer
    /// matches the state's generations (a *stale* entry). False when the
    /// entry is absent or still valid. Read-only: does not touch LRU
    /// order, counters, or the entry itself.
    pub fn is_stale(&self, state: &SystemState, start: ObjectId, suffix: &[Name]) -> bool {
        match self.lookup(start, suffix) {
            Some(slot) => !self.entry_current(state, &self.slots[slot as usize]),
            None => false,
        }
    }

    /// Records a resolution result with its dependency generations.
    /// `deps` lists every context the resolution read, with the version
    /// counter observed. Evicts the least recently used entry if the
    /// memo is full.
    pub fn record(
        &mut self,
        state: &SystemState,
        start: ObjectId,
        suffix: &[Name],
        entity: Entity,
        deps: &[Dep],
    ) {
        if let Some(slot) = self.lookup(start, suffix) {
            // Refresh in place (the previous entry may be stale).
            let shard_deps = shard_footprint(state, deps);
            let s = &mut self.slots[slot as usize];
            s.entity = entity;
            s.deps = Box::from(deps);
            s.shard_deps = shard_deps;
            s.epoch = state.epoch();
            s.validated_at = state.naming_version();
            self.touch(slot);
            return;
        }
        if self.index.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "capacity > 0 and memo full");
            self.stats.evictions += 1;
            self.remove_slot(lru);
        }
        let slot = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.slots.len()).expect("memo slot overflow");
                self.slots.push(Slot {
                    start,
                    suffix: Box::from(suffix),
                    entity: Entity::Undefined,
                    deps: Box::from(deps),
                    shard_deps: Box::from([]),
                    epoch: 0,
                    validated_at: 0,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        {
            let shard_deps = shard_footprint(state, deps);
            let s = &mut self.slots[slot as usize];
            s.start = start;
            s.suffix = Box::from(suffix);
            s.entity = entity;
            s.deps = Box::from(deps);
            s.shard_deps = shard_deps;
            s.epoch = state.epoch();
            s.validated_at = state.naming_version();
            s.prev = NIL;
            s.next = NIL;
        }
        self.index.insert((start, Box::from(suffix)), slot);
        self.push_front(slot);
        self.stats.inserts += 1;
    }

    /// Removes the entry for `(start, suffix)` regardless of validity,
    /// counting it as an invalidation. Returns whether an entry existed.
    pub fn remove(&mut self, start: ObjectId, suffix: &[Name]) -> bool {
        match self.lookup(start, suffix) {
            Some(slot) => {
                self.stats.invalidations += 1;
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Drops every entry, counting each as an invalidation (compare
    /// [`ResolutionMemo::clear`], which does not touch the counters).
    pub fn invalidate_all(&mut self) {
        self.stats.invalidations += self.index.len() as u64;
        self.clear();
    }

    /// Iterates over the cached entries as `(start, suffix, entity)`, in
    /// lexicographic `(start, suffix)` order (deterministic regardless of
    /// insertion history).
    pub fn entries(&self) -> impl Iterator<Item = (ObjectId, &[Name], Entity)> + '_ {
        let mut keys: Vec<&Key> = self.index.keys().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| {
            let slot = self.index[k];
            (k.0, &*k.1, self.slots[slot as usize].entity)
        })
    }

    /// Sweeps the memo, removing every entry invalidated by writes since
    /// it was recorded. Returns how many entries were dropped. This is
    /// the "heal" operation of a caching resolver that has been serving
    /// stale entries.
    pub fn invalidate_stale(&mut self, state: &SystemState) -> usize {
        let stale: Vec<u32> = self
            .index
            .values()
            .copied()
            .filter(|&slot| !self.entry_current(state, &self.slots[slot as usize]))
            .collect();
        let dropped = stale.len();
        for slot in stale {
            self.remove_slot(slot);
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    // --- internals --------------------------------------------------------

    /// Allocation-free index lookup through the borrowed key view.
    #[inline]
    fn lookup(&self, start: ObjectId, suffix: &[Name]) -> Option<u32> {
        self.index.get(&(start, suffix) as &dyn KeyRef).copied()
    }

    /// Validates `slot` against the state, refreshing its fast-path stamp
    /// on success. Three tiers: the O(1) naming-version stamp, the
    /// per-shard generation footprint, then the exact per-context deps.
    fn validate(&mut self, state: &SystemState, slot: u32) -> bool {
        let nv = state.naming_version();
        if self.slots[slot as usize].validated_at == nv {
            return true;
        }
        if self.slots[slot as usize].epoch != state.epoch() {
            return false;
        }
        // Shard tier: with the epoch unchanged, a dep context can only
        // have moved via bind/unbind, which bumps its shard's generation.
        // All touched shards unwritten ⇒ every dep unchanged.
        if self.slots[slot as usize]
            .shard_deps
            .iter()
            .all(|&(sh, v)| state.shard_version(sh as usize) == v)
        {
            self.slots[slot as usize].validated_at = nv;
            return true;
        }
        if self.entry_current(state, &self.slots[slot as usize]) {
            let s = &mut self.slots[slot as usize];
            s.validated_at = nv;
            for d in s.shard_deps.iter_mut() {
                d.1 = state.shard_version(d.0 as usize);
            }
            true
        } else {
            false
        }
    }

    /// The full generation check: same epoch, and every traversed context
    /// still shows the recorded generation.
    fn entry_current(&self, state: &SystemState, s: &Slot) -> bool {
        s.epoch == state.epoch()
            && s.deps
                .iter()
                .all(|&(o, generation)| match state.context(o) {
                    Some(c) => c.version() == generation,
                    None => false,
                })
    }

    fn detach(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let s = &mut self.slots[slot as usize];
        s.prev = NIL;
        s.next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].next = self.head;
        self.slots[slot as usize].prev = NIL;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Marks `slot` most recently used.
    fn touch(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.detach(slot);
        self.push_front(slot);
    }

    fn remove_slot(&mut self, slot: u32) {
        self.detach(slot);
        let s = &self.slots[slot as usize];
        let removed = self.index.remove(&(s.start, &*s.suffix) as &dyn KeyRef);
        debug_assert_eq!(removed, Some(slot));
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::CompoundName;
    use crate::resolve::Resolver;

    fn tree() -> (SystemState, ObjectId, ObjectId, ObjectId) {
        let mut s = SystemState::new();
        let root = s.add_context_object("root");
        let etc = s.add_context_object("etc");
        let passwd = s.add_data_object("passwd", b"x".to_vec());
        s.bind(root, Name::root(), root).unwrap();
        s.bind(root, Name::new("etc"), etc).unwrap();
        s.bind(etc, Name::new("passwd"), passwd).unwrap();
        (s, root, etc, passwd)
    }

    #[test]
    fn repeated_resolves_hit() {
        let (s, root, _, passwd) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        for _ in 0..10 {
            assert_eq!(
                r.resolve_entity_memo(&s, root, &n, &mut memo),
                Entity::Object(passwd)
            );
        }
        assert_eq!(memo.stats().hits, 9);
        assert!(memo.stats().inserts >= 1);
    }

    #[test]
    fn suffix_entries_are_shared_across_names() {
        let (s, root, etc, passwd) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let long = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &long, &mut memo);
        // The suffix "passwd" at etc was seeded by the longer resolution.
        // (Not parse_path: relative paths get a leading "." component.)
        let short = CompoundName::atom(Name::new("passwd"));
        let before = memo.stats().hits;
        assert_eq!(
            r.resolve_entity_memo(&s, etc, &short, &mut memo),
            Entity::Object(passwd)
        );
        assert_eq!(memo.stats().hits, before + 1);
    }

    #[test]
    fn bind_invalidates_exactly_affected_entries() {
        let (mut s, root, etc, passwd) = tree();
        let usr = s.add_context_object("usr");
        let vi = s.add_data_object("vi", vec![]);
        s.bind(root, Name::new("usr"), usr).unwrap();
        s.bind(usr, Name::new("vi"), vi).unwrap();

        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n_etc = CompoundName::parse_path("/etc/passwd").unwrap();
        let n_usr = CompoundName::parse_path("/usr/vi").unwrap();
        r.resolve_entity_memo(&s, root, &n_etc, &mut memo);
        r.resolve_entity_memo(&s, root, &n_usr, &mut memo);

        // Mutating etc only: /usr/vi entries survive, /etc/passwd dies —
        // but both resolutions still read `root`, so only the pure-suffix
        // entry under etc distinguishes them. Mutate etc:
        s.bind(etc, Name::new("group"), passwd).unwrap();

        // The suffix entry (etc, "passwd") is stale (etc's generation
        // moved); the (usr, "vi") suffix entry is not.
        assert!(memo.is_stale(&s, etc, &[Name::new("passwd")]));
        assert!(!memo.is_stale(&s, usr, &[Name::new("vi")]));

        // Probing revalidates or removes; results stay correct.
        assert_eq!(
            r.resolve_entity_memo(&s, root, &n_usr, &mut memo),
            Entity::Object(vi)
        );
        assert_eq!(
            r.resolve_entity_memo(&s, root, &n_etc, &mut memo),
            Entity::Object(passwd)
        );
        assert!(memo.stats().invalidations > 0);
    }

    #[test]
    fn escape_hatch_epoch_invalidates_everything() {
        let (mut s, root, etc, _) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &n, &mut memo);

        // Replace etc's context wholesale through the escape hatch; its
        // own version counter rewinds, but the epoch catches it.
        *s.context_mut(etc).unwrap() = crate::context::Context::new();
        assert!(memo.is_stale(&s, root, n.components()));
        assert_eq!(
            r.resolve_entity_memo(&s, root, &n, &mut memo),
            Entity::Undefined
        );
    }

    #[test]
    fn context_to_data_replacement_is_caught() {
        let (mut s, root, etc, _) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &n, &mut memo);
        *s.object_state_mut(etc) = crate::state::ObjectState::Data(vec![]);
        assert_eq!(
            r.resolve_entity_memo(&s, root, &n, &mut memo),
            Entity::Undefined
        );
    }

    #[test]
    fn lru_eviction_respects_bound_and_recency() {
        let mut s = SystemState::new();
        let root = s.add_context_object("root");
        let mut files = Vec::new();
        for i in 0..8 {
            let f = s.add_data_object(format!("f{i}"), vec![]);
            s.bind(root, Name::new(&format!("f{i}")), f).unwrap();
            files.push(f);
        }
        let r = Resolver::new();
        let mut memo = ResolutionMemo::with_capacity(4);
        let names: Vec<CompoundName> = (0..8)
            .map(|i| CompoundName::parse_path(&format!("f{i}")).unwrap())
            .collect();
        for n in &names {
            r.resolve_entity_memo(&s, root, n, &mut memo);
        }
        assert_eq!(memo.len(), 4);
        assert_eq!(memo.stats().evictions, 4);
        // The most recent four (f4..f7) survive; f0 was evicted.
        let before = memo.stats().hits;
        r.resolve_entity_memo(&s, root, &names[7], &mut memo);
        assert_eq!(memo.stats().hits, before + 1);
        let misses_before = memo.stats().misses;
        r.resolve_entity_memo(&s, root, &names[0], &mut memo);
        assert_eq!(memo.stats().misses, misses_before + 1);
    }

    #[test]
    fn stale_probe_serves_then_sweep_heals() {
        let (mut s, root, _, passwd) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &n, &mut memo);

        // Point /etc elsewhere; a stale probe still serves the old answer.
        let etc2 = s.add_context_object("etc2");
        s.bind(root, Name::new("etc"), etc2).unwrap();
        assert_eq!(
            memo.probe_stale(root, n.components()),
            Some(Entity::Object(passwd))
        );
        // The sweep drops stale entries; the stale probe now misses.
        assert!(memo.invalidate_stale(&s) > 0);
        assert_eq!(memo.probe_stale(root, n.components()), None);
    }

    #[test]
    fn every_probe_variant_bumps_exactly_one_of_hits_or_misses() {
        // `MemoStats::hit_rate` divides hits by hits+misses, so the sum
        // must count probes no matter which probe variant served them:
        // `probe`, `probe_with_deps`, and `probe_stale` each bump exactly
        // one of the two counters on every call (a validation failure
        // counts as a miss, never as "neither").
        let (mut s, root, _, passwd) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &n, &mut memo);

        let probes_before = memo.stats().hits + memo.stats().misses;
        let absent = CompoundName::parse_path("/no/such").unwrap();

        // Absent entry: all three variants must count a miss.
        let m0 = memo.stats().misses;
        assert_eq!(memo.probe_stale(root, absent.components()), None);
        assert_eq!(memo.stats().misses, m0 + 1);
        assert_eq!(memo.probe(&s, root, absent.components()), None);
        assert_eq!(memo.stats().misses, m0 + 2);
        assert_eq!(memo.probe_with_deps(&s, root, absent.components()), None);
        assert_eq!(memo.stats().misses, m0 + 3);

        // Present, current entry: all three variants must count a hit.
        let h0 = memo.stats().hits;
        assert_eq!(
            memo.probe_stale(root, n.components()),
            Some(Entity::Object(passwd))
        );
        assert_eq!(memo.stats().hits, h0 + 1);
        assert!(memo.probe(&s, root, n.components()).is_some());
        assert_eq!(memo.stats().hits, h0 + 2);
        assert!(memo.probe_with_deps(&s, root, n.components()).is_some());
        assert_eq!(memo.stats().hits, h0 + 3);

        // Present but invalidated entry: a validating probe counts a
        // miss (plus an invalidation), while the stale probe still
        // serves it as a hit — by design, but both count the probe.
        let etc2 = s.add_context_object("etc2");
        s.bind(root, Name::new("etc"), etc2).unwrap();
        let h1 = memo.stats().hits;
        assert!(memo.probe_stale(root, n.components()).is_some());
        assert_eq!(memo.stats().hits, h1 + 1);
        let m1 = memo.stats().misses;
        let inv = memo.stats().invalidations;
        assert_eq!(memo.probe(&s, root, n.components()), None);
        assert_eq!(memo.stats().misses, m1 + 1);
        assert_eq!(memo.stats().invalidations, inv + 1);

        // The invariant itself: eight probes, eight counts.
        let probes_after = memo.stats().hits + memo.stats().misses;
        assert_eq!(probes_after, probes_before + 8);
        let stats = memo.stats();
        let expected = stats.hits as f64 / (stats.hits + stats.misses) as f64;
        assert!((stats.hit_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn cross_shard_write_leaves_entries_valid_without_dep_walk() {
        // Two zones in two shards; a write to zone B must not invalidate
        // the memoized resolution through zone A, and the entry must
        // revalidate via the shard tier (its deps untouched).
        let mut s = SystemState::with_shards(2);
        let root = s.add_context_object_in(0, "root");
        let za = s.add_context_object_in(0, "za");
        let fa = s.add_data_object_in(0, "fa", vec![]);
        let zb = s.add_context_object_in(1, "zb");
        let fb = s.add_data_object_in(1, "fb", vec![]);
        s.bind(root, Name::root(), root).unwrap();
        s.bind(root, Name::new("za"), za).unwrap();
        s.bind(za, Name::new("fa"), fa).unwrap();
        s.bind(root, Name::new("zb"), zb).unwrap();
        s.bind(zb, Name::new("fb"), fb).unwrap();

        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let na = CompoundName::parse_path("/za/fa").unwrap();
        r.resolve_entity_memo(&s, root, &na, &mut memo);

        // Churn confined to shard 1.
        let v0 = s.shard_version(0);
        for i in 0..5 {
            let f = s.add_data_object_in(1, format!("x{i}"), vec![]);
            s.bind(zb, Name::new(&format!("x{i}")), f).unwrap();
        }
        assert_eq!(s.shard_version(0), v0);

        // The zone-A entry is not stale and hits again.
        assert!(!memo.is_stale(&s, root, na.components()));
        let hits = memo.stats().hits;
        assert_eq!(
            r.resolve_entity_memo(&s, root, &na, &mut memo),
            Entity::Object(fa)
        );
        assert_eq!(memo.stats().hits, hits + 1);
        assert_eq!(memo.stats().invalidations, 0);
    }

    #[test]
    fn same_shard_write_still_invalidates() {
        let mut s = SystemState::with_shards(2);
        let root = s.add_context_object_in(0, "root");
        let za = s.add_context_object_in(0, "za");
        let fa = s.add_data_object_in(0, "fa", vec![]);
        s.bind(root, Name::root(), root).unwrap();
        s.bind(root, Name::new("za"), za).unwrap();
        s.bind(za, Name::new("fa"), fa).unwrap();

        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let na = CompoundName::parse_path("/za/fa").unwrap();
        r.resolve_entity_memo(&s, root, &na, &mut memo);

        s.unbind(za, Name::new("fa")).unwrap();
        assert!(memo.is_stale(&s, za, &[Name::new("fa")]));
        assert_eq!(
            r.resolve_entity_memo(&s, root, &na, &mut memo),
            Entity::Undefined
        );
        assert!(memo.stats().invalidations > 0);
    }

    #[test]
    fn unaffected_entries_revalidate_after_unrelated_write() {
        let (mut s, root, _, passwd) = tree();
        let r = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        r.resolve_entity_memo(&s, root, &n, &mut memo);

        // A bind in a context nowhere near the path: entry revalidates
        // (slow path) and still hits.
        let side = s.add_context_object("side");
        let f = s.add_data_object("f", vec![]);
        s.bind(side, Name::new("f"), f).unwrap();
        let hits = memo.stats().hits;
        assert_eq!(
            r.resolve_entity_memo(&s, root, &n, &mut memo),
            Entity::Object(passwd)
        );
        assert_eq!(memo.stats().hits, hits + 1);
        assert_eq!(memo.stats().invalidations, 0);
    }
}
