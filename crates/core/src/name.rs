//! Names and compound names (§2 of the paper).
//!
//! A [`Name`] is an atomic identifier. The paper deliberately treats memory
//! addresses, network addresses, process identifiers, file names and user
//! names uniformly as "names"; we model a name as an interned string atom.
//!
//! A [`CompoundName`] is a nonempty sequence of names (the paper's `N+`),
//! resolved component-by-component through context objects (see
//! [`crate::resolve`]).
//!
//! Interning gives `Name` copy semantics and O(1) equality, while comparison
//! and display go through the resolved string so that iteration order over
//! [`crate::context::Context`] bindings is lexicographic and therefore
//! deterministic across runs regardless of interning order.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;
use serde::de::Visitor;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::hash::FxHashMap;

/// The conventional binding name for the root context (`/` in Unix paths).
pub const ROOT: &str = "/";
/// The conventional binding name for the current/working context.
pub const SELF: &str = ".";
/// The conventional binding name for the parent context.
pub const PARENT: &str = "..";

/// Initial interner capacity: sized so typical experiments (a few hundred
/// distinct atoms) never rehash under the write lock.
const INTERNER_CAPACITY: usize = 256;

/// The conventional names are interned first, at fixed symbols, so
/// [`Name::root`]/[`Name::self_`]/[`Name::parent`] need no lock at all.
const PREINTERNED: [&str; 3] = [ROOT, SELF, PARENT];
const ROOT_SYM: u32 = 0;
const SELF_SYM: u32 = 1;
const PARENT_SYM: u32 = 2;

/// Symbols per chunk of the lock-free symbol table.
const CHUNK_BITS: u32 = 10;
const CHUNK_LEN: usize = 1 << CHUNK_BITS;
/// Chunk directory size: caps the interner at `MAX_CHUNKS * CHUNK_LEN`
/// (4M) distinct atoms, far beyond any workload here (the million-context
/// scale grid interns ~1M segment atoms).
const MAX_CHUNKS: usize = 1 << 12;

/// The sym → string direction of the interner: an append-only chunked
/// table read without any lock.
///
/// `Name::as_str` is on the hot path of ordering, display and label
/// rendering; guarding it with the interner's `RwLock` made every compare
/// an atomic RMW on the lock word. Instead, symbols resolve through two
/// `Acquire` loads (chunk pointer, then slot) against this static
/// directory. Chunks are allocated and slots published — both with
/// `Release` stores — only by the single writer that holds the interner's
/// write lock, *before* the symbol is handed out; any thread that
/// legitimately holds a `Name` therefore observes its slot as non-null:
/// the name value reached it either via `Name::new` on the same thread or
/// through whatever synchronization transferred the `Name` across threads.
struct SymbolTable {
    chunks: [AtomicPtr<Chunk>; MAX_CHUNKS],
}

type Chunk = [AtomicPtr<&'static str>; CHUNK_LEN];

#[allow(clippy::declare_interior_mutable_const)]
const NULL_CHUNK: AtomicPtr<Chunk> = AtomicPtr::new(ptr::null_mut());
#[allow(clippy::declare_interior_mutable_const)]
const NULL_SLOT: AtomicPtr<&'static str> = AtomicPtr::new(ptr::null_mut());

static SYMBOLS: SymbolTable = SymbolTable {
    chunks: [NULL_CHUNK; MAX_CHUNKS],
};

impl SymbolTable {
    /// Publishes `s` as symbol `sym`. Must only be called while holding
    /// the interner's write lock (or during its `OnceLock` init), which
    /// serializes writers and orders the store before the symbol escapes.
    fn publish(&self, sym: u32, s: &'static str) {
        let chunk_idx = (sym >> CHUNK_BITS) as usize;
        let slot = (sym as usize) & (CHUNK_LEN - 1);
        assert!(chunk_idx < MAX_CHUNKS, "interner overflow");
        let mut chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            chunk = Box::into_raw(Box::new([NULL_SLOT; CHUNK_LEN]));
            self.chunks[chunk_idx].store(chunk, Ordering::Release);
        }
        // The slot cell is boxed so the atomic holds a thin pointer; the
        // box is leaked like the string itself (interned atoms live for
        // the program).
        let cell: *mut &'static str = Box::into_raw(Box::new(s));
        unsafe { (*chunk)[slot].store(cell, Ordering::Release) };
    }

    /// Resolves a symbol previously handed out by [`Name::new`] or the
    /// pre-interned constructors. Lock-free.
    #[inline]
    fn resolve(&self, sym: u32) -> &'static str {
        let chunk_idx = (sym >> CHUNK_BITS) as usize;
        let slot = (sym as usize) & (CHUNK_LEN - 1);
        let mut chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            // Only reachable for the pre-interned names before any
            // Name::new call has initialized the interner.
            interner();
            chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        }
        unsafe {
            let cell = (*chunk)[slot].load(Ordering::Acquire);
            debug_assert!(!cell.is_null(), "unpublished symbol {sym}");
            *cell
        }
    }
}

/// The string → sym direction of the interner; the sym → string direction
/// lives in [`SYMBOLS`] so reads skip this lock entirely.
struct Interner {
    index: FxHashMap<&'static str, u32>,
    len: u32,
}

impl Interner {
    fn new() -> Self {
        let mut interner = Interner {
            index: FxHashMap::with_capacity_and_hasher(INTERNER_CAPACITY, Default::default()),
            len: 0,
        };
        for (sym, s) in PREINTERNED.iter().enumerate() {
            SYMBOLS.publish(sym as u32, s);
            interner.index.insert(s, sym as u32);
            interner.len += 1;
        }
        interner
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

/// An atomic name (identifier).
///
/// Names are interned: two `Name`s constructed from equal strings are equal
/// and share storage. `Name` is `Copy` and cheap to pass around.
///
/// # Examples
///
/// ```
/// use naming_core::name::Name;
///
/// let a = Name::new("passwd");
/// let b = Name::new("passwd");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "passwd");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Name(u32);

impl Name {
    /// Interns `s` and returns its atom.
    pub fn new(s: &str) -> Name {
        {
            let guard = interner().read();
            if let Some(&sym) = guard.index.get(s) {
                return Name(sym);
            }
        }
        let mut guard = interner().write();
        if let Some(&sym) = guard.index.get(s) {
            return Name(sym);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = guard.len;
        SYMBOLS.publish(sym, leaked);
        guard.len = sym.checked_add(1).expect("interner overflow");
        guard.index.insert(leaked, sym);
        Name(sym)
    }

    /// Returns the string this name was interned from. Lock-free: resolves
    /// through the append-only symbol table, not the interner lock.
    #[inline]
    pub fn as_str(self) -> &'static str {
        SYMBOLS.resolve(self.0)
    }

    /// The conventional root name `/`. Pre-interned: no locking.
    pub fn root() -> Name {
        Name(ROOT_SYM)
    }

    /// The conventional self name `.`. Pre-interned: no locking.
    pub fn self_() -> Name {
        Name(SELF_SYM)
    }

    /// The conventional parent name `..`. Pre-interned: no locking.
    pub fn parent() -> Name {
        Name(PARENT_SYM)
    }

    /// True if this is the conventional root name `/`.
    pub fn is_root(self) -> bool {
        self.0 == ROOT_SYM
    }

    /// True if this is `.` or `..`.
    pub fn is_dot(self) -> bool {
        self.0 == SELF_SYM || self.0 == PARENT_SYM
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Name) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(&s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Serialize for Name {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Name {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Name, D::Error> {
        struct V;
        impl Visitor<'_> for V {
            type Value = Name;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a name string")
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<Name, E> {
                Ok(Name::new(v))
            }
        }
        deserializer.deserialize_str(V)
    }
}

/// Error returned when parsing an empty compound name.
///
/// The paper's `N+` is the set of *nonempty* sequences of names; an empty
/// sequence is not a compound name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseNameError;

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("compound name must be a nonempty sequence of names")
    }
}

impl std::error::Error for ParseNameError {}

/// A compound name: a nonempty sequence of [`Name`]s (the paper's `N+`).
///
/// Compound names are resolved left to right through context objects. The
/// Unix path `/etc/passwd` is the compound name `["/", "etc", "passwd"]`:
/// the leading `/` is an *ordinary name* conventionally bound to the root
/// context object in each activity's per-activity context — exactly the
/// paper's description of Unix, where "the context R(p) of a Unix process p
/// has two bindings: one for the root directory, and the other for the
/// working directory".
///
/// # Examples
///
/// ```
/// use naming_core::name::CompoundName;
///
/// let n = CompoundName::parse_path("/etc/passwd").unwrap();
/// assert_eq!(n.len(), 3);
/// assert_eq!(n.to_string(), "/etc/passwd");
///
/// let rel = CompoundName::parse_path("docs/ch1.tex").unwrap();
/// assert_eq!(rel.first().as_str(), ".");
/// assert_eq!(rel.to_string(), "docs/ch1.tex");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompoundName(Vec<Name>);

impl CompoundName {
    /// Creates a compound name from a nonempty sequence of components.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if `components` is empty.
    pub fn new<I>(components: I) -> Result<CompoundName, ParseNameError>
    where
        I: IntoIterator,
        I::Item: Into<Name>,
    {
        let v: Vec<Name> = components.into_iter().map(Into::into).collect();
        if v.is_empty() {
            Err(ParseNameError)
        } else {
            Ok(CompoundName(v))
        }
    }

    /// Creates a compound name of length one.
    pub fn atom(name: impl Into<Name>) -> CompoundName {
        CompoundName(vec![name.into()])
    }

    /// Parses a Unix-style path.
    ///
    /// `/a/b` becomes `["/", "a", "b"]`; a relative path `a/b` becomes
    /// `[".", "a", "b"]` so that resolution starts at the working-context
    /// binding. `.` and `..` components are kept verbatim — they are ordinary
    /// names with conventional bindings, not syntax.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] for the empty string.
    pub fn parse_path(path: &str) -> Result<CompoundName, ParseNameError> {
        if path.is_empty() {
            return Err(ParseNameError);
        }
        let mut v = Vec::new();
        if let Some(rest) = path.strip_prefix('/') {
            v.push(Name::root());
            for comp in rest.split('/').filter(|c| !c.is_empty()) {
                v.push(Name::new(comp));
            }
        } else {
            let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
            if comps.is_empty() {
                return Err(ParseNameError);
            }
            if comps[0] != SELF && comps[0] != PARENT {
                v.push(Name::self_());
            }
            for comp in comps {
                v.push(Name::new(comp));
            }
        }
        Ok(CompoundName(v))
    }

    /// Number of components (always ≥ 1).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false: compound names are nonempty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first component.
    pub fn first(&self) -> Name {
        self.0[0]
    }

    /// The last component.
    pub fn last(&self) -> Name {
        *self.0.last().expect("nonempty by construction")
    }

    /// The components as a slice.
    pub fn components(&self) -> &[Name] {
        &self.0
    }

    /// Iterates over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, Name> {
        self.0.iter()
    }

    /// Splits into the first component and the (possibly empty) rest.
    pub fn split_first(&self) -> (Name, &[Name]) {
        (self.0[0], &self.0[1..])
    }

    /// Returns a new compound name with `suffix` appended.
    pub fn join(&self, suffix: impl Into<Name>) -> CompoundName {
        let mut v = self.0.clone();
        v.push(suffix.into());
        CompoundName(v)
    }

    /// Concatenates two compound names.
    pub fn concat(&self, other: &CompoundName) -> CompoundName {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        CompoundName(v)
    }

    /// Returns the compound name with `prefix` components stripped, if the
    /// prefix matches and at least one component remains.
    pub fn strip_prefix(&self, prefix: &[Name]) -> Option<CompoundName> {
        if self.0.len() > prefix.len() && self.0[..prefix.len()] == *prefix {
            Some(CompoundName(self.0[prefix.len()..].to_vec()))
        } else {
            None
        }
    }

    /// True if the name begins with the given prefix components.
    pub fn has_prefix(&self, prefix: &[Name]) -> bool {
        self.0.len() >= prefix.len() && self.0[..prefix.len()] == *prefix
    }

    /// True if this is an absolute path-style name (first component `/`).
    pub fn is_absolute(&self) -> bool {
        self.first().is_root()
    }

    /// Returns the parent name (all but the last component), if any remains.
    pub fn parent_name(&self) -> Option<CompoundName> {
        if self.0.len() > 1 {
            Some(CompoundName(self.0[..self.0.len() - 1].to_vec()))
        } else {
            None
        }
    }
}

impl fmt::Debug for CompoundName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompoundName({})", self)
    }
}

impl fmt::Display for CompoundName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let comps = &self.0;
        let mut start = 0;
        if comps[0].is_root() {
            // Absolute: print the leading slash without a separator after it.
            f.write_str("/")?;
            start = 1;
        } else if comps[0].as_str() == SELF && comps.len() > 1 {
            // Hide the implicit leading `.` of relative paths.
            start = 1;
        }
        for (i, c) in comps[start..].iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            f.write_str(c.as_str())?;
        }
        Ok(())
    }
}

impl From<Name> for CompoundName {
    fn from(n: Name) -> CompoundName {
        CompoundName(vec![n])
    }
}

impl std::str::FromStr for CompoundName {
    type Err = ParseNameError;
    fn from_str(s: &str) -> Result<CompoundName, ParseNameError> {
        CompoundName::parse_path(s)
    }
}

impl<'a> IntoIterator for &'a CompoundName {
    type Item = &'a Name;
    type IntoIter = std::slice::Iter<'a, Name>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Name::new("alpha");
        let b = Name::new("alpha");
        let c = Name::new("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn conventional_names_are_preinterned() {
        // The lock-free accessors and Name::new must agree on the symbols,
        // whichever runs first.
        assert_eq!(Name::root(), Name::new(ROOT));
        assert_eq!(Name::self_(), Name::new(SELF));
        assert_eq!(Name::parent(), Name::new(PARENT));
        assert_eq!(Name::root().as_str(), "/");
        assert!(Name::root().is_root());
        assert!(Name::self_().is_dot() && Name::parent().is_dot());
        assert!(!Name::root().is_dot() && !Name::new("x").is_root());
    }

    #[test]
    fn symbol_table_spans_chunks() {
        // Intern enough distinct atoms to force the lock-free symbol table
        // past its first chunk; every atom must still resolve.
        let names: Vec<Name> = (0..(CHUNK_LEN + 16))
            .map(|i| Name::new(&format!("chunk-span-{i:05}")))
            .collect();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(n.as_str(), format!("chunk-span-{i:05}"));
        }
    }

    #[test]
    fn name_ordering_is_lexicographic() {
        // Intern in reverse lexicographic order to show ordering does not
        // depend on interning order.
        let z = Name::new("zzz-order-test");
        let a = Name::new("aaa-order-test");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn special_names() {
        assert!(Name::root().is_root());
        assert!(Name::self_().is_dot());
        assert!(Name::parent().is_dot());
        assert!(!Name::new("x").is_dot());
    }

    #[test]
    fn parse_absolute_path() {
        let n = CompoundName::parse_path("/etc/passwd").unwrap();
        assert_eq!(n.len(), 3);
        assert!(n.is_absolute());
        assert_eq!(n.first(), Name::root());
        assert_eq!(n.last(), Name::new("passwd"));
        assert_eq!(n.to_string(), "/etc/passwd");
    }

    #[test]
    fn parse_root_alone() {
        let n = CompoundName::parse_path("/").unwrap();
        assert_eq!(n.len(), 1);
        assert_eq!(n.to_string(), "/");
    }

    #[test]
    fn parse_relative_path_inserts_self() {
        let n = CompoundName::parse_path("a/b").unwrap();
        assert_eq!(n.first(), Name::self_());
        assert_eq!(n.len(), 3);
        assert_eq!(n.to_string(), "a/b");
    }

    #[test]
    fn parse_dotdot_kept_verbatim() {
        let n = CompoundName::parse_path("../x").unwrap();
        assert_eq!(n.first(), Name::parent());
        assert_eq!(n.to_string(), "../x");
    }

    #[test]
    fn parse_collapses_double_slashes() {
        let n = CompoundName::parse_path("/a//b/").unwrap();
        assert_eq!(n.len(), 3);
        assert_eq!(n.to_string(), "/a/b");
    }

    #[test]
    fn parse_empty_is_error() {
        assert!(CompoundName::parse_path("").is_err());
        assert!(CompoundName::new(Vec::<Name>::new()).is_err());
    }

    #[test]
    fn join_and_concat() {
        let n = CompoundName::parse_path("/a").unwrap();
        let m = n.join("b");
        assert_eq!(m.to_string(), "/a/b");
        let r = CompoundName::parse_path("c/d").unwrap();
        let j = m.concat(&r);
        assert_eq!(j.len(), m.len() + r.len());
    }

    #[test]
    fn prefix_ops() {
        let n = CompoundName::parse_path("/vice/usr/alice").unwrap();
        let prefix = [Name::root(), Name::new("vice")];
        assert!(n.has_prefix(&prefix));
        let rest = n.strip_prefix(&prefix).unwrap();
        assert_eq!(rest.to_string(), "usr/alice");
        assert!(n.strip_prefix(&[Name::new("nope")]).is_none());
    }

    #[test]
    fn parent_name() {
        let n = CompoundName::parse_path("/a/b").unwrap();
        assert_eq!(n.parent_name().unwrap().to_string(), "/a");
        let one = CompoundName::atom(Name::new("x"));
        assert!(one.parent_name().is_none());
    }

    #[test]
    fn display_of_leading_self() {
        let n = CompoundName::parse_path("./a").unwrap();
        assert_eq!(n.to_string(), "a");
        let only_self = CompoundName::atom(Name::self_());
        assert_eq!(only_self.to_string(), ".");
    }

    #[test]
    fn from_str_roundtrip() {
        let n: CompoundName = "/usr/bin/cc".parse().unwrap();
        assert_eq!(n.to_string(), "/usr/bin/cc");
    }

    #[test]
    fn serde_roundtrip() {
        // Serialize via serde to a simple in-memory representation.
        let n = CompoundName::parse_path("/a/b").unwrap();
        let json = serde_json_like(&n);
        assert!(json.contains("\"a\""));
    }

    // Minimal check that serde impls exist without a json dependency.
    fn serde_json_like(n: &CompoundName) -> String {
        format!(
            "{:?}",
            n.components()
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
        )
    }
}
