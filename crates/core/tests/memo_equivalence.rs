//! Property test: the generation-versioned memoized resolver is
//! observationally identical to the naive resolver.
//!
//! A single [`ResolutionMemo`] lives across a random interleaving of binds,
//! unbinds, bind-to-⊥, whole-context replacement through the escape hatch,
//! and resolutions. After every mutation the memo silently holds entries the
//! write may have invalidated; every resolution must nevertheless agree with
//! a from-scratch naive walk — under direct resolution and under every
//! closure rule (`R(activity)`, `R(sender)`, `R(object)`, and a per-source
//! mix) for every name source.

use naming_core::closure::PerSourceRule;
use naming_core::prelude::*;
use proptest::prelude::*;

const N_CTX: usize = 5;
const N_DATA: usize = 3;
const N_ACT: usize = 3;
const NAMES: [&str; 8] = ["/", ".", "..", "x", "y", "z", "w", "v"];

struct Fixture {
    sys: SystemState,
    reg: ContextRegistry,
    ctxs: Vec<ObjectId>,
    data: Vec<ObjectId>,
    acts: Vec<ActivityId>,
}

fn fixture() -> Fixture {
    let mut sys = SystemState::new();
    let ctxs: Vec<ObjectId> = (0..N_CTX)
        .map(|i| sys.add_context_object(format!("c{i}")))
        .collect();
    let data: Vec<ObjectId> = (0..N_DATA)
        .map(|i| sys.add_data_object(format!("d{i}"), vec![]))
        .collect();
    let acts: Vec<ActivityId> = (0..N_ACT)
        .map(|i| sys.add_activity(format!("a{i}")))
        .collect();
    let mut reg = ContextRegistry::new();
    for (i, &a) in acts.iter().enumerate() {
        reg.set_activity_context(a, ctxs[i % N_CTX]);
    }
    // Objects with embedded names resolve in the context of another object.
    for (i, &d) in data.iter().enumerate() {
        reg.set_object_context(d, ctxs[(i + 1) % N_CTX]);
    }
    Fixture {
        sys,
        reg,
        ctxs,
        data,
        acts,
    }
}

/// Every entity a binding may point at: contexts, data objects, activities.
fn entity(f: &Fixture, pick: u8) -> Entity {
    let pool = N_CTX + N_DATA + N_ACT;
    match (pick as usize) % pool {
        i if i < N_CTX => Entity::Object(f.ctxs[i]),
        i if i < N_CTX + N_DATA => Entity::Object(f.data[i - N_CTX]),
        i => Entity::Activity(f.acts[i - N_CTX - N_DATA]),
    }
}

fn compound(b: u8, c: u8) -> CompoundName {
    let len = 1 + (b as usize) % 3;
    let comps: Vec<Name> = (0..len)
        .map(|k| Name::new(NAMES[(c as usize + k * 3) % NAMES.len()]))
        .collect();
    CompoundName::new(comps).expect("nonempty")
}

/// All the resolution circumstances the closure layer distinguishes.
fn metas(f: &Fixture) -> Vec<MetaContext> {
    vec![
        MetaContext::internal(f.acts[0]),
        MetaContext::from_message(f.acts[0], f.acts[1]),
        MetaContext::from_object(f.acts[1], f.data[0]),
        MetaContext::from_object(f.acts[2], f.ctxs[0]),
    ]
}

fn rules() -> Vec<Box<dyn ResolutionRule + Sync>> {
    vec![
        Box::new(StandardRule::OfResolver),
        Box::new(StandardRule::OfSender),
        Box::new(StandardRule::OfSourceObject),
        Box::new(PerSourceRule {
            internal: StandardRule::OfResolver,
            message: StandardRule::OfSender,
            object: StandardRule::OfSourceObject,
        }),
    ]
}

proptest! {
    #[test]
    fn memoized_resolution_matches_naive(
        ops in proptest::collection::vec((0u8..6, 0u8..32, 0u8..32, 0u8..32), 1..100),
    ) {
        let mut f = fixture();
        let resolver = Resolver::new();
        let mut memo = ResolutionMemo::new();
        let rules = rules();
        for (op, a, b, c) in ops {
            let ctx = f.ctxs[(a as usize) % N_CTX];
            match op {
                0 | 1 => {
                    let name = Name::new(NAMES[(b as usize) % NAMES.len()]);
                    let target = entity(&f, c);
                    f.sys.bind(ctx, name, target).expect("ctx is a context");
                }
                2 => {
                    let name = Name::new(NAMES[(b as usize) % NAMES.len()]);
                    if b % 2 == 0 {
                        f.sys.unbind(ctx, name).expect("ctx is a context");
                    } else {
                        // bind-⊥ is the other spelling of unbind.
                        f.sys.bind(ctx, name, Entity::Undefined).expect("ctx");
                    }
                }
                3 => {
                    // Escape hatch: replace the whole context. This rewinds
                    // the context's own version counter — only the state
                    // epoch protects the memo here.
                    *f.sys.context_mut(ctx).expect("ctx is a context") = Context::new();
                }
                _ => {
                    let name = compound(b, c);
                    let naive = resolver.resolve_entity(&f.sys, ctx, &name);
                    let memoized =
                        resolver.resolve_entity_memo(&f.sys, ctx, &name, &mut memo);
                    prop_assert_eq!(naive, memoized, "direct resolution diverged");
                    for rule in &rules {
                        for m in metas(&f) {
                            let naive =
                                resolve_with_rule(&f.sys, &f.reg, rule.as_ref(), &m, &name);
                            let memoized = resolve_with_rule_memo(
                                &f.sys, &f.reg, rule.as_ref(), &m, &name, &mut memo,
                            );
                            prop_assert_eq!(
                                naive, memoized,
                                "rule resolution diverged"
                            );
                        }
                    }
                }
            }
        }
        // Final exhaustive sweep: every start × a spread of names, after the
        // full mutation history, still agrees.
        for &start in &f.ctxs {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    let name = compound(b, c);
                    prop_assert_eq!(
                        resolver.resolve_entity(&f.sys, start, &name),
                        resolver.resolve_entity_memo(&f.sys, start, &name, &mut memo),
                        "post-run sweep diverged"
                    );
                }
            }
        }
    }
}
