//! Property test: a sharded [`SystemState`] is observationally identical to
//! the unsharded (single-shard) state.
//!
//! The same random script of binds, unbinds, bind-to-⊥, escape-hatch context
//! replacement, and resolutions is applied to `SystemState::new()` and to
//! `SystemState::with_shards(k)` with objects spread round-robin across the
//! shards. Object ids differ between the two layouts (sharded ids carry the
//! shard in their high bits), so results are compared through a creation-order
//! mapping. The two sides must produce the same answers, the same ⊥ verdicts,
//! and — because the memo's shard tier only short-circuits validations that
//! the exact per-context check would also have passed — bit-identical
//! [`MemoStats`].

use naming_core::prelude::*;
use proptest::prelude::*;

const N_CTX: usize = 6;
const N_DATA: usize = 3;
const N_ACT: usize = 2;
const NAMES: [&str; 8] = ["/", ".", "..", "x", "y", "z", "w", "v"];

/// One side of the comparison: a state plus its objects in creation order.
struct Side {
    sys: SystemState,
    /// Contexts first, then data objects — index `i` on both sides names
    /// "the same" object.
    objs: Vec<ObjectId>,
    acts: Vec<ActivityId>,
    memo: ResolutionMemo,
}

fn flat_side() -> Side {
    let mut sys = SystemState::new();
    let mut objs: Vec<ObjectId> = (0..N_CTX)
        .map(|i| sys.add_context_object(format!("c{i}")))
        .collect();
    objs.extend((0..N_DATA).map(|i| sys.add_data_object(format!("d{i}"), vec![])));
    let acts = (0..N_ACT)
        .map(|i| sys.add_activity(format!("a{i}")))
        .collect();
    Side {
        sys,
        objs,
        acts,
        memo: ResolutionMemo::new(),
    }
}

fn sharded_side(shards: usize) -> Side {
    let mut sys = SystemState::with_shards(shards);
    let mut objs: Vec<ObjectId> = (0..N_CTX)
        .map(|i| sys.add_context_object_in(i % shards, format!("c{i}")))
        .collect();
    objs.extend(
        (0..N_DATA).map(|i| sys.add_data_object_in((i + 1) % shards, format!("d{i}"), vec![])),
    );
    let acts = (0..N_ACT)
        .map(|i| sys.add_activity(format!("a{i}")))
        .collect();
    Side {
        sys,
        objs,
        acts,
        memo: ResolutionMemo::new(),
    }
}

/// Picks the same logical entity on a side: contexts, data, activities, ⊥.
fn entity(side: &Side, pick: u8) -> Entity {
    let pool = N_CTX + N_DATA + N_ACT + 1;
    match (pick as usize) % pool {
        i if i < N_CTX + N_DATA => Entity::Object(side.objs[i]),
        i if i < N_CTX + N_DATA + N_ACT => Entity::Activity(side.acts[i - N_CTX - N_DATA]),
        _ => Entity::Undefined,
    }
}

/// Maps a resolution result from the sharded side into the flat side's id
/// space so the two can be compared directly.
fn to_flat(flat: &Side, sharded: &Side, e: Entity) -> Entity {
    match e {
        Entity::Object(o) => {
            let i = sharded
                .objs
                .iter()
                .position(|&x| x == o)
                .expect("resolved object was created by the script");
            Entity::Object(flat.objs[i])
        }
        other => other,
    }
}

fn compound(b: u8, c: u8) -> CompoundName {
    let len = 1 + (b as usize) % 3;
    let comps: Vec<Name> = (0..len)
        .map(|k| Name::new(NAMES[(c as usize + k * 3) % NAMES.len()]))
        .collect();
    CompoundName::new(comps).expect("nonempty")
}

proptest! {
    #[test]
    fn sharded_state_matches_flat_state(
        shards in 2usize..9,
        ops in proptest::collection::vec((0u8..6, 0u8..32, 0u8..32, 0u8..32), 1..120),
    ) {
        let mut flat = flat_side();
        let mut sharded = sharded_side(shards);
        let resolver = Resolver::new();
        for (op, a, b, c) in ops {
            let i = (a as usize) % N_CTX;
            match op {
                0 | 1 => {
                    let name = Name::new(NAMES[(b as usize) % NAMES.len()]);
                    let tf = entity(&flat, c);
                    let ts = entity(&sharded, c);
                    flat.sys.bind(flat.objs[i], name, tf).expect("context");
                    sharded.sys.bind(sharded.objs[i], name, ts).expect("context");
                }
                2 => {
                    let name = Name::new(NAMES[(b as usize) % NAMES.len()]);
                    if b % 2 == 0 {
                        flat.sys.unbind(flat.objs[i], name).expect("context");
                        sharded.sys.unbind(sharded.objs[i], name).expect("context");
                    } else {
                        flat.sys.bind(flat.objs[i], name, Entity::Undefined).expect("context");
                        sharded.sys.bind(sharded.objs[i], name, Entity::Undefined).expect("context");
                    }
                }
                3 => {
                    // Escape hatch: replace the whole context on both sides.
                    *flat.sys.context_mut(flat.objs[i]).expect("context") = Context::new();
                    *sharded.sys.context_mut(sharded.objs[i]).expect("context") = Context::new();
                }
                _ => {
                    let name = compound(b, c);
                    for start in 0..N_CTX {
                        let f = resolver.resolve_entity(&flat.sys, flat.objs[start], &name);
                        let s =
                            resolver.resolve_entity(&sharded.sys, sharded.objs[start], &name);
                        prop_assert_eq!(f, to_flat(&flat, &sharded, s), "naive diverged");
                        let fm = resolver.resolve_entity_memo(
                            &flat.sys, flat.objs[start], &name, &mut flat.memo,
                        );
                        let sm = resolver.resolve_entity_memo(
                            &sharded.sys, sharded.objs[start], &name, &mut sharded.memo,
                        );
                        prop_assert_eq!(f, fm, "flat memo diverged from naive");
                        prop_assert_eq!(
                            fm, to_flat(&flat, &sharded, sm), "memoized diverged"
                        );
                    }
                    // The shard tier may answer validations the flat state
                    // settles with an exact dep walk, but it never changes
                    // which probes hit, miss, or invalidate.
                    prop_assert_eq!(
                        flat.memo.stats(), sharded.memo.stats(),
                        "memo accounting diverged"
                    );
                }
            }
        }
        // Post-run sweep: after the full mutation history every start × a
        // spread of names still agrees, and so does the accounting.
        for start in 0..N_CTX {
            for b in 0..3u8 {
                for c in 0..4u8 {
                    let name = compound(b, c);
                    let f = resolver.resolve_entity_memo(
                        &flat.sys, flat.objs[start], &name, &mut flat.memo,
                    );
                    let s = resolver.resolve_entity_memo(
                        &sharded.sys, sharded.objs[start], &name, &mut sharded.memo,
                    );
                    prop_assert_eq!(f, to_flat(&flat, &sharded, s), "sweep diverged");
                }
            }
        }
        prop_assert_eq!(flat.memo.stats(), sharded.memo.stats());
    }
}
