//! Property test: the two-tier [`Context`] representation is observationally
//! identical to a reference map, across the spill threshold in both
//! directions.
//!
//! A random script of binds (including rebinds and bind-to-⊥), unbinds and
//! forced spills is applied to three subjects at once:
//!
//! * a [`Context`] driven normally — it spills past [`INLINE_CAP`] bindings
//!   and despills when removals shrink it to [`DESPILL_AT`];
//! * a *twin* [`Context`] re-forced into the spilled (hash-indexed) tier
//!   after every operation — so the same script runs inline on one side and
//!   hash-indexed on the other;
//! * a `BTreeMap<Name, Entity>` model of the function's support.
//!
//! After every operation all three must agree on every probe: `lookup`,
//! `get`, `contains`, `len`, lexicographic iteration order, and `PartialEq`
//! between the two contexts (equality must not see the representation).
//! Run under `debug_assertions`, every mutation also crosses the context's
//! internal invariant checks — the CI transition leg relies on that.

use std::collections::BTreeMap;

use naming_core::context::{Context, DESPILL_AT, INLINE_CAP};
use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::Name;
use proptest::prelude::*;

/// Name pool larger than INLINE_CAP so scripts actually cross the spill
/// threshold; small enough that rebinds and unbinds are frequent.
const POOL: usize = INLINE_CAP + 5;

fn pool_name(i: usize) -> Name {
    Name::new(&format!("ctx-repr-{i:02}"))
}

/// Decoded script step: `kind` 0..=5 binds (weight 6), 6..=8 unbinds
/// (weight 3), 9 forces a spill (weight 1).
#[derive(Clone, Copy, Debug)]
enum Op {
    Bind(usize, usize),
    Unbind(usize),
    ForceSpill,
}

fn decode(kind: usize, name: usize, ent: usize) -> Op {
    match kind {
        0..=5 => Op::Bind(name, ent),
        6..=8 => Op::Unbind(name),
        _ => Op::ForceSpill,
    }
}

fn entity(e: usize) -> Entity {
    match e {
        0 => Entity::Undefined, // bind-⊥ is an unbind; the model mirrors that
        1..=6 => Entity::Object(ObjectId::from_index(e as u32)),
        _ => Entity::Activity(ActivityId::from_index(e as u32)),
    }
}

fn assert_agree(ctx: &Context, twin: &Context, model: &BTreeMap<Name, Entity>) {
    assert_eq!(ctx.len(), model.len());
    assert_eq!(twin.len(), model.len());
    assert_eq!(ctx.is_empty(), model.is_empty());
    for i in 0..POOL {
        let n = pool_name(i);
        let want = model.get(&n).copied();
        assert_eq!(ctx.get(n), want, "get({n}) on main");
        assert_eq!(twin.get(n), want, "get({n}) on twin");
        assert_eq!(ctx.lookup(n), want.unwrap_or(Entity::Undefined));
        assert_eq!(twin.lookup(n), want.unwrap_or(Entity::Undefined));
        assert_eq!(ctx.contains(n), want.is_some());
        assert_eq!(twin.contains(n), want.is_some());
    }
    // Iteration: lexicographic name order, matching the model exactly
    // (BTreeMap<Name, _> iterates in Name's lexicographic Ord).
    let listed: Vec<(Name, Entity)> = ctx.iter().collect();
    let want: Vec<(Name, Entity)> = model.iter().map(|(&n, &e)| (n, e)).collect();
    assert_eq!(listed, want, "main iteration");
    assert_eq!(twin.iter().collect::<Vec<_>>(), want, "twin iteration");
    let names: Vec<Name> = ctx.names().collect();
    assert!(names.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
    // Equality is representation-independent.
    assert_eq!(ctx, twin);
    assert!(ctx.same_function(twin));
    assert!(ctx.disagreements(twin).is_empty());
}

proptest! {
    #[test]
    fn two_tier_context_matches_reference_map(
        raw in prop::collection::vec((0usize..10, 0..POOL, 0..10usize), 1..120),
    ) {
        let mut ctx = Context::new();
        let mut twin = Context::new();
        let mut model: BTreeMap<Name, Entity> = BTreeMap::new();
        let mut forced = false;
        let mut bind_steps = 0usize;

        for &(kind, name, ent) in &raw {
            match decode(kind, name, ent) {
                Op::Bind(n, e) => {
                    bind_steps += 1;
                    let name = pool_name(n);
                    let ent = entity(e);
                    let prev_main = ctx.bind(name, ent);
                    let prev_twin = twin.bind(name, ent);
                    let prev_model = if ent == Entity::Undefined {
                        model.remove(&name)
                    } else {
                        model.insert(name, ent)
                    };
                    prop_assert_eq!(prev_main, prev_model, "bind return on main");
                    prop_assert_eq!(prev_twin, prev_model, "bind return on twin");
                }
                Op::Unbind(n) => {
                    let name = pool_name(n);
                    let prev_main = ctx.unbind(name);
                    let prev_twin = twin.unbind(name);
                    let prev_model = model.remove(&name);
                    prop_assert_eq!(prev_main, prev_model, "unbind return on main");
                    prop_assert_eq!(prev_twin, prev_model, "unbind return on twin");
                }
                Op::ForceSpill => {
                    ctx.force_spill();
                    forced = true;
                }
            }
            // The twin exercises the spilled tier for the whole script
            // (re-forced after any despill); the main context transitions
            // naturally in both directions.
            twin.force_spill();
            assert_agree(&ctx, &twin, &model);
        }

        // Tier invariants at the end of the script: more bindings than the
        // inline capacity must be spilled; a context that never grew past
        // the capacity (and was never forced) never spilled at all.
        if ctx.len() > INLINE_CAP {
            prop_assert!(ctx.is_spilled());
        }
        if !forced && bind_steps <= INLINE_CAP {
            prop_assert!(!ctx.is_spilled());
        }
    }

    #[test]
    fn spill_boundary_round_trip(extra in 1usize..6, remove in 0usize..12) {
        // Deterministic threshold crossing in both directions: grow to
        // INLINE_CAP + extra (must spill), then remove names one by one,
        // checking agreement with the model the whole way.
        let mut ctx = Context::new();
        let mut model: BTreeMap<Name, Entity> = BTreeMap::new();
        let total = INLINE_CAP + extra;
        for i in 0..total {
            let n = pool_name(i % POOL);
            let e = Entity::Object(ObjectId::from_index(i as u32));
            ctx.bind(n, e);
            model.insert(n, e);
            prop_assert_eq!(ctx.is_spilled(), model.len() > INLINE_CAP);
        }
        for i in 0..remove.min(total) {
            let n = pool_name(i % POOL);
            ctx.unbind(n);
            model.remove(&n);
            if model.len() <= DESPILL_AT {
                prop_assert!(!ctx.is_spilled(), "despill at {} bindings", model.len());
            }
            let listed: Vec<(Name, Entity)> = ctx.iter().collect();
            let want: Vec<(Name, Entity)> = model.iter().map(|(&n, &e)| (n, e)).collect();
            prop_assert_eq!(listed, want);
        }
    }
}
