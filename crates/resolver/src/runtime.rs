//! The event-driven pipelined service runtime: a reactor that multiplexes
//! many in-flight batch resolutions as explicit state-machine
//! continuations.
//!
//! [`ProtocolEngine::resolve_batch`] drives one batch at a time: its
//! round loop blocks (in virtual time) until every request of the round
//! is answered, so a batch stalled on a deep referral chain or a retry
//! backoff holds up everything queued behind it — head-of-line blocking,
//! one blocked "thread" per batch. The round structure it already has,
//! though, is exactly a suspended coroutine: what the blocking loop keeps
//! on its stack (pending referral work, outstanding request ids, retry
//! deadlines, accumulated answers) is a [`Continuation`] here, and the
//! [`PipelinedService`] reactor advances *every* admitted continuation as
//! its replies and deadline wakes arrive, interleaved on the same
//! simulated timeline.
//!
//! # Determinism
//!
//! Workers are *logical*: a continuation is assigned `seq % workers`
//! purely for metric attribution, and admission, sends, and completions
//! happen in submission order regardless of the worker count. Wake-ups
//! ride the existing [`World::schedule_wake`] axis. A run is therefore
//! byte-identical at any worker count — the CI leg diffs the bench output
//! across counts — and, for a single submitted batch, the reactor
//! reproduces the blocking driver's answers exactly (the equivalence
//! suite pins this over every workload, including chaos sweeps).
//!
//! # Admission and backpressure
//!
//! At most `workers × per_worker_limit` continuations are in flight;
//! submissions beyond the limit queue in FIFO order and are admitted as
//! completions free slots, at the virtual instant of the completion.
//! Queue wait (admission minus submission tick) is reported per batch.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::CompoundName;
use naming_sim::message::Payload;
use naming_sim::time::{Duration, VirtualTime};
use naming_sim::topology::MachineId;
use naming_sim::world::World;

use crate::engine::ProtocolEngine;
use crate::wire::{BatchReply, BatchRequest, NameTrie, Outcome};

/// Default per-worker bound on in-flight continuations. The reactor holds
/// thousands of suspended resolutions per worker; this is the admission
/// limit, not a preallocation.
pub const DEFAULT_PER_WORKER_LIMIT: usize = 2048;

/// Input slots riding one `(context, suffix)` exchange: `(slot index,
/// components of the slot's original name already consumed)`.
type Slots = Vec<(usize, usize)>;

/// One outstanding request of a continuation's current round.
#[derive(Debug)]
struct AwaitingRequest {
    entries: Vec<(CompoundName, Slots)>,
    mapping: Vec<u32>,
    /// Failover order: addressed authority first, then the other replicas
    /// of the context's group.
    candidates: Vec<(MachineId, ObjectId)>,
    /// Send attempts made so far (0-based next index into the rotation).
    attempt: u32,
}

/// A suspended batch resolution: everything the blocking round loop keeps
/// on its stack, made explicit so the reactor can park and resume it.
#[derive(Debug)]
struct Continuation {
    seq: u64,
    client: ActivityId,
    names: Vec<CompoundName>,
    entities: Vec<Entity>,
    unreachable: Vec<bool>,
    referrals: Vec<(CompoundName, MachineId, ObjectId)>,
    /// Next round's work: context to continue from → remaining suffix →
    /// riding slots. Referral answers feed this; a round start drains it.
    pending: BTreeMap<ObjectId, BTreeMap<CompoundName, Slots>>,
    /// The current round's outstanding requests, by correlation id.
    awaiting: BTreeMap<u64, AwaitingRequest>,
    /// Replies received for the current round, by correlation id.
    got: BTreeMap<u64, BatchReply>,
    rounds: u32,
    max_rounds: u32,
    messages: u64,
    servers_touched: u32,
    coalesced: u64,
    hops_saved: u64,
    submitted_at: VirtualTime,
    admitted_at: VirtualTime,
    worker: usize,
}

/// A completed pipelined batch resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinedAnswer {
    /// Submission sequence number (the ticket [`PipelinedService::submit`]
    /// returned).
    pub seq: u64,
    /// One entity per input name, in input order (possibly `⊥`).
    pub entities: Vec<Entity>,
    /// Per input slot: true when the slot's ⊥ is a transport verdict.
    pub unreachable: Vec<bool>,
    /// Protocol rounds (referral depth reached).
    pub rounds: u32,
    /// Wire messages attributed to this batch: requests sent plus replies
    /// received. (The blocking driver counts a global sent delta, which
    /// cannot be attributed once batches interleave.)
    pub messages: u64,
    /// Distinct server answers involved.
    pub servers_touched: u32,
    /// Duplicate in-flight `(context, suffix)` resolutions that rode a
    /// shared exchange.
    pub coalesced: u64,
    /// Server lookups avoided by shared-prefix compression.
    pub hops_saved: u64,
    /// Every referral any of the names followed, deduplicated and sorted.
    pub referrals: Vec<(CompoundName, MachineId, ObjectId)>,
    /// When the batch was submitted.
    pub submitted_at: VirtualTime,
    /// When the batch was admitted (first requests sent). Admission minus
    /// submission is the batch's queue wait.
    pub admitted_at: VirtualTime,
    /// When the last answer landed.
    pub completed_at: VirtualTime,
    /// The logical reactor worker the batch was attributed to.
    pub worker: usize,
}

impl PipelinedAnswer {
    /// Virtual ticks spent waiting for admission.
    pub fn queue_wait(&self) -> Duration {
        self.admitted_at - self.submitted_at
    }

    /// Virtual ticks from admission to completion.
    pub fn service_time(&self) -> Duration {
        self.completed_at - self.admitted_at
    }
}

/// Aggregate activity of a [`PipelinedService`], deterministic by
/// construction (virtual-time bookkeeping only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Logical worker count.
    pub workers: usize,
    /// Admission limit (continuations in flight at once).
    pub max_in_flight: usize,
    /// Batches submitted so far.
    pub submitted: u64,
    /// Batches completed so far.
    pub completed: u64,
    /// High-water mark of concurrently in-flight continuations.
    pub in_flight_hwm: usize,
    /// High-water mark of concurrently in-flight *name resolutions*
    /// (slots of in-flight continuations).
    pub in_flight_queries_hwm: usize,
    /// High-water mark of the admission backlog.
    pub backlog_hwm: usize,
}

/// The reactor: multiplexes many in-flight batch resolutions over one
/// [`ProtocolEngine`] and one [`World`] timeline.
#[derive(Debug)]
pub struct PipelinedService {
    engine: ProtocolEngine,
    workers: usize,
    max_in_flight: usize,
    backlog: VecDeque<Continuation>,
    inflight: BTreeMap<u64, Continuation>,
    /// Correlation id → owning continuation seq, for reply and wake
    /// routing. An id leaves the table when answered, superseded, or
    /// exhausted.
    routes: BTreeMap<u64, u64>,
    /// Continuations whose current round has every reply in, awaiting a
    /// state-machine step.
    ready: BTreeSet<u64>,
    /// Every client process that ever submitted; polled for replies.
    clients: BTreeSet<ActivityId>,
    done: BTreeMap<u64, PipelinedAnswer>,
    next_seq: u64,
    in_flight_queries: usize,
    report: PipelineReport,
    /// Safety bound on pump iterations per in-flight batch.
    max_steps: usize,
}

impl PipelinedService {
    /// Wraps an engine with `workers` logical reactor workers and the
    /// default per-worker admission limit.
    pub fn new(engine: ProtocolEngine, workers: usize) -> PipelinedService {
        PipelinedService::with_limit(engine, workers, DEFAULT_PER_WORKER_LIMIT)
    }

    /// Wraps an engine with an explicit per-worker in-flight limit.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `per_worker_limit` is zero.
    pub fn with_limit(
        engine: ProtocolEngine,
        workers: usize,
        per_worker_limit: usize,
    ) -> PipelinedService {
        assert!(workers > 0, "reactor needs at least one worker");
        assert!(per_worker_limit > 0, "per-worker limit must be positive");
        let max_in_flight = workers * per_worker_limit;
        PipelinedService {
            engine,
            workers,
            max_in_flight,
            backlog: VecDeque::new(),
            inflight: BTreeMap::new(),
            routes: BTreeMap::new(),
            ready: BTreeSet::new(),
            clients: BTreeSet::new(),
            done: BTreeMap::new(),
            next_seq: 0,
            in_flight_queries: 0,
            report: PipelineReport {
                workers,
                max_in_flight,
                ..PipelineReport::default()
            },
            max_steps: 100_000,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// Mutable access to the engine (placement changes, retry policy).
    pub fn engine_mut(&mut self) -> &mut ProtocolEngine {
        &mut self.engine
    }

    /// Unwraps the engine.
    pub fn into_engine(self) -> ProtocolEngine {
        self.engine
    }

    /// Aggregate activity so far.
    pub fn report(&self) -> PipelineReport {
        self.report
    }

    /// Continuations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Submits a batch: resolve `names` for `client` starting at the
    /// context object `start`. Returns the submission ticket. The batch
    /// is admitted immediately if a slot is free (its first requests go
    /// out now); otherwise it queues.
    pub fn submit(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.report.submitted += 1;
        self.clients.insert(client);
        let mut pending: BTreeMap<ObjectId, BTreeMap<CompoundName, Slots>> = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            pending
                .entry(start)
                .or_default()
                .entry(n.clone())
                .or_default()
                .push((i, 0));
        }
        let max_rounds = names.iter().map(|n| n.len() as u32).max().unwrap_or(0) + 1;
        let now = world.now();
        self.backlog.push_back(Continuation {
            seq,
            client,
            names: names.to_vec(),
            entities: vec![Entity::Undefined; names.len()],
            unreachable: vec![false; names.len()],
            referrals: Vec::new(),
            pending,
            awaiting: BTreeMap::new(),
            got: BTreeMap::new(),
            rounds: 0,
            max_rounds,
            messages: 0,
            servers_touched: 0,
            coalesced: 0,
            hops_saved: 0,
            submitted_at: now,
            admitted_at: now,
            worker: (seq % self.workers as u64) as usize,
        });
        self.admit(world);
        self.report.backlog_hwm = self.report.backlog_hwm.max(self.backlog.len());
        seq
    }

    /// Drives the reactor until every submitted batch has completed, then
    /// returns all completed answers in submission order.
    pub fn drain(&mut self, world: &mut World) -> Vec<PipelinedAnswer> {
        self.run(world);
        std::mem::take(&mut self.done).into_values().collect()
    }

    /// Completed answers collected so far, in submission order, without
    /// driving the reactor.
    pub fn take_completed(&mut self) -> Vec<PipelinedAnswer> {
        std::mem::take(&mut self.done).into_values().collect()
    }

    /// Pumps the event queue until every in-flight and queued batch has
    /// completed.
    pub fn run(&mut self, world: &mut World) {
        let budget = self
            .max_steps
            .saturating_mul(self.inflight.len() + self.backlog.len() + 1);
        let mut steps = 0usize;
        loop {
            self.admit(world);
            self.dispatch(world);
            if self.inflight.is_empty() && self.backlog.is_empty() {
                return;
            }
            if steps >= budget || !world.step() {
                // Dead protocol: no event will ever arrive for the
                // outstanding requests. Their slots get transport
                // verdicts; finishing those rounds may start new ones
                // (referrals already in hand), which re-arms the queue.
                self.fail_stalled();
                if steps >= budget {
                    // Out of budget: also drop queued work as unreachable.
                    while let Some(mut cont) = self.backlog.pop_front() {
                        cont.unreachable.iter_mut().for_each(|u| *u = true);
                        cont.admitted_at = world.now();
                        self.complete(world.now(), cont);
                    }
                }
                continue;
            }
            steps += 1;
            self.engine.drain_servers(world);
        }
    }

    /// Admits queued batches while slots are free, in submission order.
    fn admit(&mut self, world: &mut World) {
        while self.inflight.len() < self.max_in_flight {
            let Some(mut cont) = self.backlog.pop_front() else {
                return;
            };
            cont.admitted_at = world.now();
            self.in_flight_queries += cont.names.len();
            self.report.in_flight_queries_hwm = self
                .report
                .in_flight_queries_hwm
                .max(self.in_flight_queries);
            #[cfg(feature = "telemetry")]
            {
                naming_telemetry::gauge!("pipeline.in_flight").set(self.inflight.len() as i64 + 1);
                naming_telemetry::gauge!("pipeline.in_flight_queries")
                    .set(self.in_flight_queries as i64);
                naming_telemetry::histogram!("pipeline.queue_wait_ticks")
                    .record(cont.queue_wait_ticks());
            }
            if self.step_continuation(world, &mut cont) {
                self.in_flight_queries -= cont.names.len();
                self.complete(world.now(), cont);
            } else {
                self.report.in_flight_hwm = self.report.in_flight_hwm.max(self.inflight.len() + 1);
                self.inflight.insert(cont.seq, cont);
            }
        }
    }

    /// Routes delivered replies and fired deadline wakes to their
    /// continuations, then advances every continuation whose round
    /// completed.
    fn dispatch(&mut self, world: &mut World) {
        let clients: Vec<ActivityId> = self.clients.iter().copied().collect();
        for client in clients {
            while let Some(msg) = world.receive(client) {
                for part in &msg.parts {
                    let Payload::Bytes(b) = part else { continue };
                    let Some(rep) = BatchReply::decode(b.clone()) else {
                        continue;
                    };
                    self.route_reply(world, rep);
                }
            }
            for token in world.drain_wakes(client) {
                self.handle_wake(world, token);
            }
        }
        self.advance(world);
    }

    /// Files a reply with its continuation; unroutable ids are stale
    /// (superseded attempts) or stray.
    fn route_reply(&mut self, world: &mut World, rep: BatchReply) {
        let Some(seq) = self.routes.remove(&rep.id) else {
            self.engine.note_stale_reply(rep.id);
            return;
        };
        world.cancel_wake(rep.id);
        let cont = self
            .inflight
            .get_mut(&seq)
            .expect("routed id must have an in-flight continuation");
        cont.messages += 1;
        cont.got.insert(rep.id, rep);
        if cont.got.len() == cont.awaiting.len() {
            self.ready.insert(seq);
        }
    }

    /// A deadline fired: supersede the outstanding attempt and retransmit
    /// (rotating through failover candidates), or exhaust the hop.
    fn handle_wake(&mut self, world: &mut World, token: u64) {
        let Some(pol) = self.engine.retry_policy() else {
            return;
        };
        // Answered on the same step it expired (route removed), or a
        // stale token for an already-superseded attempt: ignore.
        let Some(&seq) = self.routes.get(&token) else {
            return;
        };
        let cont = self
            .inflight
            .get_mut(&seq)
            .expect("routed id must have an in-flight continuation");
        let Some(mut aw) = cont.awaiting.remove(&token) else {
            return;
        };
        self.routes.remove(&token);
        self.engine.supersede(token);
        aw.attempt += 1;
        if aw.attempt >= pol.max_attempts {
            self.engine.note_exhausted();
            for (_, slots) in &aw.entries {
                for &(slot, _) in slots {
                    cont.unreachable[slot] = true;
                }
            }
            // The request is given up; the round completes without it.
            if cont.got.len() == cont.awaiting.len() {
                self.ready.insert(seq);
            }
            return;
        }
        self.engine.note_retransmission();
        let (machine, ctx) = aw.candidates[aw.attempt as usize % aw.candidates.len()];
        if machine != aw.candidates[0].0 {
            self.engine.note_failover();
        }
        let group_names: Vec<CompoundName> = aw.entries.iter().map(|(n, _)| n.clone()).collect();
        let (trie, mapping) = NameTrie::build(&group_names);
        aw.mapping = mapping;
        let id = self.engine.alloc_id();
        let req = BatchRequest {
            id,
            start: ctx,
            trie,
        };
        let server = self.engine.service().server_on(machine);
        world.send(cont.client, server, vec![Payload::Bytes(req.encode())]);
        cont.messages += 1;
        let after = Duration::from_ticks(pol.timeout_ticks(id, aw.attempt));
        world.schedule_wake(cont.client, after, id);
        cont.awaiting.insert(id, aw);
        self.routes.insert(id, seq);
    }

    /// Advances every round-complete continuation; completions free
    /// admission slots immediately (same virtual instant).
    fn advance(&mut self, world: &mut World) {
        while let Some(seq) = self.ready.pop_first() {
            let Some(mut cont) = self.inflight.remove(&seq) else {
                continue;
            };
            if self.step_continuation(world, &mut cont) {
                self.in_flight_queries -= cont.names.len();
                self.complete(world.now(), cont);
                self.admit(world);
            } else {
                self.inflight.insert(seq, cont);
            }
        }
    }

    /// Runs a continuation's state machine as far as it can go without
    /// new input: finish the completed round, start the next, repeat
    /// while rounds resolve instantly (unplaced authorities). Returns
    /// true when the batch is complete.
    fn step_continuation(&mut self, world: &mut World, cont: &mut Continuation) -> bool {
        loop {
            if cont.got.len() < cont.awaiting.len() {
                return false; // suspended: outstanding requests remain
            }
            self.finish_round(cont);
            if cont.pending.is_empty() || cont.rounds >= cont.max_rounds {
                return true;
            }
            self.start_round(world, cont);
        }
    }

    /// Folds the completed round's replies into the continuation:
    /// resolved entities fill their slots, referrals feed the next
    /// round's pending work, transport verdicts flag their slots.
    fn finish_round(&mut self, cont: &mut Continuation) {
        for (id, aw) in std::mem::take(&mut cont.awaiting) {
            let Some(rep) = cont.got.remove(&id) else {
                continue;
            };
            cont.servers_touched += rep.servers_touched;
            cont.hops_saved += u64::from(rep.lookups_saved);
            for (k, (sent_name, slots)) in aw.entries.into_iter().enumerate() {
                let outcome = aw
                    .mapping
                    .get(k)
                    .and_then(|&q| rep.outcomes.get(q as usize));
                match outcome {
                    Some(Outcome::Resolved(e)) => {
                        for (slot, _) in slots {
                            cont.entities[slot] = *e;
                        }
                    }
                    Some(Outcome::Referral {
                        next_machine,
                        next_ctx,
                        remaining,
                    }) => {
                        let step = sent_name.len().saturating_sub(remaining.len());
                        let next = cont.pending.entry(*next_ctx).or_default();
                        let riders = next.entry(remaining.clone()).or_default();
                        for (slot, consumed) in slots {
                            let consumed = (consumed + step).min(cont.names[slot].len());
                            if consumed > 0 {
                                if let Ok(prefix) = CompoundName::new(
                                    cont.names[slot].components()[..consumed].iter().copied(),
                                ) {
                                    cont.referrals.push((prefix, *next_machine, *next_ctx));
                                }
                            }
                            riders.push((slot, consumed));
                        }
                    }
                    Some(Outcome::Unreachable { .. }) => {
                        for (slot, _) in slots {
                            cont.unreachable[slot] = true;
                        }
                    }
                    // NotFound / WrongServer / malformed reply: ⊥.
                    _ => {}
                }
            }
        }
        cont.got.clear();
    }

    /// Starts the next round: one [`BatchRequest`] per continue-from
    /// context, all sent before any reply is awaited — the same send
    /// order the blocking driver uses.
    fn start_round(&mut self, world: &mut World, cont: &mut Continuation) {
        cont.rounds += 1;
        let round = std::mem::take(&mut cont.pending);
        for (ctx, group) in round {
            let Some(machine) = self.engine.service().machine_of_object(ctx) else {
                // Nobody can be addressed: a transport verdict, not ⊥.
                for (_, slots) in group {
                    for (slot, _) in slots {
                        cont.unreachable[slot] = true;
                    }
                }
                continue;
            };
            let entries: Vec<(CompoundName, Slots)> = group.into_iter().collect();
            for (_, slots) in &entries {
                cont.coalesced += slots.len() as u64 - 1;
            }
            let group_names: Vec<CompoundName> = entries.iter().map(|(n, _)| n.clone()).collect();
            let (trie, mapping) = NameTrie::build(&group_names);
            let mut candidates: Vec<(MachineId, ObjectId)> = vec![(machine, ctx)];
            if self.engine.retry_policy().is_some() {
                for (m, fctx) in self.engine.service().failover_targets(ctx) {
                    if !candidates.iter().any(|&(cm, _)| cm == m) {
                        candidates.push((m, fctx));
                    }
                }
            }
            let id = self.engine.alloc_id();
            let req = BatchRequest {
                id,
                start: ctx,
                trie,
            };
            let server = self.engine.service().server_on(machine);
            world.send(cont.client, server, vec![Payload::Bytes(req.encode())]);
            cont.messages += 1;
            if let Some(pol) = self.engine.retry_policy() {
                let after = Duration::from_ticks(pol.timeout_ticks(id, 0));
                world.schedule_wake(cont.client, after, id);
            }
            cont.awaiting.insert(
                id,
                AwaitingRequest {
                    entries,
                    mapping,
                    candidates,
                    attempt: 0,
                },
            );
            self.routes.insert(id, cont.seq);
        }
    }

    /// The event queue went dry with requests outstanding: every
    /// unanswered request's slots get transport verdicts and its round
    /// completes without it.
    fn fail_stalled(&mut self) {
        let seqs: Vec<u64> = self.inflight.keys().copied().collect();
        for seq in seqs {
            let cont = self.inflight.get_mut(&seq).expect("seq just listed");
            let unanswered: Vec<u64> = cont
                .awaiting
                .keys()
                .copied()
                .filter(|id| !cont.got.contains_key(id))
                .collect();
            for id in unanswered {
                let aw = cont.awaiting.remove(&id).expect("id just listed");
                for (_, slots) in &aw.entries {
                    for &(slot, _) in slots {
                        cont.unreachable[slot] = true;
                    }
                }
                self.routes.remove(&id);
            }
            self.ready.insert(seq);
        }
    }

    /// Retires a finished continuation into the completed set.
    fn complete(&mut self, now: VirtualTime, cont: Continuation) {
        self.report.completed += 1;
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::gauge!("pipeline.in_flight").set(self.inflight.len() as i64);
            naming_telemetry::gauge!("pipeline.in_flight_queries")
                .set(self.in_flight_queries as i64);
            naming_telemetry::histogram!("pipeline.continuation_depth")
                .record(u64::from(cont.rounds));
            let (batches, queries) = crate::worker_metrics::batch_query_names(
                crate::worker_metrics::Family::Pipeline,
                cont.worker,
            );
            let reg = naming_telemetry::metrics::global();
            reg.counter(batches).bump();
            reg.counter(queries).add(cont.names.len() as u64);
        }
        let mut referrals = cont.referrals;
        referrals.sort();
        referrals.dedup();
        self.done.insert(
            cont.seq,
            PipelinedAnswer {
                seq: cont.seq,
                entities: cont.entities,
                unreachable: cont.unreachable,
                rounds: cont.rounds,
                messages: cont.messages,
                servers_touched: cont.servers_touched,
                coalesced: cont.coalesced,
                hops_saved: cont.hops_saved,
                referrals,
                submitted_at: cont.submitted_at,
                admitted_at: cont.admitted_at,
                completed_at: now,
                worker: cont.worker,
            },
        );
    }
}

impl Continuation {
    #[cfg(feature = "telemetry")]
    fn queue_wait_ticks(&self) -> u64 {
        (self.admitted_at - self.submitted_at).ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RetryPolicy;
    use crate::service::NameService;
    use naming_sim::store;

    /// Same shape as the engine tests' chain world: three machines, m0
    /// hosting the root, each hop's subtree on the next machine.
    fn chain_world(seed: u64) -> (World, NameService, Vec<MachineId>, ObjectId, Entity) {
        let mut w = World::new(seed);
        let net = w.add_network("n");
        let machines: Vec<MachineId> = (0..3)
            .map(|i| w.add_machine(format!("m{i}"), net))
            .collect();
        let root = w.machine_root(machines[0]);
        let root1 = w.machine_root(machines[1]);
        let root2 = w.machine_root(machines[2]);
        let hop1 = store::ensure_dir(w.state_mut(), root1, "self1");
        let hop2 = store::ensure_dir(w.state_mut(), root2, "self2");
        store::attach(w.state_mut(), root, "hop1", hop1, false);
        store::attach(w.state_mut(), hop1, "hop2", hop2, false);
        let leaf = store::create_file(w.state_mut(), hop2, "leaf", vec![]);
        let mut svc = NameService::install(&mut w, &machines);
        for &m in machines.iter().rev() {
            let r = w.machine_root(m);
            svc.place_subtree(&w, r, m);
        }
        (w, svc, machines, root, Entity::Object(leaf))
    }

    fn names(paths: &[&str]) -> Vec<CompoundName> {
        paths
            .iter()
            .map(|p| CompoundName::parse_path(p).unwrap())
            .collect()
    }

    /// A single submitted batch must reproduce the blocking driver's
    /// answers and accounting exactly, field for field.
    #[test]
    fn single_batch_matches_blocking_driver() {
        let batch = names(&["/hop1/hop2/leaf", "/hop1", "/hop1/hop2/missing", "/hop1"]);

        let (mut wa, svc_a, machines_a, root_a, _) = chain_world(71);
        let client_a = wa.spawn(machines_a[0], "client", None);
        let mut blocking = ProtocolEngine::new(svc_a);
        let want = blocking.resolve_batch(&mut wa, client_a, root_a, &batch);

        let (mut wb, svc_b, machines_b, root_b, _) = chain_world(71);
        let client_b = wb.spawn(machines_b[0], "client", None);
        let mut svc = PipelinedService::new(ProtocolEngine::new(svc_b), 4);
        svc.submit(&mut wb, client_b, root_b, &batch);
        let got = svc.drain(&mut wb);

        assert_eq!(got.len(), 1);
        let got = &got[0];
        assert_eq!(got.entities, want.entities);
        assert_eq!(got.unreachable, want.unreachable);
        assert_eq!(got.rounds, want.rounds);
        assert_eq!(got.referrals, want.referrals);
        assert_eq!(got.servers_touched, want.servers_touched);
        assert_eq!(got.coalesced, want.coalesced);
        assert_eq!(got.hops_saved, want.hops_saved);
        // Lossless: per-batch attribution (sends + replies) equals the
        // blocking driver's global sent delta, and the service time
        // equals the blocking latency.
        assert_eq!(got.messages, want.messages);
        assert_eq!(got.service_time(), want.latency);
        assert_eq!(got.queue_wait().ticks(), 0);
    }

    /// Many batches multiplex on one timeline and all resolve; answers
    /// come back in submission order and the in-flight mark shows real
    /// overlap.
    #[test]
    fn multiplexed_batches_all_resolve() {
        let (mut w, svc, machines, root, leaf) = chain_world(71);
        let client = w.spawn(machines[0], "client", None);
        let mut svc = PipelinedService::new(ProtocolEngine::new(svc), 2);
        let deep = names(&["/hop1/hop2/leaf"]);
        let shallow = names(&["/hop1"]);
        for i in 0..6 {
            let batch = if i % 2 == 0 { &deep } else { &shallow };
            svc.submit(&mut w, client, root, batch);
        }
        let answers = svc.drain(&mut w);
        assert_eq!(answers.len(), 6);
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
            if i % 2 == 0 {
                assert_eq!(a.entities, vec![leaf]);
                assert_eq!(a.rounds, 3);
            } else {
                assert!(a.entities[0].is_defined());
                assert_eq!(a.rounds, 1);
            }
            assert_eq!(a.worker, i % 2);
        }
        let rep = svc.report();
        assert_eq!(rep.submitted, 6);
        assert_eq!(rep.completed, 6);
        assert!(rep.in_flight_hwm >= 2, "batches never overlapped");
    }

    /// An independent shallow batch must not wait for a deep batch
    /// submitted ahead of it: its completion tick matches what it gets
    /// on an otherwise idle timeline.
    #[test]
    fn no_head_of_line_blocking() {
        // Baseline: the shallow batch alone.
        let (mut w, svc, machines, root, _) = chain_world(71);
        let client = w.spawn(machines[0], "client", None);
        let mut alone = PipelinedService::new(ProtocolEngine::new(svc), 1);
        alone.submit(&mut w, client, root, &names(&["/hop1"]));
        let baseline = alone.drain(&mut w)[0].service_time();

        // Same shallow batch admitted behind a 3-round deep batch, one
        // logical worker: still completes in its standalone time.
        let (mut w, svc, machines, root, _) = chain_world(71);
        let client = w.spawn(machines[0], "client", None);
        let mut svc = PipelinedService::new(ProtocolEngine::new(svc), 1);
        svc.submit(&mut w, client, root, &names(&["/hop1/hop2/leaf"]));
        svc.submit(&mut w, client, root, &names(&["/hop1"]));
        let answers = svc.drain(&mut w);
        assert_eq!(answers[1].queue_wait().ticks(), 0, "admission stalled");
        assert_eq!(answers[1].service_time(), baseline);
        assert!(
            answers[1].completed_at < answers[0].completed_at,
            "shallow batch waited behind the deep one"
        );
    }

    /// Dropped messages are retried to the same answers (generous
    /// deadline budget), and the retry counters move.
    #[test]
    fn retries_recover_dropped_exchanges() {
        let (mut w, svc, machines, root, leaf) = chain_world(71);
        w.set_message_drop_rate(0.3);
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        }));
        let mut svc = PipelinedService::new(engine, 2);
        for _ in 0..4 {
            svc.submit(&mut w, client, root, &names(&["/hop1/hop2/leaf", "/hop1"]));
        }
        let answers = svc.drain(&mut w);
        assert_eq!(answers.len(), 4);
        for a in &answers {
            assert_eq!(a.entities[0], leaf);
            assert!(a.entities[1].is_defined());
            assert_eq!(a.unreachable, vec![false, false]);
        }
        assert!(svc.engine().retry_counters().retransmissions > 0);
    }

    /// Total loss: every slot gets a transport verdict (unreachable),
    /// never a false authoritative ⊥ — same contract as the blocking
    /// driver.
    #[test]
    fn total_loss_yields_unreachable_verdicts() {
        let (mut w, svc, machines, root, _) = chain_world(71);
        w.set_message_drop_rate(1.0);
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy::default()));
        let mut svc = PipelinedService::new(engine, 1);
        svc.submit(&mut w, client, root, &names(&["/hop1/hop2/leaf", "/hop1"]));
        let answers = svc.drain(&mut w);
        assert_eq!(answers[0].entities, vec![Entity::Undefined; 2]);
        assert_eq!(answers[0].unreachable, vec![true, true]);
        assert!(svc.engine().retry_counters().exhausted > 0);
    }

    /// A start context nobody hosts is a transport verdict immediately.
    #[test]
    fn unplaced_context_is_unreachable() {
        let (mut w, svc, machines, root, _) = chain_world(71);
        // Created after placement: no machine claims it.
        let orphan = store::ensure_dir(w.state_mut(), root, "orphan");
        let client = w.spawn(machines[0], "client", None);
        let mut svc = PipelinedService::new(ProtocolEngine::new(svc), 1);
        svc.submit(&mut w, client, orphan, &names(&["/x"]));
        let answers = svc.drain(&mut w);
        assert_eq!(answers[0].entities, vec![Entity::Undefined]);
        assert_eq!(answers[0].unreachable, vec![true]);
    }

    /// An empty batch completes at its admission instant.
    #[test]
    fn empty_batch_completes_immediately() {
        let (mut w, svc, machines, root, _) = chain_world(71);
        let client = w.spawn(machines[0], "client", None);
        let mut svc = PipelinedService::new(ProtocolEngine::new(svc), 1);
        svc.submit(&mut w, client, root, &[]);
        let answers = svc.drain(&mut w);
        assert_eq!(answers.len(), 1);
        assert!(answers[0].entities.is_empty());
        assert_eq!(answers[0].rounds, 0);
        assert_eq!(answers[0].messages, 0);
    }

    /// Submissions past the in-flight limit queue, and queued batches are
    /// admitted at the virtual instant an earlier completion frees a
    /// slot — with a nonzero recorded queue wait.
    #[test]
    fn backpressure_queues_past_limit() {
        let (mut w, svc, machines, root, _) = chain_world(71);
        let client = w.spawn(machines[0], "client", None);
        let mut svc = PipelinedService::with_limit(ProtocolEngine::new(svc), 1, 1);
        let batch = names(&["/hop1/hop2/leaf"]);
        for _ in 0..3 {
            svc.submit(&mut w, client, root, &batch);
        }
        assert_eq!(svc.in_flight(), 1);
        let answers = svc.drain(&mut w);
        assert_eq!(answers.len(), 3);
        let rep = svc.report();
        assert_eq!(rep.in_flight_hwm, 1);
        assert_eq!(rep.backlog_hwm, 2);
        assert_eq!(answers[0].queue_wait().ticks(), 0);
        assert!(answers[1].queue_wait().ticks() > 0);
        assert_eq!(answers[1].admitted_at, answers[0].completed_at);
        assert!(answers[2].queue_wait().ticks() > answers[1].queue_wait().ticks());
        // Serialized through one slot: completions in submission order.
        assert!(answers[0].completed_at < answers[1].completed_at);
        assert!(answers[1].completed_at < answers[2].completed_at);
    }

    /// The reactor's interleaved timeline must not depend on the worker
    /// count: answers are identical at 1, 2, 4, and 9 workers.
    #[test]
    fn answers_are_identical_across_worker_counts() {
        let mut runs: Vec<Vec<PipelinedAnswer>> = Vec::new();
        for &workers in &[1usize, 2, 4, 9] {
            let (mut w, svc, machines, root, _) = chain_world(71);
            w.set_message_drop_rate(0.2);
            let client = w.spawn(machines[0], "client", None);
            let mut engine = ProtocolEngine::new(svc);
            engine.set_retry_policy(Some(RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::default()
            }));
            let mut svc = PipelinedService::new(engine, workers);
            for i in 0..8 {
                let batch = if i % 3 == 0 {
                    names(&["/hop1/hop2/leaf", "/hop1/hop2/missing"])
                } else {
                    names(&["/hop1"])
                };
                svc.submit(&mut w, client, root, &batch);
            }
            let mut answers = svc.drain(&mut w);
            // Worker attribution is the one field that may differ.
            for a in &mut answers {
                a.worker = 0;
            }
            runs.push(answers);
        }
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    }
}
