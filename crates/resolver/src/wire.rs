//! Wire encoding of the resolution protocol.
//!
//! Hand-rolled binary framing over [`bytes`]: requests and replies travel
//! as [`naming_sim::message::Payload::Bytes`] parts through the simulator's
//! message layer, exactly as a real name-service protocol would travel
//! over UDP/TCP.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::{CompoundName, Name};
use naming_sim::topology::MachineId;

/// How the client wants the lookup performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The server resolves as far as it can locally, then answers with a
    /// referral; the *client* contacts the next server.
    Iterative,
    /// The server chases referrals itself and returns the final answer.
    Recursive,
}

/// A resolution request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Correlation id chosen by the requester.
    pub id: u64,
    /// The context object to start in (must be hosted by the receiving
    /// server, or the server answers `WrongServer`).
    pub start: ObjectId,
    /// The remaining components to resolve.
    pub name: CompoundName,
    /// Iterative or recursive.
    pub mode: Mode,
}

/// A resolution reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Fully resolved.
    Resolved(Entity),
    /// Partially resolved: continue at `next_ctx` (hosted on
    /// `next_machine`) with the remaining components.
    Referral {
        /// The machine hosting the next context object.
        next_machine: MachineId,
        /// The next context object.
        next_ctx: ObjectId,
        /// What is left of the name.
        remaining: CompoundName,
    },
    /// The name does not denote anything (`⊥`).
    NotFound,
    /// The start context is not hosted by the queried server.
    WrongServer,
}

/// A reply, correlated to its request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// Echoes [`Request::id`].
    pub id: u64,
    /// The outcome.
    pub outcome: Outcome,
    /// Servers that did authoritative work for this answer (for hop
    /// accounting).
    pub servers_touched: u32,
}

/// A zone-update frame: the primary pushes its zone's current bindings to
/// a secondary, which installs them in its copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneUpdate {
    /// The primary zone object the update describes.
    pub zone: ObjectId,
    /// The zone's bindings at send time.
    pub bindings: Vec<(Name, Entity)>,
}

impl ZoneUpdate {
    /// Encodes the update into a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_ZONE_UPDATE);
        buf.put_u32(self.zone.index() as u32);
        buf.put_u32(u32::try_from(self.bindings.len()).expect("zone too large for wire"));
        for (n, e) in &self.bindings {
            put_name(&mut buf, *n);
            put_entity(&mut buf, *e);
        }
        buf.freeze()
    }

    /// Decodes an update frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<ZoneUpdate> {
        if buf.remaining() < 1 + 4 + 4 || buf.get_u8() != TAG_ZONE_UPDATE {
            return None;
        }
        let zone = ObjectId::from_index(buf.get_u32());
        let len = buf.get_u32() as usize;
        let mut bindings = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let n = get_name(&mut buf)?;
            let e = get_entity(&mut buf)?;
            bindings.push((n, e));
        }
        Some(ZoneUpdate { zone, bindings })
    }
}

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_ZONE_UPDATE: u8 = 3;

const OUT_RESOLVED: u8 = 1;
const OUT_REFERRAL: u8 = 2;
const OUT_NOT_FOUND: u8 = 3;
const OUT_WRONG_SERVER: u8 = 4;

const ENT_ACTIVITY: u8 = 1;
const ENT_OBJECT: u8 = 2;
const ENT_UNDEFINED: u8 = 3;

fn put_name(buf: &mut BytesMut, n: Name) {
    let s = n.as_str().as_bytes();
    buf.put_u16(u16::try_from(s.len()).expect("name too long for wire"));
    buf.put_slice(s);
}

fn get_name(buf: &mut Bytes) -> Option<Name> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return None;
    }
    let raw = buf.copy_to_bytes(len);
    let s = std::str::from_utf8(&raw).ok()?;
    Some(Name::new(s))
}

fn put_compound(buf: &mut BytesMut, name: &CompoundName) {
    buf.put_u16(u16::try_from(name.len()).expect("name too deep for wire"));
    for &c in name.components() {
        put_name(buf, c);
    }
}

fn get_compound(buf: &mut Bytes) -> Option<CompoundName> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    let mut comps = Vec::with_capacity(len);
    for _ in 0..len {
        comps.push(get_name(buf)?);
    }
    CompoundName::new(comps).ok()
}

fn put_entity(buf: &mut BytesMut, e: Entity) {
    match e {
        Entity::Activity(a) => {
            buf.put_u8(ENT_ACTIVITY);
            buf.put_u32(a.index() as u32);
        }
        Entity::Object(o) => {
            buf.put_u8(ENT_OBJECT);
            buf.put_u32(o.index() as u32);
        }
        Entity::Undefined => buf.put_u8(ENT_UNDEFINED),
    }
}

fn get_entity(buf: &mut Bytes) -> Option<Entity> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        ENT_ACTIVITY => {
            if buf.remaining() < 4 {
                return None;
            }
            Some(Entity::Activity(ActivityId::from_index(buf.get_u32())))
        }
        ENT_OBJECT => {
            if buf.remaining() < 4 {
                return None;
            }
            Some(Entity::Object(ObjectId::from_index(buf.get_u32())))
        }
        ENT_UNDEFINED => Some(Entity::Undefined),
        _ => None,
    }
}

impl Request {
    /// Encodes the request into a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_REQUEST);
        buf.put_u64(self.id);
        buf.put_u32(self.start.index() as u32);
        buf.put_u8(match self.mode {
            Mode::Iterative => 0,
            Mode::Recursive => 1,
        });
        put_compound(&mut buf, &self.name);
        buf.freeze()
    }

    /// Decodes a request frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Request> {
        if buf.remaining() < 1 + 8 + 4 + 1 || buf.get_u8() != TAG_REQUEST {
            return None;
        }
        let id = buf.get_u64();
        let start = ObjectId::from_index(buf.get_u32());
        let mode = match buf.get_u8() {
            0 => Mode::Iterative,
            1 => Mode::Recursive,
            _ => return None,
        };
        let name = get_compound(&mut buf)?;
        Some(Request {
            id,
            start,
            name,
            mode,
        })
    }
}

impl Reply {
    /// Encodes the reply into a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_REPLY);
        buf.put_u64(self.id);
        buf.put_u32(self.servers_touched);
        match &self.outcome {
            Outcome::Resolved(e) => {
                buf.put_u8(OUT_RESOLVED);
                put_entity(&mut buf, *e);
            }
            Outcome::Referral {
                next_machine,
                next_ctx,
                remaining,
            } => {
                buf.put_u8(OUT_REFERRAL);
                buf.put_u32(next_machine.0 as u32);
                buf.put_u32(next_ctx.index() as u32);
                put_compound(&mut buf, remaining);
            }
            Outcome::NotFound => buf.put_u8(OUT_NOT_FOUND),
            Outcome::WrongServer => buf.put_u8(OUT_WRONG_SERVER),
        }
        buf.freeze()
    }

    /// Decodes a reply frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Reply> {
        if buf.remaining() < 1 + 8 + 4 + 1 || buf.get_u8() != TAG_REPLY {
            return None;
        }
        let id = buf.get_u64();
        let servers_touched = buf.get_u32();
        let outcome = match buf.get_u8() {
            OUT_RESOLVED => Outcome::Resolved(get_entity(&mut buf)?),
            OUT_REFERRAL => {
                if buf.remaining() < 8 {
                    return None;
                }
                let next_machine = MachineId(buf.get_u32() as usize);
                let next_ctx = ObjectId::from_index(buf.get_u32());
                let remaining = get_compound(&mut buf)?;
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                }
            }
            OUT_NOT_FOUND => Outcome::NotFound,
            OUT_WRONG_SERVER => Outcome::WrongServer,
            _ => return None,
        };
        Some(Reply {
            id,
            outcome,
            servers_touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(p: &str) -> CompoundName {
        CompoundName::parse_path(p).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: 42,
            start: ObjectId::from_index(7),
            name: name("/usr/bin/cc"),
            mode: Mode::Recursive,
        };
        let decoded = Request::decode(r.encode()).unwrap();
        assert_eq!(decoded, r);
        let r2 = Request {
            mode: Mode::Iterative,
            ..r
        };
        assert_eq!(Request::decode(r2.encode()).unwrap().mode, Mode::Iterative);
    }

    #[test]
    fn reply_roundtrips() {
        for outcome in [
            Outcome::Resolved(Entity::Object(ObjectId::from_index(3))),
            Outcome::Resolved(Entity::Activity(ActivityId::from_index(9))),
            Outcome::Resolved(Entity::Undefined),
            Outcome::Referral {
                next_machine: MachineId(2),
                next_ctx: ObjectId::from_index(11),
                remaining: name("bin/cc"),
            },
            Outcome::NotFound,
            Outcome::WrongServer,
        ] {
            let r = Reply {
                id: 5,
                outcome: outcome.clone(),
                servers_touched: 3,
            };
            let d = Reply::decode(r.encode()).unwrap();
            assert_eq!(d.outcome, outcome);
            assert_eq!(d.id, 5);
            assert_eq!(d.servers_touched, 3);
        }
    }

    #[test]
    fn zone_update_roundtrip() {
        let up = ZoneUpdate {
            zone: ObjectId::from_index(12),
            bindings: vec![
                (Name::new("a"), Entity::Object(ObjectId::from_index(1))),
                (Name::new("b"), Entity::Activity(ActivityId::from_index(2))),
                (Name::new("c"), Entity::Undefined),
            ],
        };
        assert_eq!(ZoneUpdate::decode(up.encode()), Some(up.clone()));
        // Empty zone.
        let empty = ZoneUpdate {
            zone: ObjectId::from_index(0),
            bindings: vec![],
        };
        assert_eq!(ZoneUpdate::decode(empty.encode()), Some(empty));
        // A request frame is not an update.
        assert!(ZoneUpdate::decode(
            Request {
                id: 1,
                start: ObjectId::from_index(0),
                name: name("/x"),
                mode: Mode::Iterative,
            }
            .encode()
        )
        .is_none());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Request::decode(Bytes::from_static(&[])).is_none());
        assert!(Request::decode(Bytes::from_static(&[9, 0, 0])).is_none());
        assert!(Reply::decode(Bytes::from_static(&[1, 2, 3])).is_none());
        // A request frame is not a reply.
        let req = Request {
            id: 1,
            start: ObjectId::from_index(0),
            name: name("/x"),
            mode: Mode::Iterative,
        };
        assert!(Reply::decode(req.encode()).is_none());
        // Truncated compound name.
        let mut good = BytesMut::from(&req.encode()[..]);
        good.truncate(good.len() - 1);
        assert!(Request::decode(good.freeze()).is_none());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Decoding arbitrary bytes never panics; it either fails or
            /// yields a frame that re-encodes decodably.
            #[test]
            fn decode_tolerates_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
                let b = Bytes::from(data);
                if let Some(req) = Request::decode(b.clone()) {
                    prop_assert_eq!(Request::decode(req.encode()), Some(req));
                }
                if let Some(rep) = Reply::decode(b.clone()) {
                    let rt = Reply::decode(rep.encode()).unwrap();
                    prop_assert_eq!(rt, rep);
                }
                if let Some(up) = ZoneUpdate::decode(b) {
                    prop_assert_eq!(ZoneUpdate::decode(up.encode()), Some(up));
                }
            }

            /// Truncating a valid frame at any point never panics and never
            /// produces a *different* valid frame of the same kind.
            #[test]
            fn truncation_is_detected(cut in 0usize..64) {
                let req = Request {
                    id: 9,
                    start: ObjectId::from_index(4),
                    name: CompoundName::parse_path("/a/b/c").unwrap(),
                    mode: Mode::Recursive,
                };
                let full = req.encode();
                if cut < full.len() {
                    let truncated = full.slice(..cut);
                    if let Some(got) = Request::decode(truncated) {
                        // Only acceptable if truncation removed nothing
                        // semantically (never the case here since every
                        // byte matters) — so this must be the full frame.
                        prop_assert_eq!(got, req);
                    }
                }
            }

            /// Request round-trip for arbitrary well-formed content.
            #[test]
            fn request_roundtrip_general(
                id in any::<u64>(),
                start in 0u32..1_000_000,
                segs in proptest::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..8),
                recursive in any::<bool>(),
            ) {
                let name = CompoundName::new(segs.iter().map(|s| Name::new(s))).unwrap();
                let req = Request {
                    id,
                    start: ObjectId::from_index(start),
                    name,
                    mode: if recursive { Mode::Recursive } else { Mode::Iterative },
                };
                prop_assert_eq!(Request::decode(req.encode()), Some(req));
            }
        }
    }

    #[test]
    fn unicode_names_survive_the_wire() {
        let r = Request {
            id: 1,
            start: ObjectId::from_index(0),
            name: CompoundName::new([Name::new("café"), Name::new("naïve")]).unwrap(),
            mode: Mode::Iterative,
        };
        assert_eq!(Request::decode(r.encode()).unwrap().name, r.name);
    }
}
