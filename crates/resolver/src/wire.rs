//! Wire encoding of the resolution protocol.
//!
//! Hand-rolled binary framing over [`bytes`]: requests and replies travel
//! as [`naming_sim::message::Payload::Bytes`] parts through the simulator's
//! message layer, exactly as a real name-service protocol would travel
//! over UDP/TCP.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::lease::ZoneSerial;
use naming_core::name::{CompoundName, Name};
use naming_sim::topology::MachineId;

/// How the client wants the lookup performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The server resolves as far as it can locally, then answers with a
    /// referral; the *client* contacts the next server.
    Iterative,
    /// The server chases referrals itself and returns the final answer.
    Recursive,
}

/// A resolution request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Correlation id chosen by the requester.
    pub id: u64,
    /// The context object to start in (must be hosted by the receiving
    /// server, or the server answers `WrongServer`).
    pub start: ObjectId,
    /// The remaining components to resolve.
    pub name: CompoundName,
    /// Iterative or recursive.
    pub mode: Mode,
}

/// A resolution reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Fully resolved.
    Resolved(Entity),
    /// Partially resolved: continue at `next_ctx` (hosted on
    /// `next_machine`) with the remaining components.
    Referral {
        /// The machine hosting the next context object.
        next_machine: MachineId,
        /// The next context object.
        next_ctx: ObjectId,
        /// What is left of the name.
        remaining: CompoundName,
    },
    /// The name does not denote anything (`⊥`).
    NotFound,
    /// The start context is not hosted by the queried server.
    WrongServer,
    /// Resolution could not reach an authority: messages were lost, the
    /// server is down, or nobody is placed for the next zone. This is a
    /// *transport* verdict, categorically distinct from `NotFound` — a
    /// lost message says nothing about the binding, so `Unreachable` must
    /// never be reported (or cached) as `⊥`.
    Unreachable {
        /// Send attempts made before giving up (0 when no request could
        /// even be addressed, e.g. an unplaced start context).
        attempts: u32,
    },
}

/// A reply, correlated to its request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// Echoes [`Request::id`].
    pub id: u64,
    /// The outcome.
    pub outcome: Outcome,
    /// Servers that did authoritative work for this answer (for hop
    /// accounting).
    pub servers_touched: u32,
}

/// A zone-update frame: the primary pushes its zone's current bindings to
/// a secondary, which installs them in its copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneUpdate {
    /// The primary zone object the update describes.
    pub zone: ObjectId,
    /// The zone's bindings at send time.
    pub bindings: Vec<(Name, Entity)>,
}

impl ZoneUpdate {
    /// Exact encoded size of the frame, for pre-sizing buffers.
    pub fn wire_len(&self) -> usize {
        let bindings: usize = self
            .bindings
            .iter()
            .map(|(n, e)| 2 + n.as_str().len() + entity_wire_len(*e))
            .sum();
        1 + 4 + 4 + bindings
    }

    /// Encodes the update into an exactly pre-sized wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(TAG_ZONE_UPDATE);
        buf.put_u32(self.zone.index() as u32);
        buf.put_u32(u32::try_from(self.bindings.len()).expect("zone too large for wire"));
        for (n, e) in &self.bindings {
            put_name(&mut buf, *n);
            put_entity(&mut buf, *e);
        }
        debug_assert_eq!(buf.len(), self.wire_len());
        buf.freeze()
    }

    /// Decodes an update frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<ZoneUpdate> {
        if buf.remaining() < 1 + 4 + 4 || buf.get_u8() != TAG_ZONE_UPDATE {
            return None;
        }
        let zone = ObjectId::from_index(buf.get_u32());
        let len = buf.get_u32() as usize;
        let mut bindings = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let n = get_name(&mut buf)?;
            let e = get_entity(&mut buf)?;
            bindings.push((n, e));
        }
        Some(ZoneUpdate { zone, bindings })
    }
}

/// A diff-since-serial pull: the client reports, per zone (shard), the
/// last serial it has heard, and asks the authority for everything newer.
/// The IXFR analogue — [`ZoneDelta`] is the answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneDeltaRequest {
    /// Correlation id.
    pub id: u64,
    /// `(shard, serial already held)` per zone of interest.
    /// [`ZoneSerial::ZERO`] means "never synced" and in practice forces a
    /// full transfer.
    pub since: Vec<(usize, ZoneSerial)>,
}

impl ZoneDeltaRequest {
    /// Exact encoded size of the frame, for pre-sizing buffers.
    pub fn wire_len(&self) -> usize {
        1 + 8 + 2 + self.since.len() * (2 + 8)
    }

    /// Encodes the request into an exactly pre-sized frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(TAG_ZONE_DELTA_REQUEST);
        buf.put_u64(self.id);
        buf.put_u16(u16::try_from(self.since.len()).expect("too many shards for wire"));
        for &(shard, serial) in &self.since {
            buf.put_u16(u16::try_from(shard).expect("shard index exceeds wire width"));
            buf.put_u64(serial.get());
        }
        debug_assert_eq!(buf.len(), self.wire_len());
        buf.freeze()
    }

    /// Decodes a request frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<ZoneDeltaRequest> {
        if buf.remaining() < 1 + 8 + 2 || buf.get_u8() != TAG_ZONE_DELTA_REQUEST {
            return None;
        }
        let id = buf.get_u64();
        let count = buf.get_u16() as usize;
        let mut since = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            if buf.remaining() < 2 + 8 {
                return None;
            }
            let shard = buf.get_u16() as usize;
            since.push((shard, ZoneSerial::new(buf.get_u64())));
        }
        Some(ZoneDeltaRequest { id, since })
    }
}

/// One binding change inside a [`ShardDelta`]: `entity` is the new value
/// of `name` in context `ctx`; [`Entity::Undefined`] encodes an unbind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneChange {
    /// The context object the change landed in.
    pub ctx: ObjectId,
    /// The name whose binding changed.
    pub name: Name,
    /// The new binding (⊥ = the name was unbound).
    pub entity: Entity,
}

/// One zone's slice of a [`ZoneDelta`] reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardDelta {
    /// The zone (shard) this slice describes.
    pub shard: usize,
    /// The authority's serial as of this frame; the puller adopts it.
    pub serial: ZoneSerial,
    /// `true` — the requested serial fell outside the retained delta
    /// window (or had regressed) and `changes` is a complete dump of the
    /// zone's bindings (AXFR fallback). `false` — `changes` is the exact
    /// incremental diff since the requested serial (IXFR).
    pub full: bool,
    /// The changes, in commit order for incremental transfers.
    pub changes: Vec<ZoneChange>,
}

/// The authority's answer to a [`ZoneDeltaRequest`]: per requested zone,
/// either an incremental diff or a full transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneDelta {
    /// Echoes [`ZoneDeltaRequest::id`].
    pub id: u64,
    /// One slice per requested shard, in request order.
    pub shards: Vec<ShardDelta>,
}

impl ZoneDelta {
    /// Exact encoded size of the frame, for pre-sizing buffers.
    pub fn wire_len(&self) -> usize {
        let shards: usize = self
            .shards
            .iter()
            .map(|s| {
                2 + 8
                    + 1
                    + 4
                    + s.changes
                        .iter()
                        .map(|c| 4 + 2 + c.name.as_str().len() + entity_wire_len(c.entity))
                        .sum::<usize>()
            })
            .sum();
        1 + 8 + 2 + shards
    }

    /// Encodes the reply into an exactly pre-sized frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(TAG_ZONE_DELTA);
        buf.put_u64(self.id);
        buf.put_u16(u16::try_from(self.shards.len()).expect("too many shards for wire"));
        for s in &self.shards {
            buf.put_u16(u16::try_from(s.shard).expect("shard index exceeds wire width"));
            buf.put_u64(s.serial.get());
            buf.put_u8(u8::from(s.full));
            buf.put_u32(u32::try_from(s.changes.len()).expect("delta too large for wire"));
            for c in &s.changes {
                buf.put_u32(c.ctx.index() as u32);
                put_name(&mut buf, c.name);
                put_entity(&mut buf, c.entity);
            }
        }
        debug_assert_eq!(buf.len(), self.wire_len());
        buf.freeze()
    }

    /// Decodes a reply frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<ZoneDelta> {
        if buf.remaining() < 1 + 8 + 2 || buf.get_u8() != TAG_ZONE_DELTA {
            return None;
        }
        let id = buf.get_u64();
        let count = buf.get_u16() as usize;
        let mut shards = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            if buf.remaining() < 2 + 8 + 1 + 4 {
                return None;
            }
            let shard = buf.get_u16() as usize;
            let serial = ZoneSerial::new(buf.get_u64());
            let full = match buf.get_u8() {
                0 => false,
                1 => true,
                _ => return None,
            };
            let n = buf.get_u32() as usize;
            let mut changes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return None;
                }
                let ctx = ObjectId::from_index(buf.get_u32());
                let name = get_name(&mut buf)?;
                let entity = get_entity(&mut buf)?;
                changes.push(ZoneChange { ctx, name, entity });
            }
            shards.push(ShardDelta {
                shard,
                serial,
                full,
                changes,
            });
        }
        Some(ZoneDelta { id, shards })
    }
}

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_ZONE_UPDATE: u8 = 3;
const TAG_BATCH_REQUEST: u8 = 4;
const TAG_BATCH_REPLY: u8 = 5;
const TAG_ZONE_DELTA_REQUEST: u8 = 6;
const TAG_ZONE_DELTA: u8 = 7;

const OUT_RESOLVED: u8 = 1;
const OUT_REFERRAL: u8 = 2;
const OUT_NOT_FOUND: u8 = 3;
const OUT_WRONG_SERVER: u8 = 4;
const OUT_UNREACHABLE: u8 = 5;

const ENT_ACTIVITY: u8 = 1;
const ENT_OBJECT: u8 = 2;
const ENT_UNDEFINED: u8 = 3;

fn put_name(buf: &mut BytesMut, n: Name) {
    let s = n.as_str().as_bytes();
    buf.put_u16(u16::try_from(s.len()).expect("name too long for wire"));
    buf.put_slice(s);
}

fn get_name(buf: &mut Bytes) -> Option<Name> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return None;
    }
    // Validate UTF-8 in place over the borrowed slice — no intermediate
    // `Bytes` handle, no copy before interning.
    let n = Name::new(std::str::from_utf8(&buf[..len]).ok()?);
    buf.advance(len);
    Some(n)
}

fn put_compound(buf: &mut BytesMut, name: &CompoundName) {
    buf.put_u16(u16::try_from(name.len()).expect("name too deep for wire"));
    for &c in name.components() {
        put_name(buf, c);
    }
}

fn get_compound(buf: &mut Bytes) -> Option<CompoundName> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    let mut comps = Vec::with_capacity(len);
    for _ in 0..len {
        comps.push(get_name(buf)?);
    }
    CompoundName::new(comps).ok()
}

fn put_entity(buf: &mut BytesMut, e: Entity) {
    match e {
        Entity::Activity(a) => {
            buf.put_u8(ENT_ACTIVITY);
            buf.put_u32(a.index() as u32);
        }
        Entity::Object(o) => {
            buf.put_u8(ENT_OBJECT);
            buf.put_u32(o.index() as u32);
        }
        Entity::Undefined => buf.put_u8(ENT_UNDEFINED),
    }
}

fn get_entity(buf: &mut Bytes) -> Option<Entity> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        ENT_ACTIVITY => {
            if buf.remaining() < 4 {
                return None;
            }
            Some(Entity::Activity(ActivityId::from_index(buf.get_u32())))
        }
        ENT_OBJECT => {
            if buf.remaining() < 4 {
                return None;
            }
            Some(Entity::Object(ObjectId::from_index(buf.get_u32())))
        }
        ENT_UNDEFINED => Some(Entity::Undefined),
        _ => None,
    }
}

/// Exact encoded size of an entity under [`put_entity`]'s layout.
fn entity_wire_len(e: Entity) -> usize {
    match e {
        Entity::Undefined => 1,
        _ => 5,
    }
}

/// Exact encoded size of a compound name under [`put_compound`]'s layout.
fn compound_wire_len(name: &CompoundName) -> usize {
    2 + name
        .components()
        .iter()
        .map(|c| 2 + c.as_str().len())
        .sum::<usize>()
}

/// Exact encoded size of an outcome under [`put_outcome`]'s layout.
fn outcome_wire_len(o: &Outcome) -> usize {
    match o {
        Outcome::Resolved(Entity::Undefined) => 1 + 1,
        Outcome::Resolved(_) => 1 + 5,
        Outcome::Referral { remaining, .. } => {
            let name_bytes: usize = remaining
                .components()
                .iter()
                .map(|c| 2 + c.as_str().len())
                .sum();
            1 + 4 + 4 + 2 + name_bytes
        }
        Outcome::NotFound | Outcome::WrongServer => 1,
        Outcome::Unreachable { .. } => 1 + 4,
    }
}

fn put_outcome(buf: &mut BytesMut, o: &Outcome) {
    match o {
        Outcome::Resolved(e) => {
            buf.put_u8(OUT_RESOLVED);
            put_entity(buf, *e);
        }
        Outcome::Referral {
            next_machine,
            next_ctx,
            remaining,
        } => {
            buf.put_u8(OUT_REFERRAL);
            buf.put_u32(next_machine.0 as u32);
            buf.put_u32(next_ctx.index() as u32);
            put_compound(buf, remaining);
        }
        Outcome::NotFound => buf.put_u8(OUT_NOT_FOUND),
        Outcome::WrongServer => buf.put_u8(OUT_WRONG_SERVER),
        Outcome::Unreachable { attempts } => {
            buf.put_u8(OUT_UNREACHABLE);
            buf.put_u32(*attempts);
        }
    }
}

fn get_outcome(buf: &mut Bytes) -> Option<Outcome> {
    if buf.remaining() < 1 {
        return None;
    }
    Some(match buf.get_u8() {
        OUT_RESOLVED => Outcome::Resolved(get_entity(buf)?),
        OUT_REFERRAL => {
            if buf.remaining() < 8 {
                return None;
            }
            let next_machine = MachineId(buf.get_u32() as usize);
            let next_ctx = ObjectId::from_index(buf.get_u32());
            let remaining = get_compound(buf)?;
            Outcome::Referral {
                next_machine,
                next_ctx,
                remaining,
            }
        }
        OUT_NOT_FOUND => Outcome::NotFound,
        OUT_WRONG_SERVER => Outcome::WrongServer,
        OUT_UNREACHABLE => {
            if buf.remaining() < 4 {
                return None;
            }
            Outcome::Unreachable {
                attempts: buf.get_u32(),
            }
        }
        _ => return None,
    })
}

/// One node of a [`NameTrie`]: a name component, an optional query id
/// (set when some batched name *ends* here), and child node indices.
///
/// Invariant (maintained by [`NameTrie::build`] and enforced by
/// [`BatchRequest::decode`]): every child index is strictly greater than
/// the node's own index, so any walk strictly descends and terminates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrieNode {
    /// The name component this edge carries.
    pub component: Name,
    /// `Some(q)` when batched query `q`'s name ends at this node.
    pub query: Option<u32>,
    /// Indices of child nodes (all `> ` this node's index).
    pub children: Vec<u32>,
}

/// A set of compound names, shared-prefix compressed: each distinct
/// prefix appears exactly once, so a server resolving the trie performs
/// one lookup per *distinct* component run instead of one per name.
///
/// Duplicate names coalesce to the same query id (single-flight within
/// the batch); [`NameTrie::build`] returns the input-position → query-id
/// mapping so callers can fan results back out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameTrie {
    /// Trie nodes; roots and children refer into this vector.
    pub nodes: Vec<TrieNode>,
    /// Top-level nodes (first components), in first-seen order.
    pub roots: Vec<u32>,
    /// Number of distinct queries (terminal nodes with a query id).
    pub query_count: u32,
}

impl NameTrie {
    /// Builds a trie from `names`, coalescing duplicates. Returns the
    /// trie and, for each input position, the query id its answer will
    /// be filed under.
    pub fn build(names: &[CompoundName]) -> (NameTrie, Vec<u32>) {
        // Worst case (no shared prefixes): one node per component.
        let total_components: usize = names.iter().map(CompoundName::len).sum();
        let mut nodes: Vec<TrieNode> = Vec::with_capacity(total_components);
        let mut roots: Vec<u32> = Vec::with_capacity(names.len());
        let mut mapping = Vec::with_capacity(names.len());
        let mut query_count = 0u32;
        for name in names {
            let mut cur: Option<u32> = None;
            for &c in name.components() {
                let found = match cur {
                    None => roots
                        .iter()
                        .copied()
                        .find(|&k| nodes[k as usize].component == c),
                    Some(i) => nodes[i as usize]
                        .children
                        .iter()
                        .copied()
                        .find(|&k| nodes[k as usize].component == c),
                };
                let next = match found {
                    Some(k) => k,
                    None => {
                        let k = u32::try_from(nodes.len()).expect("batch too large for wire");
                        nodes.push(TrieNode {
                            component: c,
                            query: None,
                            children: Vec::new(),
                        });
                        match cur {
                            None => roots.push(k),
                            Some(i) => nodes[i as usize].children.push(k),
                        }
                        k
                    }
                };
                cur = Some(next);
            }
            let terminal = cur.expect("compound names are non-empty") as usize;
            let q = *nodes[terminal].query.get_or_insert_with(|| {
                let q = query_count;
                query_count += 1;
                q
            });
            mapping.push(q);
        }
        (
            NameTrie {
                nodes,
                roots,
                query_count,
            },
            mapping,
        )
    }

    /// Reconstructs the name of every query, indexed by query id.
    pub fn names(&self) -> Vec<CompoundName> {
        let mut out: Vec<Option<CompoundName>> = vec![None; self.query_count as usize];
        let mut stack: Vec<(u32, Vec<Name>)> = Vec::with_capacity(self.roots.len());
        stack.extend(self.roots.iter().rev().map(|&r| (r, Vec::with_capacity(4))));
        while let Some((n, prefix)) = stack.pop() {
            let node = &self.nodes[n as usize];
            let mut path = prefix;
            path.push(node.component);
            if let Some(q) = node.query {
                if let Some(slot) = out.get_mut(q as usize) {
                    *slot = CompoundName::new(path.clone()).ok();
                }
            }
            for &c in node.children.iter().rev() {
                // Clone with headroom: the child's own component plus a
                // typical few more levels, so descent rarely reallocates.
                let mut p = Vec::with_capacity(path.len() + 4);
                p.extend_from_slice(&path);
                stack.push((c, p));
            }
        }
        out.into_iter().flatten().collect()
    }

    /// Exact encoded size of this trie under [`put_trie`]'s layout, so
    /// frame encoders can allocate once.
    fn wire_len(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                2 + n.component.as_str().len()
                    + 1
                    + if n.query.is_some() { 4 } else { 0 }
                    + 2
                    + 4 * n.children.len()
            })
            .sum();
        4 + 4 + node_bytes + 4 + 4 * self.roots.len()
    }

    /// Per-node count of queries in the subtree rooted there — the number
    /// of lookups a naive (per-name) resolution would spend on that
    /// node's component. Children have strictly greater indices, so one
    /// reverse pass suffices.
    pub fn subtree_query_counts(&self) -> Vec<u32> {
        let mut sub = vec![0u32; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            let mut n = u32::from(self.nodes[i].query.is_some());
            for &c in &self.nodes[i].children {
                n += sub[c as usize];
            }
            sub[i] = n;
        }
        sub
    }
}

fn put_trie(buf: &mut BytesMut, trie: &NameTrie) {
    buf.put_u32(trie.query_count);
    buf.put_u32(u32::try_from(trie.nodes.len()).expect("batch too large for wire"));
    for node in &trie.nodes {
        put_name(buf, node.component);
        match node.query {
            Some(q) => {
                buf.put_u8(1);
                buf.put_u32(q);
            }
            None => buf.put_u8(0),
        }
        buf.put_u16(u16::try_from(node.children.len()).expect("trie node too wide for wire"));
        for &c in &node.children {
            buf.put_u32(c);
        }
    }
    buf.put_u32(u32::try_from(trie.roots.len()).expect("batch too large for wire"));
    for &r in &trie.roots {
        buf.put_u32(r);
    }
}

fn get_trie(buf: &mut Bytes) -> Option<NameTrie> {
    if buf.remaining() < 8 {
        return None;
    }
    let query_count = buf.get_u32();
    let node_count = buf.get_u32() as usize;
    let mut nodes = Vec::with_capacity(node_count.min(1024));
    for i in 0..node_count {
        let component = get_name(buf)?;
        if buf.remaining() < 1 {
            return None;
        }
        let query = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let q = buf.get_u32();
                if q >= query_count {
                    return None;
                }
                Some(q)
            }
            _ => return None,
        };
        if buf.remaining() < 2 {
            return None;
        }
        let kid_count = buf.get_u16() as usize;
        let mut children = Vec::with_capacity(kid_count.min(1024));
        for _ in 0..kid_count {
            if buf.remaining() < 4 {
                return None;
            }
            let c = buf.get_u32();
            // Strict descent: a child's index must exceed its parent's,
            // so a malicious frame cannot send the server into a cycle.
            if c as usize <= i || c as usize >= node_count {
                return None;
            }
            children.push(c);
        }
        nodes.push(TrieNode {
            component,
            query,
            children,
        });
    }
    if buf.remaining() < 4 {
        return None;
    }
    let root_count = buf.get_u32() as usize;
    let mut roots = Vec::with_capacity(root_count.min(1024));
    let mut prev: Option<u32> = None;
    for _ in 0..root_count {
        if buf.remaining() < 4 {
            return None;
        }
        let r = buf.get_u32();
        if r as usize >= node_count || prev.is_some_and(|p| r <= p) {
            return None;
        }
        roots.push(r);
        prev = Some(r);
    }
    Some(NameTrie {
        nodes,
        roots,
        query_count,
    })
}

/// A batched resolution request: many names (as a shared-prefix trie)
/// resolved from one start context in a single wire exchange. Batches
/// are always client-driven (iterative); the reply carries one outcome
/// per query id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRequest {
    /// Correlation id chosen by the requester.
    pub id: u64,
    /// The context object every trie root resolves from.
    pub start: ObjectId,
    /// The batched names, shared-prefix compressed.
    pub trie: NameTrie,
}

impl BatchRequest {
    /// Encodes the batch request into a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 8 + 4 + self.trie.wire_len());
        buf.put_u8(TAG_BATCH_REQUEST);
        buf.put_u64(self.id);
        buf.put_u32(self.start.index() as u32);
        put_trie(&mut buf, &self.trie);
        buf.freeze()
    }

    /// Decodes a batch-request frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<BatchRequest> {
        if buf.remaining() < 1 + 8 + 4 || buf.get_u8() != TAG_BATCH_REQUEST {
            return None;
        }
        let id = buf.get_u64();
        let start = ObjectId::from_index(buf.get_u32());
        let trie = get_trie(&mut buf)?;
        Some(BatchRequest { id, start, trie })
    }
}

/// The reply to a [`BatchRequest`]: one outcome per query id, plus hop
/// accounting for how much work prefix sharing saved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReply {
    /// Echoes [`BatchRequest::id`].
    pub id: u64,
    /// One outcome per query, indexed by query id.
    pub outcomes: Vec<Outcome>,
    /// Servers that did authoritative work for this answer.
    pub servers_touched: u32,
    /// Lookups the server *didn't* do thanks to shared-prefix
    /// compression (naive per-name lookups minus actual trie lookups).
    pub lookups_saved: u32,
}

impl BatchReply {
    /// Encodes the batch reply into a wire frame.
    pub fn encode(&self) -> Bytes {
        let outcomes: usize = self.outcomes.iter().map(outcome_wire_len).sum();
        let mut buf = BytesMut::with_capacity(1 + 8 + 4 + 4 + 4 + outcomes);
        buf.put_u8(TAG_BATCH_REPLY);
        buf.put_u64(self.id);
        buf.put_u32(self.servers_touched);
        buf.put_u32(self.lookups_saved);
        buf.put_u32(u32::try_from(self.outcomes.len()).expect("batch too large for wire"));
        for o in &self.outcomes {
            put_outcome(&mut buf, o);
        }
        buf.freeze()
    }

    /// Decodes a batch-reply frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<BatchReply> {
        if buf.remaining() < 1 + 8 + 4 + 4 + 4 || buf.get_u8() != TAG_BATCH_REPLY {
            return None;
        }
        let id = buf.get_u64();
        let servers_touched = buf.get_u32();
        let lookups_saved = buf.get_u32();
        let len = buf.get_u32() as usize;
        let mut outcomes = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            outcomes.push(get_outcome(&mut buf)?);
        }
        Some(BatchReply {
            id,
            outcomes,
            servers_touched,
            lookups_saved,
        })
    }
}

impl Request {
    /// Exact encoded size of the frame, for pre-sizing buffers.
    pub fn wire_len(&self) -> usize {
        1 + 8 + 4 + 1 + compound_wire_len(&self.name)
    }

    /// Encodes the request into an exactly pre-sized wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(TAG_REQUEST);
        buf.put_u64(self.id);
        buf.put_u32(self.start.index() as u32);
        buf.put_u8(match self.mode {
            Mode::Iterative => 0,
            Mode::Recursive => 1,
        });
        put_compound(&mut buf, &self.name);
        debug_assert_eq!(buf.len(), self.wire_len());
        buf.freeze()
    }

    /// Decodes a request frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Request> {
        if buf.remaining() < 1 + 8 + 4 + 1 || buf.get_u8() != TAG_REQUEST {
            return None;
        }
        let id = buf.get_u64();
        let start = ObjectId::from_index(buf.get_u32());
        let mode = match buf.get_u8() {
            0 => Mode::Iterative,
            1 => Mode::Recursive,
            _ => return None,
        };
        let name = get_compound(&mut buf)?;
        Some(Request {
            id,
            start,
            name,
            mode,
        })
    }
}

impl Reply {
    /// Exact encoded size of the frame, for pre-sizing buffers.
    pub fn wire_len(&self) -> usize {
        1 + 8 + 4 + outcome_wire_len(&self.outcome)
    }

    /// Encodes the reply into an exactly pre-sized wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(TAG_REPLY);
        buf.put_u64(self.id);
        buf.put_u32(self.servers_touched);
        put_outcome(&mut buf, &self.outcome);
        debug_assert_eq!(buf.len(), self.wire_len());
        buf.freeze()
    }

    /// Decodes a reply frame. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Reply> {
        if buf.remaining() < 1 + 8 + 4 + 1 || buf.get_u8() != TAG_REPLY {
            return None;
        }
        let id = buf.get_u64();
        let servers_touched = buf.get_u32();
        let outcome = get_outcome(&mut buf)?;
        Some(Reply {
            id,
            outcome,
            servers_touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(p: &str) -> CompoundName {
        CompoundName::parse_path(p).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: 42,
            start: ObjectId::from_index(7),
            name: name("/usr/bin/cc"),
            mode: Mode::Recursive,
        };
        let decoded = Request::decode(r.encode()).unwrap();
        assert_eq!(decoded, r);
        let r2 = Request {
            mode: Mode::Iterative,
            ..r
        };
        assert_eq!(Request::decode(r2.encode()).unwrap().mode, Mode::Iterative);
    }

    #[test]
    fn reply_roundtrips() {
        for outcome in [
            Outcome::Resolved(Entity::Object(ObjectId::from_index(3))),
            Outcome::Resolved(Entity::Activity(ActivityId::from_index(9))),
            Outcome::Resolved(Entity::Undefined),
            Outcome::Referral {
                next_machine: MachineId(2),
                next_ctx: ObjectId::from_index(11),
                remaining: name("bin/cc"),
            },
            Outcome::NotFound,
            Outcome::WrongServer,
            Outcome::Unreachable { attempts: 0 },
            Outcome::Unreachable { attempts: 17 },
        ] {
            let r = Reply {
                id: 5,
                outcome: outcome.clone(),
                servers_touched: 3,
            };
            let d = Reply::decode(r.encode()).unwrap();
            assert_eq!(d.outcome, outcome);
            assert_eq!(d.id, 5);
            assert_eq!(d.servers_touched, 3);
        }
    }

    #[test]
    fn batch_frame_capacity_estimates_are_exact() {
        // The batch wire path pre-sizes its buffers; the estimates must
        // match what the encoders actually emit (no realloc, no waste).
        let (trie, _) = NameTrie::build(&[
            name("/usr/bin/cc"),
            name("/usr/bin/ld"),
            name("/etc/passwd"),
        ]);
        let req = BatchRequest {
            id: 1,
            start: ObjectId::from_index(0),
            trie: trie.clone(),
        };
        assert_eq!(req.encode().len(), 1 + 8 + 4 + trie.wire_len());

        let reply = BatchReply {
            id: 1,
            outcomes: vec![
                Outcome::Resolved(Entity::Object(ObjectId::from_index(3))),
                Outcome::Referral {
                    next_machine: MachineId(2),
                    next_ctx: ObjectId::from_index(11),
                    remaining: name("bin/cc"),
                },
                Outcome::NotFound,
                Outcome::WrongServer,
                Outcome::Unreachable { attempts: 3 },
            ],
            servers_touched: 2,
            lookups_saved: 5,
        };
        let outcomes: usize = reply.outcomes.iter().map(outcome_wire_len).sum();
        assert_eq!(reply.encode().len(), 1 + 8 + 4 + 4 + 4 + outcomes);
    }

    #[test]
    fn zone_update_roundtrip() {
        let up = ZoneUpdate {
            zone: ObjectId::from_index(12),
            bindings: vec![
                (Name::new("a"), Entity::Object(ObjectId::from_index(1))),
                (Name::new("b"), Entity::Activity(ActivityId::from_index(2))),
                (Name::new("c"), Entity::Undefined),
            ],
        };
        assert_eq!(ZoneUpdate::decode(up.encode()), Some(up.clone()));
        // Empty zone.
        let empty = ZoneUpdate {
            zone: ObjectId::from_index(0),
            bindings: vec![],
        };
        assert_eq!(ZoneUpdate::decode(empty.encode()), Some(empty));
        // A request frame is not an update.
        assert!(ZoneUpdate::decode(
            Request {
                id: 1,
                start: ObjectId::from_index(0),
                name: name("/x"),
                mode: Mode::Iterative,
            }
            .encode()
        )
        .is_none());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Request::decode(Bytes::from_static(&[])).is_none());
        assert!(Request::decode(Bytes::from_static(&[9, 0, 0])).is_none());
        assert!(Reply::decode(Bytes::from_static(&[1, 2, 3])).is_none());
        // A request frame is not a reply.
        let req = Request {
            id: 1,
            start: ObjectId::from_index(0),
            name: name("/x"),
            mode: Mode::Iterative,
        };
        assert!(Reply::decode(req.encode()).is_none());
        // Truncated compound name.
        let mut good = BytesMut::from(&req.encode()[..]);
        good.truncate(good.len() - 1);
        assert!(Request::decode(good.freeze()).is_none());
    }

    #[test]
    fn trie_shares_prefixes_and_coalesces_duplicates() {
        let names = [
            name("/usr/bin/cc"),
            name("/usr/bin/ld"),
            name("/usr/lib/libc"),
            name("/usr/bin/cc"), // duplicate: coalesces
            name("/tmp"),
        ];
        let (trie, mapping) = NameTrie::build(&names);
        // /, usr, bin, cc, ld, lib, libc, tmp — shared prefixes (the
        // root component and /usr/bin) stored once.
        assert_eq!(trie.nodes.len(), 8);
        assert_eq!(trie.query_count, 4);
        assert_eq!(mapping.len(), 5);
        assert_eq!(mapping[0], mapping[3], "duplicate names share a query id");
        // Every query's name reconstructs to the right input.
        let qnames = trie.names();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(&qnames[mapping[i] as usize], n);
        }
        // Naive per-name resolution of the four distinct queries would
        // spend 4+4+4+2 = 14 lookups; the trie needs one per node (8).
        let sub = trie.subtree_query_counts();
        let naive: u32 = trie
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.query.is_some())
            .map(|(i, _)| {
                let mut depth = 0u32;
                // depth = number of ancestors + 1; recompute by scanning
                // parents (test-only, O(n^2) is fine).
                let mut cur = i as u32;
                loop {
                    depth += 1;
                    match trie.nodes.iter().position(|n| n.children.contains(&cur)) {
                        Some(p) => cur = p as u32,
                        None => break,
                    }
                }
                depth
            })
            .sum();
        assert_eq!(naive, 14); // cc:4 + ld:4 + libc:4 + tmp:2
        assert_eq!(sub[0], 4, "the root subtree holds all four queries");
        assert_eq!(trie.nodes.len() as u32 + 6, naive);
    }

    #[test]
    fn batch_frames_roundtrip() {
        let (trie, _) = NameTrie::build(&[name("/a/b"), name("/a/c"), name("/d")]);
        let req = BatchRequest {
            id: 77,
            start: ObjectId::from_index(3),
            trie,
        };
        assert_eq!(BatchRequest::decode(req.encode()), Some(req.clone()));
        let rep = BatchReply {
            id: 77,
            outcomes: vec![
                Outcome::Resolved(Entity::Object(ObjectId::from_index(9))),
                Outcome::NotFound,
                Outcome::Referral {
                    next_machine: MachineId(1),
                    next_ctx: ObjectId::from_index(4),
                    remaining: name("x/y"),
                },
            ],
            servers_touched: 2,
            lookups_saved: 5,
        };
        assert_eq!(BatchReply::decode(rep.encode()), Some(rep.clone()));
        // Cross-frame confusion is rejected.
        assert!(BatchReply::decode(req.encode()).is_none());
        assert!(BatchRequest::decode(rep.encode()).is_none());
        // Truncation is detected, not panicked on.
        let full = req.encode();
        for cut in 0..full.len() {
            assert!(BatchRequest::decode(full.slice(..cut)).is_none());
        }
    }

    #[test]
    fn trie_decode_rejects_cycles_and_bad_indices() {
        // A hand-built frame whose node 0 claims node 0 as a child
        // (cycle) must not decode.
        let (trie, _) = NameTrie::build(&[name("/a/b")]);
        let mut evil = trie.clone();
        evil.nodes[1].children = vec![1];
        let req = BatchRequest {
            id: 1,
            start: ObjectId::from_index(0),
            trie: evil,
        };
        assert!(BatchRequest::decode(req.encode()).is_none());
        // Out-of-range child index.
        let mut oob = trie.clone();
        oob.nodes[0].children = vec![99];
        assert!(BatchRequest::decode(
            BatchRequest {
                id: 1,
                start: ObjectId::from_index(0),
                trie: oob,
            }
            .encode()
        )
        .is_none());
        // Query id beyond query_count.
        let mut badq = trie;
        badq.nodes[1].query = Some(42);
        assert!(BatchRequest::decode(
            BatchRequest {
                id: 1,
                start: ObjectId::from_index(0),
                trie: badq,
            }
            .encode()
        )
        .is_none());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Decoding arbitrary bytes never panics; it either fails or
            /// yields a frame that re-encodes decodably.
            #[test]
            fn decode_tolerates_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
                let b = Bytes::from(data);
                if let Some(req) = Request::decode(b.clone()) {
                    prop_assert_eq!(Request::decode(req.encode()), Some(req));
                }
                if let Some(rep) = Reply::decode(b.clone()) {
                    let rt = Reply::decode(rep.encode()).unwrap();
                    prop_assert_eq!(rt, rep);
                }
                if let Some(breq) = BatchRequest::decode(b.clone()) {
                    prop_assert_eq!(BatchRequest::decode(breq.encode()), Some(breq));
                }
                if let Some(brep) = BatchReply::decode(b.clone()) {
                    prop_assert_eq!(BatchReply::decode(brep.encode()), Some(brep));
                }
                if let Some(up) = ZoneUpdate::decode(b.clone()) {
                    prop_assert_eq!(ZoneUpdate::decode(up.encode()), Some(up));
                }
                if let Some(dreq) = ZoneDeltaRequest::decode(b.clone()) {
                    prop_assert_eq!(ZoneDeltaRequest::decode(dreq.encode()), Some(dreq));
                }
                if let Some(delta) = ZoneDelta::decode(b) {
                    prop_assert_eq!(ZoneDelta::decode(delta.encode()), Some(delta));
                }
            }

            /// ZoneDelta round-trip for arbitrary well-formed content:
            /// incremental and full slices, binds and unbinds.
            #[test]
            fn zone_delta_roundtrip_general(
                id in any::<u64>(),
                slices in proptest::collection::vec(
                    (
                        0usize..1024,
                        any::<u64>(),
                        any::<bool>(),
                        proptest::collection::vec(
                            (0u32..100_000, "[a-z]{1,6}", 0u32..3, 0u32..100),
                            0..8,
                        ),
                    ),
                    0..5,
                ),
            ) {
                let shards: Vec<ShardDelta> = slices
                    .iter()
                    .map(|(shard, serial, full, raw)| ShardDelta {
                        shard: *shard,
                        serial: ZoneSerial::new(*serial),
                        full: *full,
                        changes: raw
                            .iter()
                            .map(|(ctx, n, kind, idx)| ZoneChange {
                                ctx: ObjectId::from_index(*ctx),
                                name: Name::new(n),
                                entity: match kind {
                                    0 => Entity::Object(ObjectId::from_index(*idx)),
                                    1 => Entity::Activity(ActivityId::from_index(*idx)),
                                    _ => Entity::Undefined,
                                },
                            })
                            .collect(),
                    })
                    .collect();
                let delta = ZoneDelta { id, shards };
                prop_assert_eq!(delta.encode().len(), delta.wire_len());
                prop_assert_eq!(ZoneDelta::decode(delta.encode()), Some(delta));
            }

            /// Batch frames round-trip for arbitrary well-formed name sets,
            /// and the trie reconstructs every input name.
            #[test]
            fn batch_roundtrip_general(
                id in any::<u64>(),
                start in 0u32..1_000_000,
                raw in proptest::collection::vec(
                    proptest::collection::vec("[a-z]{1,4}", 1..5),
                    1..12,
                ),
            ) {
                let names: Vec<CompoundName> = raw
                    .iter()
                    .map(|segs| CompoundName::new(segs.iter().map(|s| Name::new(s))).unwrap())
                    .collect();
                let (trie, mapping) = NameTrie::build(&names);
                prop_assert!(trie.query_count as usize <= names.len());
                let qnames = trie.names();
                for (i, n) in names.iter().enumerate() {
                    prop_assert_eq!(&qnames[mapping[i] as usize], n);
                }
                let req = BatchRequest { id, start: ObjectId::from_index(start), trie };
                prop_assert_eq!(BatchRequest::decode(req.encode()), Some(req.clone()));
                // Truncating the frame anywhere short of the end fails
                // cleanly.
                let full = req.encode();
                let cut = full.len() / 2;
                prop_assert!(BatchRequest::decode(full.slice(..cut)).is_none());
            }

            /// Batch replies round-trip for arbitrary outcome vectors.
            #[test]
            fn batch_reply_roundtrip_general(
                id in any::<u64>(),
                touched in 0u32..64,
                saved in 0u32..1024,
                kinds in proptest::collection::vec(0u8..5, 0..16),
            ) {
                let outcomes: Vec<Outcome> = kinds
                    .iter()
                    .map(|k| match k {
                        0 => Outcome::Resolved(Entity::Object(ObjectId::from_index(7))),
                        1 => Outcome::Referral {
                            next_machine: MachineId(3),
                            next_ctx: ObjectId::from_index(5),
                            remaining: CompoundName::parse_path("/r/s").unwrap(),
                        },
                        2 => Outcome::NotFound,
                        3 => Outcome::WrongServer,
                        _ => Outcome::Unreachable { attempts: u32::from(*k) },
                    })
                    .collect();
                let rep = BatchReply { id, outcomes, servers_touched: touched, lookups_saved: saved };
                prop_assert_eq!(BatchReply::decode(rep.encode()), Some(rep));
            }

            /// ZoneUpdate round-trip for arbitrary well-formed content
            /// (batch of bindings).
            #[test]
            fn zone_update_roundtrip_general(
                zone in 0u32..1_000_000,
                binds in proptest::collection::vec(("[a-z]{1,6}", 0u32..3, 0u32..100), 0..10),
            ) {
                let bindings: Vec<(Name, Entity)> = binds
                    .iter()
                    .map(|(s, kind, idx)| {
                        let e = match kind {
                            0 => Entity::Object(ObjectId::from_index(*idx)),
                            1 => Entity::Activity(ActivityId::from_index(*idx)),
                            _ => Entity::Undefined,
                        };
                        (Name::new(s), e)
                    })
                    .collect();
                let up = ZoneUpdate { zone: ObjectId::from_index(zone), bindings };
                prop_assert_eq!(ZoneUpdate::decode(up.encode()), Some(up));
            }

            /// Truncating a valid frame at any point never panics and never
            /// produces a *different* valid frame of the same kind.
            #[test]
            fn truncation_is_detected(cut in 0usize..64) {
                let req = Request {
                    id: 9,
                    start: ObjectId::from_index(4),
                    name: CompoundName::parse_path("/a/b/c").unwrap(),
                    mode: Mode::Recursive,
                };
                let full = req.encode();
                if cut < full.len() {
                    let truncated = full.slice(..cut);
                    if let Some(got) = Request::decode(truncated) {
                        // Only acceptable if truncation removed nothing
                        // semantically (never the case here since every
                        // byte matters) — so this must be the full frame.
                        prop_assert_eq!(got, req);
                    }
                }
            }

            /// Request round-trip for arbitrary well-formed content.
            #[test]
            fn request_roundtrip_general(
                id in any::<u64>(),
                start in 0u32..1_000_000,
                segs in proptest::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..8),
                recursive in any::<bool>(),
            ) {
                let name = CompoundName::new(segs.iter().map(|s| Name::new(s))).unwrap();
                let req = Request {
                    id,
                    start: ObjectId::from_index(start),
                    name,
                    mode: if recursive { Mode::Recursive } else { Mode::Iterative },
                };
                prop_assert_eq!(Request::decode(req.encode()), Some(req));
            }
        }
    }

    #[test]
    fn zone_delta_frames_round_trip() {
        let req = ZoneDeltaRequest {
            id: 42,
            since: vec![
                (0, ZoneSerial::ZERO),
                (3, ZoneSerial::new(17)),
                (1023, ZoneSerial::new(u64::MAX)),
            ],
        };
        assert_eq!(req.encode().len(), req.wire_len());
        assert_eq!(ZoneDeltaRequest::decode(req.encode()), Some(req.clone()));
        let delta = ZoneDelta {
            id: 42,
            shards: vec![
                ShardDelta {
                    shard: 0,
                    serial: ZoneSerial::new(19),
                    full: false,
                    changes: vec![
                        ZoneChange {
                            ctx: ObjectId::from_index(4),
                            name: Name::new("data"),
                            entity: Entity::Object(ObjectId::from_index(9)),
                        },
                        ZoneChange {
                            ctx: ObjectId::from_index(4),
                            name: Name::new("gone"),
                            entity: Entity::Undefined,
                        },
                    ],
                },
                ShardDelta {
                    shard: 3,
                    serial: ZoneSerial::new(2),
                    full: true,
                    changes: vec![],
                },
            ],
        };
        assert_eq!(delta.encode().len(), delta.wire_len());
        assert_eq!(ZoneDelta::decode(delta.encode()), Some(delta.clone()));
        // Cross-decoding and truncation fail cleanly.
        assert!(ZoneDelta::decode(req.encode()).is_none());
        assert!(ZoneDeltaRequest::decode(delta.encode()).is_none());
        let full = delta.encode();
        assert!(ZoneDelta::decode(full.slice(..full.len() - 1)).is_none());
        // A corrupt `full` flag byte (neither 0 nor 1) is rejected.
        let mut bad = full.to_vec();
        let flag_at = 1 + 8 + 2 + 2 + 8;
        assert_eq!(bad[flag_at], 0, "expected the first slice's full flag");
        bad[flag_at] = 7;
        assert!(ZoneDelta::decode(Bytes::from(bad)).is_none());
    }

    #[test]
    fn unicode_names_survive_the_wire() {
        let r = Request {
            id: 1,
            start: ObjectId::from_index(0),
            name: CompoundName::new([Name::new("café"), Name::new("naïve")]).unwrap(),
            mode: Mode::Iterative,
        };
        assert_eq!(Request::decode(r.encode()).unwrap().name, r.name);
    }
}
