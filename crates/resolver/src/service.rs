//! The name service: per-machine name servers and object placement.
//!
//! In the paper's model, compound-name resolution traverses context
//! objects; in a distributed system those objects live on different
//! machines, so resolution is a *protocol*. [`NameService`] records which
//! machine hosts (is authoritative for) each object and runs one server
//! process per machine. A server resolves components while the current
//! context object is local and answers with a referral as soon as the path
//! crosses machines — the classic iterative name-server discipline.

use std::collections::BTreeMap;

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::CompoundName;
use naming_sim::topology::MachineId;
use naming_sim::world::World;

use crate::wire::{NameTrie, Outcome};

/// Per-machine name servers plus the authoritative placement map.
///
/// A context object may additionally be *replicated* onto secondary
/// machines ([`NameService::replicate_zone`]): a secondary holds a copy of
/// the zone's context object and serves it locally. Replication gives the
/// paper's **weak coherence** (§5) at the protocol level — and, when a
/// secondary's copy lags the primary, measurable incoherence
/// ([`NameService::replica_divergence`]).
#[derive(Debug, Default)]
pub struct NameService {
    servers: BTreeMap<MachineId, ActivityId>,
    placement: BTreeMap<ObjectId, MachineId>,
    /// zone object → (secondary machine → copy object).
    replicas: BTreeMap<ObjectId, BTreeMap<MachineId, ObjectId>>,
}

impl NameService {
    /// Spawns a name-server process (`named`) on each machine.
    pub fn install(world: &mut World, machines: &[MachineId]) -> NameService {
        let mut servers = BTreeMap::new();
        for &m in machines {
            let label = format!("named@{}", world.topology().machine_name(m));
            let pid = world.spawn(m, label, None);
            servers.insert(m, pid);
        }
        NameService {
            servers,
            placement: BTreeMap::new(),
            replicas: BTreeMap::new(),
        }
    }

    /// The server process on a machine.
    ///
    /// # Panics
    ///
    /// Panics if no server was installed on `machine`.
    pub fn server_on(&self, machine: MachineId) -> ActivityId {
        self.servers[&machine]
    }

    /// All server processes, in machine order.
    pub fn servers(&self) -> impl Iterator<Item = (MachineId, ActivityId)> + '_ {
        self.servers.iter().map(|(m, p)| (*m, *p))
    }

    /// Declares `machine` authoritative for `obj`.
    pub fn place(&mut self, obj: ObjectId, machine: MachineId) {
        self.placement.insert(obj, machine);
    }

    /// Places every object reachable from `root` (through context objects)
    /// on `machine`, without overriding existing placements — so placing
    /// machine subtrees in order gives each machine its own tree even when
    /// trees share objects.
    pub fn place_subtree(&mut self, world: &World, root: ObjectId, machine: MachineId) {
        let mut stack = vec![root];
        while let Some(o) = stack.pop() {
            if self.placement.contains_key(&o) {
                continue;
            }
            self.placement.insert(o, machine);
            if let Some(c) = world.state().context(o) {
                for (_, e) in c.iter() {
                    if let Entity::Object(t) = e {
                        if !self.placement.contains_key(&t) {
                            stack.push(t);
                        }
                    }
                }
            }
        }
    }

    /// The machine authoritative for an object, if placed.
    pub fn machine_of_object(&self, obj: ObjectId) -> Option<MachineId> {
        self.placement.get(&obj).copied()
    }

    /// Number of placed objects.
    pub fn placed_count(&self) -> usize {
        self.placement.len()
    }

    /// Replicates the zone (context object) `zone` onto `secondary`: a
    /// copy of the zone's current bindings is created there, registered in
    /// the world's replica registry, and served by the secondary's server.
    /// Returns the copy object.
    ///
    /// The copy is a *snapshot*: later changes to the primary do not
    /// propagate until [`NameService::sync_zone`] runs — precisely the
    /// window in which weak coherence degrades to incoherence.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is not a placed context object, or is already
    /// replicated on `secondary`.
    pub fn replicate_zone(
        &mut self,
        world: &mut World,
        zone: ObjectId,
        secondary: MachineId,
    ) -> ObjectId {
        assert!(
            self.placement.contains_key(&zone),
            "zone must be placed before replication"
        );
        let ctx = world
            .state()
            .context(zone)
            .expect("zone must be a context object")
            .inherit();
        let label = format!(
            "{}~replica@{}",
            world.state().object_label(zone),
            world.topology().machine_name(secondary)
        );
        let copy = world
            .state_mut()
            .add_object(label, naming_core::state::ObjectState::Context(ctx));
        self.placement.insert(copy, secondary);
        world.replicas_mut().declare_replicas(zone, copy);
        let prev = self
            .replicas
            .entry(zone)
            .or_default()
            .insert(secondary, copy);
        assert!(prev.is_none(), "zone already replicated on that machine");
        copy
    }

    /// Copies the primary zone's current bindings onto every replica.
    pub fn sync_zone(&self, world: &mut World, zone: ObjectId) {
        let Some(secondaries) = self.replicas.get(&zone) else {
            return;
        };
        let primary = world
            .state()
            .context(zone)
            .expect("zone is a context")
            .inherit();
        for &copy in secondaries.values() {
            *world
                .state_mut()
                .context_mut(copy)
                .expect("replica is a context") = primary.clone();
        }
    }

    /// The copy of `zone` served on `machine`, if any (the zone itself
    /// when `machine` is the primary).
    pub fn zone_copy_on(&self, zone: ObjectId, machine: MachineId) -> Option<ObjectId> {
        if self.placement.get(&zone) == Some(&machine) {
            return Some(zone);
        }
        self.replicas.get(&zone)?.get(&machine).copied()
    }

    /// The machines serving `zone` (primary first, then secondaries in
    /// machine order).
    pub fn zone_servers(&self, zone: ObjectId) -> Vec<MachineId> {
        let mut out = Vec::new();
        if let Some(&primary) = self.placement.get(&zone) {
            out.push(primary);
        }
        if let Some(secs) = self.replicas.get(&zone) {
            out.extend(secs.keys().copied());
        }
        out
    }

    /// The servers able to answer for `ctx`, primary first: when `ctx`
    /// belongs to a replica group (as primary or copy), every machine of
    /// the group paired with the context object it serves; otherwise just
    /// `ctx`'s own placement. This is the failover order the retry layer
    /// walks when a request's deadline expires.
    pub fn failover_targets(&self, ctx: ObjectId) -> Vec<(MachineId, ObjectId)> {
        let zone = if self.replicas.contains_key(&ctx) {
            Some(ctx)
        } else {
            self.replicas
                .iter()
                .find(|(_, secs)| secs.values().any(|&c| c == ctx))
                .map(|(&z, _)| z)
        };
        match zone {
            Some(z) => self
                .zone_servers(z)
                .into_iter()
                .filter_map(|m| self.zone_copy_on(z, m).map(|c| (m, c)))
                .collect(),
            None => self
                .machine_of_object(ctx)
                .map(|m| (m, ctx))
                .into_iter()
                .collect(),
        }
    }

    /// The primary zone objects of every replica group `machine`
    /// participates in (as primary or secondary) — what must be
    /// re-published after the machine's server restarts.
    pub fn zones_on(&self, machine: MachineId) -> Vec<ObjectId> {
        self.replicas
            .iter()
            .filter(|(z, secs)| {
                self.placement.get(*z) == Some(&machine) || secs.contains_key(&machine)
            })
            .map(|(&z, _)| z)
            .collect()
    }

    /// Spawns an additional name server on `machine` (a standby added
    /// after [`NameService::install`]). Returns the existing server if one
    /// is already there.
    pub fn add_server(&mut self, world: &mut World, machine: MachineId) -> ActivityId {
        if let Some(&pid) = self.servers.get(&machine) {
            return pid;
        }
        let label = format!("named@{}", world.topology().machine_name(machine));
        let pid = world.spawn(machine, label, None);
        self.servers.insert(machine, pid);
        pid
    }

    /// The names on which some replica of `zone` currently disagrees with
    /// the primary — the zone's divergence (empty right after a sync).
    pub fn replica_divergence(
        &self,
        world: &World,
        zone: ObjectId,
    ) -> Vec<naming_core::name::Name> {
        let Some(secondaries) = self.replicas.get(&zone) else {
            return Vec::new();
        };
        let Some(primary) = world.state().context(zone) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &copy in secondaries.values() {
            if let Some(replica) = world.state().context(copy) {
                for n in primary.disagreements(replica) {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Authoritative resolution step on `machine`: resolves components of
    /// `name` starting at `start` while the current context object is
    /// hosted locally; crossing to a remotely-hosted context yields a
    /// referral to the *nearest* server of the next zone (a replica on the
    /// same machine or network wins over the primary).
    pub fn local_resolve(
        &self,
        world: &World,
        machine: MachineId,
        start: ObjectId,
        name: &CompoundName,
    ) -> Outcome {
        let out = self.local_resolve_impl(world, machine, start, name);
        #[cfg(feature = "telemetry")]
        {
            match &out {
                Outcome::Resolved(_) => naming_telemetry::counter!("service.resolved").bump(),
                Outcome::Referral { next_machine, .. } => {
                    naming_telemetry::counter!("service.referrals").bump();
                    if naming_telemetry::recorder::is_active() {
                        naming_telemetry::recorder::instant(
                            "protocol",
                            format!(
                                "referral {name} {} -> {}",
                                world.topology().machine_name(machine),
                                world.topology().machine_name(*next_machine)
                            ),
                            Vec::new(),
                        );
                    }
                }
                Outcome::NotFound => naming_telemetry::counter!("service.not_found").bump(),
                Outcome::WrongServer => naming_telemetry::counter!("service.wrong_server").bump(),
                Outcome::Unreachable { .. } => {
                    naming_telemetry::counter!("service.unreachable").bump()
                }
            }
        }
        out
    }

    /// The authoritative walk itself, free of observation hooks.
    fn local_resolve_impl(
        &self,
        world: &World,
        machine: MachineId,
        start: ObjectId,
        name: &CompoundName,
    ) -> Outcome {
        if self.machine_of_object(start) != Some(machine) {
            return Outcome::WrongServer;
        }
        let comps = name.components();
        let mut cur = start;
        for (i, &comp) in comps.iter().enumerate() {
            let e = world.state().lookup(cur, comp);
            if !e.is_defined() {
                return Outcome::NotFound;
            }
            if i + 1 == comps.len() {
                return Outcome::Resolved(e);
            }
            match e {
                Entity::Object(o) if world.state().is_context_object(o) => {
                    // A replica of the next zone on THIS machine lets the
                    // walk continue locally.
                    if let Some(local_copy) = self.zone_copy_on(o, machine) {
                        cur = local_copy;
                        continue;
                    }
                    match self.nearest_server_for(world, machine, o) {
                        Some((m, ctx)) => {
                            let remaining = CompoundName::new(comps[i + 1..].iter().copied())
                                .expect("at least one component remains");
                            return Outcome::Referral {
                                next_machine: m,
                                next_ctx: ctx,
                                remaining,
                            };
                        }
                        // Unplaced context object: nobody is authoritative,
                        // so nothing can be said about the binding — a
                        // transport verdict, never ⊥.
                        None => return Outcome::Unreachable { attempts: 0 },
                    }
                }
                _ => return Outcome::NotFound,
            }
        }
        unreachable!("compound names are nonempty")
    }

    /// Authoritative *batch* resolution step on `machine`: walks a
    /// shared-prefix trie of names from `start`, resolving each distinct
    /// prefix exactly once. Returns one outcome per query id (matching
    /// [`NameService::local_resolve`] on each name individually) and the
    /// number of lookups prefix sharing saved versus resolving every
    /// query independently.
    pub fn local_resolve_batch(
        &self,
        world: &World,
        machine: MachineId,
        start: ObjectId,
        trie: &NameTrie,
    ) -> (Vec<Outcome>, u32) {
        let n = trie.query_count as usize;
        if self.machine_of_object(start) != Some(machine) {
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("service.wrong_server").add(n as u64);
            return (vec![Outcome::WrongServer; n], 0);
        }
        // What each query would cost if resolved alone: every query in a
        // node's subtree would have looked that node's component up.
        let sub = trie.subtree_query_counts();
        let mut outcomes = vec![Outcome::NotFound; n];
        let mut lookups = 0u32;
        let mut naive = 0u32;

        /// Walk state at a trie node: still resolving locally, already
        /// past a referral boundary (accumulating the remaining path),
        /// past a dead binding (everything below is `NotFound`), or past
        /// an unplaced context (everything below is `Unreachable` — the
        /// bindings may exist but nobody can be asked).
        enum St {
            Live(ObjectId),
            Referred {
                m: MachineId,
                ctx: ObjectId,
                path: Vec<naming_core::name::Name>,
            },
            Dead,
            Unreachable,
        }

        let mut stack: Vec<(u32, St)> = trie
            .roots
            .iter()
            .rev()
            .map(|&r| (r, St::Live(start)))
            .collect();
        while let Some((ni, st)) = stack.pop() {
            let node = &trie.nodes[ni as usize];
            match st {
                // The default outcome is already NotFound.
                St::Dead => {
                    for &c in node.children.iter().rev() {
                        stack.push((c, St::Dead));
                    }
                }
                St::Unreachable => {
                    if let Some(q) = node.query {
                        if let Some(slot) = outcomes.get_mut(q as usize) {
                            *slot = Outcome::Unreachable { attempts: 0 };
                        }
                    }
                    for &c in node.children.iter().rev() {
                        stack.push((c, St::Unreachable));
                    }
                }
                St::Referred { m, ctx, path } => {
                    let mut p = path;
                    p.push(node.component);
                    if let Some(q) = node.query {
                        if let (Some(slot), Ok(remaining)) = (
                            outcomes.get_mut(q as usize),
                            CompoundName::new(p.iter().copied()),
                        ) {
                            *slot = Outcome::Referral {
                                next_machine: m,
                                next_ctx: ctx,
                                remaining,
                            };
                        }
                    }
                    for &c in node.children.iter().rev() {
                        stack.push((
                            c,
                            St::Referred {
                                m,
                                ctx,
                                path: p.clone(),
                            },
                        ));
                    }
                }
                St::Live(cur) => {
                    lookups += 1;
                    naive += sub[ni as usize];
                    let e = world.state().lookup(cur, node.component);
                    if !e.is_defined() {
                        for &c in node.children.iter().rev() {
                            stack.push((c, St::Dead));
                        }
                        continue;
                    }
                    if let Some(q) = node.query {
                        if let Some(slot) = outcomes.get_mut(q as usize) {
                            *slot = Outcome::Resolved(e);
                        }
                    }
                    if node.children.is_empty() {
                        continue;
                    }
                    // Descend exactly as the single-name walk would: a
                    // local replica keeps the walk live, a remote zone
                    // starts a referral, an unplaced zone is unreachable,
                    // anything else is dead.
                    enum Next {
                        Live(ObjectId),
                        Ref(MachineId, ObjectId),
                        Dead,
                        Unreachable,
                    }
                    let next = match e {
                        Entity::Object(o) if world.state().is_context_object(o) => {
                            if let Some(copy) = self.zone_copy_on(o, machine) {
                                Next::Live(copy)
                            } else {
                                match self.nearest_server_for(world, machine, o) {
                                    Some((m, ctx)) => Next::Ref(m, ctx),
                                    None => Next::Unreachable,
                                }
                            }
                        }
                        _ => Next::Dead,
                    };
                    for &c in node.children.iter().rev() {
                        stack.push((
                            c,
                            match next {
                                Next::Live(copy) => St::Live(copy),
                                Next::Ref(m, ctx) => St::Referred {
                                    m,
                                    ctx,
                                    path: Vec::new(),
                                },
                                Next::Dead => St::Dead,
                                Next::Unreachable => St::Unreachable,
                            },
                        ));
                    }
                }
            }
        }
        let saved = naive.saturating_sub(lookups);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("service.batch_queries").add(n as u64);
            naming_telemetry::counter!("service.batch_lookups").add(u64::from(lookups));
            naming_telemetry::counter!("service.batch_lookups_saved").add(u64::from(saved));
        }
        (outcomes, saved)
    }

    /// Picks the server for zone `o` nearest to `from`: same network
    /// beats cross-network; the primary wins ties. Returns the machine and
    /// the context object (copy or primary) it serves.
    fn nearest_server_for(
        &self,
        world: &World,
        from: MachineId,
        o: ObjectId,
    ) -> Option<(MachineId, ObjectId)> {
        let candidates = self.zone_servers(o);
        if candidates.is_empty() {
            return None;
        }
        let from_net = world.topology().machine_network(from);
        let best = candidates
            .iter()
            .copied()
            .min_by_key(|&m| {
                let same_net = world.topology().machine_network(m) == from_net;
                // Rank: same-network replicas first; primary order breaks
                // ties because `candidates` lists the primary first and
                // min_by_key is stable on equal keys.
                u8::from(!same_net)
            })
            .expect("nonempty");
        Some((
            best,
            self.zone_copy_on(o, best).expect("candidate serves zone"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_core::name::Name;
    use naming_sim::store;

    /// Two machines; m1 hosts /usr, m2 hosts /usr/remote (a grafted
    /// subtree).
    fn setup() -> (World, NameService, MachineId, MachineId, ObjectId, ObjectId) {
        let mut w = World::new(61);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root1 = w.machine_root(m1);
        let usr = store::ensure_dir(w.state_mut(), root1, "usr");
        store::create_file(w.state_mut(), usr, "motd", vec![]);
        let root2 = w.machine_root(m2);
        let rem = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), rem, "data", vec![]);
        // Graft m2's export dir into m1's tree.
        store::attach(w.state_mut(), usr, "remote", rem, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        // Place m2's tree first so the shared subtree belongs to m2.
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root1, m1);
        (w, svc, m1, m2, root1, rem)
    }

    #[test]
    fn placement_respects_first_owner() {
        let (w, svc, m1, m2, root1, rem) = setup();
        assert_eq!(svc.machine_of_object(root1), Some(m1));
        assert_eq!(svc.machine_of_object(rem), Some(m2));
        assert!(svc.placed_count() >= 4);
        assert_eq!(svc.servers().count(), 2);
        let _ = w;
    }

    #[test]
    fn local_resolution_within_one_machine() {
        let (w, svc, m1, _, root1, _) = setup();
        let name = CompoundName::parse_path("/usr/motd").unwrap();
        match svc.local_resolve(&w, m1, root1, &name) {
            Outcome::Resolved(e) => assert!(e.is_defined()),
            other => panic!("expected Resolved, got {other:?}"),
        }
    }

    #[test]
    fn crossing_machines_yields_referral() {
        let (w, svc, m1, m2, root1, rem) = setup();
        let name = CompoundName::parse_path("/usr/remote/data").unwrap();
        match svc.local_resolve(&w, m1, root1, &name) {
            Outcome::Referral {
                next_machine,
                next_ctx,
                remaining,
            } => {
                assert_eq!(next_machine, m2);
                assert_eq!(next_ctx, rem);
                assert_eq!(remaining.to_string(), "data");
            }
            other => panic!("expected Referral, got {other:?}"),
        }
    }

    #[test]
    fn wrong_server_and_not_found() {
        let (w, svc, _m1, m2, root1, rem) = setup();
        let name = CompoundName::parse_path("/usr/motd").unwrap();
        assert_eq!(
            svc.local_resolve(&w, m2, root1, &name),
            Outcome::WrongServer
        );
        let bogus = CompoundName::parse_path("nope").unwrap();
        // `rem` is on m2; "nope" isn't bound there (strip the implicit dot
        // by using a direct component name).
        let direct = CompoundName::atom(Name::new("nope"));
        let _ = bogus;
        assert_eq!(svc.local_resolve(&w, m2, rem, &direct), Outcome::NotFound);
    }

    #[test]
    fn traversal_through_file_is_not_found() {
        let (mut w, mut svc, m1, _, root1, _) = setup();
        let f = store::create_file(w.state_mut(), root1, "plain", vec![]);
        svc.place(f, m1);
        let name = CompoundName::parse_path("/plain/x").unwrap();
        assert_eq!(svc.local_resolve(&w, m1, root1, &name), Outcome::NotFound);
    }

    #[test]
    fn replication_keeps_resolution_local() {
        let (mut w, mut svc, m1, m2, root1, rem) = setup();
        // Before replication: /usr/remote/data refers to m2.
        let name = CompoundName::parse_path("/usr/remote/data").unwrap();
        assert!(matches!(
            svc.local_resolve(&w, m1, root1, &name),
            Outcome::Referral { .. }
        ));
        // Replicate m2's export zone onto m1.
        let copy = svc.replicate_zone(&mut w, rem, m1);
        assert_eq!(svc.zone_copy_on(rem, m1), Some(copy));
        assert_eq!(svc.zone_servers(rem), vec![m2, m1]);
        // Now the whole walk completes on m1, answering from the replica.
        match svc.local_resolve(&w, m1, root1, &name) {
            Outcome::Resolved(e) => assert!(e.is_defined()),
            other => panic!("expected local Resolved, got {other:?}"),
        }
        // And the world-level replica registry knows they are replicas.
        assert!(w.replicas().are_replicas(rem, copy));
    }

    #[test]
    fn replica_divergence_and_sync() {
        let (mut w, mut svc, m1, _m2, _root1, rem) = setup();
        let _copy = svc.replicate_zone(&mut w, rem, m1);
        assert!(svc.replica_divergence(&w, rem).is_empty());
        // Primary gains a binding; replica lags.
        store::create_file(w.state_mut(), rem, "new-file", vec![]);
        let div = svc.replica_divergence(&w, rem);
        assert_eq!(div, vec![Name::new("new-file")]);
        // Weak coherence has degraded: the zone copies disagree — which the
        // world-level invariant check also sees.
        assert_eq!(w.replicas().violations(w.state()).len(), 1);
        // Sync repairs both views.
        svc.sync_zone(&mut w, rem);
        assert!(svc.replica_divergence(&w, rem).is_empty());
        assert!(w.replicas().violations(w.state()).is_empty());
    }

    #[test]
    fn stale_replica_answers_incoherently_until_sync() {
        let (mut w, mut svc, m1, m2, root1, rem) = setup();
        let _copy = svc.replicate_zone(&mut w, rem, m1);
        let name = CompoundName::parse_path("/usr/remote/data").unwrap();
        // Rebind `data` at the primary.
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(rem, Name::new("data"), fresh).unwrap();
        // m1's replica-backed answer is the OLD object; m2's (primary) is
        // the new one: the same name, two meanings.
        let via_replica = svc.local_resolve(&w, m1, root1, &name);
        let via_primary = svc.local_resolve(&w, m2, rem, &CompoundName::atom(Name::new("data")));
        assert_ne!(via_replica, via_primary);
        assert_eq!(via_primary, Outcome::Resolved(Entity::Object(fresh)));
        svc.sync_zone(&mut w, rem);
        let healed = svc.local_resolve(&w, m1, root1, &name);
        assert_eq!(healed, Outcome::Resolved(Entity::Object(fresh)));
    }

    #[test]
    #[should_panic(expected = "already replicated")]
    fn double_replication_panics() {
        let (mut w, mut svc, m1, _m2, _root1, rem) = setup();
        svc.replicate_zone(&mut w, rem, m1);
        svc.replicate_zone(&mut w, rem, m1);
    }

    #[test]
    fn batch_walk_agrees_with_single_walk() {
        let (w, svc, m1, _, root1, _) = setup();
        let names: Vec<CompoundName> = [
            "/usr/motd",
            "/usr/remote/data",
            "/usr/remote/other",
            "/usr/missing",
            "/usr/motd", // duplicate
            "/usr",
        ]
        .iter()
        .map(|p| CompoundName::parse_path(p).unwrap())
        .collect();
        let (trie, mapping) = NameTrie::build(&names);
        let (outcomes, saved) = svc.local_resolve_batch(&w, m1, root1, &trie);
        assert_eq!(outcomes.len(), trie.query_count as usize);
        for (i, n) in names.iter().enumerate() {
            let single = svc.local_resolve(&w, m1, root1, n);
            assert_eq!(
                outcomes[mapping[i] as usize], single,
                "batch and single walks disagree on {n}"
            );
        }
        // The six names share "/" and "/usr" prefixes; the batch walk
        // must have skipped repeated lookups.
        assert!(saved > 0, "shared prefixes should save lookups");
    }

    #[test]
    fn batch_walk_through_replica_stays_local() {
        let (mut w, mut svc, m1, _m2, root1, rem) = setup();
        svc.replicate_zone(&mut w, rem, m1);
        let names = vec![
            CompoundName::parse_path("/usr/remote/data").unwrap(),
            CompoundName::parse_path("/usr/remote/nope").unwrap(),
        ];
        let (trie, mapping) = NameTrie::build(&names);
        let (outcomes, _) = svc.local_resolve_batch(&w, m1, root1, &trie);
        for (i, n) in names.iter().enumerate() {
            assert_eq!(
                outcomes[mapping[i] as usize],
                svc.local_resolve(&w, m1, root1, n)
            );
        }
        assert!(matches!(
            outcomes[mapping[0] as usize],
            Outcome::Resolved(_)
        ));
    }

    #[test]
    fn batch_walk_wrong_server() {
        let (w, svc, _m1, m2, root1, _) = setup();
        let names = vec![CompoundName::parse_path("/usr/motd").unwrap()];
        let (trie, _) = NameTrie::build(&names);
        let (outcomes, saved) = svc.local_resolve_batch(&w, m2, root1, &trie);
        assert_eq!(outcomes, vec![Outcome::WrongServer]);
        assert_eq!(saved, 0);
    }

    #[test]
    fn unplaced_context_is_unreachable_not_bottom() {
        let (mut w, svc, m1, _, root1, _) = setup();
        // A directory nobody is authoritative for: the binding may well
        // exist there, so the verdict is "can't ask", never ⊥.
        let orphan = w.state_mut().add_context_object("orphan");
        w.state_mut()
            .bind(root1, Name::new("orphan"), orphan)
            .unwrap();
        let name = CompoundName::parse_path("/orphan/x").unwrap();
        assert_eq!(
            svc.local_resolve(&w, m1, root1, &name),
            Outcome::Unreachable { attempts: 0 }
        );
        // The batch walk agrees, and keeps NotFound distinct below the
        // same root.
        let names = vec![
            name,
            CompoundName::parse_path("/orphan/deeper/x").unwrap(),
            CompoundName::parse_path("/missing").unwrap(),
        ];
        let (trie, mapping) = NameTrie::build(&names);
        let (outcomes, _) = svc.local_resolve_batch(&w, m1, root1, &trie);
        assert_eq!(
            outcomes[mapping[0] as usize],
            Outcome::Unreachable { attempts: 0 }
        );
        assert_eq!(
            outcomes[mapping[1] as usize],
            Outcome::Unreachable { attempts: 0 }
        );
        assert_eq!(outcomes[mapping[2] as usize], Outcome::NotFound);
    }

    #[test]
    fn failover_targets_list_the_replica_group_primary_first() {
        let (mut w, mut svc, m1, m2, root1, rem) = setup();
        // Unreplicated context: just its own placement.
        assert_eq!(svc.failover_targets(root1), vec![(m1, root1)]);
        assert_eq!(svc.failover_targets(rem), vec![(m2, rem)]);
        let copy = svc.replicate_zone(&mut w, rem, m1);
        // Asking via the primary or via the copy yields the same group.
        assert_eq!(svc.failover_targets(rem), vec![(m2, rem), (m1, copy)]);
        assert_eq!(svc.failover_targets(copy), vec![(m2, rem), (m1, copy)]);
        // An unplaced object has no targets at all.
        let orphan = w.state_mut().add_context_object("orphan");
        assert!(svc.failover_targets(orphan).is_empty());
    }

    #[test]
    fn zones_on_reports_group_membership() {
        let (mut w, mut svc, m1, m2, _root1, rem) = setup();
        assert!(svc.zones_on(m1).is_empty());
        svc.replicate_zone(&mut w, rem, m1);
        assert_eq!(svc.zones_on(m1), vec![rem]); // secondary
        assert_eq!(svc.zones_on(m2), vec![rem]); // primary
    }

    #[test]
    fn add_server_is_idempotent() {
        let (mut w, mut svc, m1, _m2, _root1, _rem) = setup();
        let net = w.add_network("standby-net");
        let m3 = w.add_machine("m3", net);
        let s = svc.add_server(&mut w, m3);
        assert_eq!(svc.add_server(&mut w, m3), s);
        assert_eq!(svc.server_on(m3), s);
        assert_eq!(svc.add_server(&mut w, m1), svc.server_on(m1));
        assert_eq!(svc.servers().count(), 3);
    }
}
