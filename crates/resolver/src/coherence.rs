//! Lease coherence: the replica-local validation regime of §5, with
//! SOA-serial zones and IXFR-style incremental anti-entropy.
//!
//! The exact caches in [`referral`](crate::referral) validate entries
//! against authoritative per-context generations read straight out of
//! `world.state()` — an oracle no planet-scale deployment has. This
//! module supplies the deployable alternative, modeled on DNS:
//!
//! * every zone (object-table shard) carries a [`ZoneSerial`] advanced on
//!   each committed naming write (`SystemState` bumps it in lockstep with
//!   the shard generation);
//! * cached bindings carry a [`Lease`]: an expiry on the virtual-time
//!   axis plus the serials of the zones the entry's resolution walked;
//! * replicas learn serial movement only through **anti-entropy pulls**:
//!   a [`ZoneDeltaRequest`](crate::wire::ZoneDeltaRequest) carrying the
//!   serials the puller already holds, answered by a
//!   [`ZoneDelta`](crate::wire::ZoneDelta) of per-zone slices that are
//!   either the exact diff since that serial (IXFR) or — when the
//!   authority's retained [`ZoneJournal`] window no longer covers it, or
//!   the serial regressed (replica restart) — a complete dump (AXFR).
//!
//! Validation under [`CoherenceMode::Lease`] is two replica-local checks:
//! lease not expired, and no *heard* serial newer than the stamped one.
//! Neither reads σ; staleness is therefore bounded by TTL plus
//! propagation delay instead of being zero — exactly the weak-coherence
//! window the paper analyzes, made measurable. With `ttl = ∞` and a pull
//! after every publish the two regimes coincide: serial invalidation
//! drops a superset of what generation healing drops, and every dropped
//! entry refetches to the identical authoritative answer (the CI cmp leg
//! pins this byte-for-byte).

use std::collections::{BTreeMap, VecDeque};

use naming_core::entity::{Entity, ObjectId};
use naming_core::lease::{Lease, ZoneSerial};
use naming_core::name::Name;

use crate::wire::{ShardDelta, ZoneChange};

/// How a cache decides whether an entry may still be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Validate against authoritative per-context generations (the
    /// oracle). Zero staleness, but requires reading σ on every probe —
    /// only a simulation can afford it.
    Exact,
    /// Validate against replica-local facts only: lease expiry on the
    /// virtual-time axis and zone serials heard through anti-entropy.
    /// Staleness is bounded by `ttl` + propagation delay.
    Lease {
        /// Lease duration in ticks; `None` = ∞ (entries die by serial
        /// movement or eviction only).
        ttl: Option<u64>,
    },
}

impl CoherenceMode {
    /// True for [`CoherenceMode::Exact`].
    pub const fn is_exact(self) -> bool {
        matches!(self, CoherenceMode::Exact)
    }

    /// True for [`CoherenceMode::Lease`].
    pub const fn is_lease(self) -> bool {
        matches!(self, CoherenceMode::Lease { .. })
    }

    /// The lease TTL (`None` = ∞). Meaningful only in lease mode; exact
    /// mode answers `None` (it never grants leases at all).
    pub const fn lease_ttl(self) -> Option<u64> {
        match self {
            CoherenceMode::Exact => None,
            CoherenceMode::Lease { ttl } => ttl,
        }
    }
}

/// What a [`SerialTable::observe`] call learned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SerialObservation {
    /// The serial matches what was already known.
    Unchanged,
    /// The authority moved forward; entries stamped with the old serial
    /// are now suspect.
    Advanced,
    /// The authority answered with an *older* serial than previously
    /// heard — the replica-restart signature. The table adopts the
    /// authority's truth (it is the authority); callers must treat every
    /// entry depending on the zone as suspect.
    Regressed,
}

/// A replica's knowledge of zone serials: the newest serial *heard* per
/// shard, strictly via anti-entropy — never read from σ.
#[derive(Clone, Debug, Default)]
pub struct SerialTable {
    heard: BTreeMap<usize, ZoneSerial>,
}

impl SerialTable {
    /// A table that has heard nothing (every zone at
    /// [`ZoneSerial::ZERO`]).
    pub fn new() -> SerialTable {
        SerialTable::default()
    }

    /// The newest serial heard for `shard`
    /// ([`ZoneSerial::ZERO`] when the zone was never heard from).
    pub fn known(&self, shard: usize) -> ZoneSerial {
        self.heard.get(&shard).copied().unwrap_or(ZoneSerial::ZERO)
    }

    /// Folds an authoritative serial into the table, reporting how it
    /// relates to what was known. The authority's value is adopted even
    /// on regression — it *is* the authority; the observation return lets
    /// the caller quarantine entries stamped under the lost history.
    pub fn observe(&mut self, shard: usize, serial: ZoneSerial) -> SerialObservation {
        let known = self.known(shard);
        if serial == known {
            return SerialObservation::Unchanged;
        }
        self.heard.insert(shard, serial);
        if serial.is_newer_than(known) {
            SerialObservation::Advanced
        } else {
            SerialObservation::Regressed
        }
    }

    /// `(shard, serial)` pairs heard so far, for building a
    /// [`ZoneDeltaRequest`](crate::wire::ZoneDeltaRequest).
    pub fn snapshot(&self) -> Vec<(usize, ZoneSerial)> {
        self.heard.iter().map(|(&s, &v)| (s, v)).collect()
    }

    /// One `(shard, serial)` pair for *every* shard in `0..shards`,
    /// filling never-heard shards with [`ZoneSerial::ZERO`] — the request
    /// shape of a full anti-entropy pull, where silence about a shard
    /// would otherwise mean never learning it exists.
    pub fn snapshot_for(&self, shards: usize) -> Vec<(usize, ZoneSerial)> {
        (0..shards).map(|s| (s, self.known(s))).collect()
    }

    /// Forgets everything — a replica restart losing its warm state. The
    /// next pull asks from [`ZoneSerial::ZERO`] and gets full transfers.
    pub fn reset(&mut self) {
        self.heard.clear();
    }
}

/// Why a [`LeasedCache::probe`] did or did not answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseProbe {
    /// A valid leased entry answered.
    Hit(Entity),
    /// An entry existed but its lease had lapsed; it was dropped.
    Expired,
    /// An entry existed but a zone it depends on has a newer heard
    /// serial; it was dropped.
    Stale,
    /// No entry.
    Miss,
}

/// Counters for a leased cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseCacheStats {
    /// Probes answered by a valid leased entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries dropped because their lease expired.
    pub expired: u64,
    /// Entries dropped because a depended-on zone's heard serial moved
    /// past the stamp (including regressions).
    pub serial_dropped: u64,
    /// Entries recorded.
    pub recorded: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl LeaseCacheStats {
    /// Entries dropped for any coherence reason (expiry or serial).
    pub fn invalidated(&self) -> u64 {
        self.expired + self.serial_dropped
    }
}

/// One leased binding: the entity plus the replica-local facts that
/// justify serving it.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LeasedEntry {
    entity: Entity,
    /// First tick at which the entry may no longer be served
    /// (half-open validity, see [`Lease`]).
    expires_at: u64,
    /// Tick the entry was recorded (for staleness-window reporting).
    recorded_at: u64,
    /// Every zone the resolution depended on, stamped with the serial
    /// heard at record time.
    zones: Vec<(usize, ZoneSerial)>,
}

/// A bounded cache of leased bindings, validated by the two
/// replica-local checks only: lease expiry and heard-serial movement.
/// No method takes σ, a `World`, or a `SystemState` — staleness beyond
/// the checks is *possible by design* and bounded by the TTL.
#[derive(Clone, Debug)]
pub struct LeasedCache {
    entries: BTreeMap<(ObjectId, Vec<Name>), LeasedEntry>,
    /// FIFO insertion order for the capacity bound; keys may be stale
    /// (entries removed out-of-band are skipped when evicting).
    order: VecDeque<(ObjectId, Vec<Name>)>,
    capacity: usize,
    stats: LeaseCacheStats,
}

impl LeasedCache {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> LeasedCache {
        assert!(capacity > 0, "a zero-capacity cache cannot hold entries");
        LeasedCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: LeaseCacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LeaseCacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records `entity` for `(start, suffix)` under a lease granted at
    /// `now` for `ttl` ticks (`None` = ∞), depending on `zones` — each
    /// stamped with the serial currently heard in `table`. A `ttl` of 0
    /// grants a lease that is never valid, so nothing is recorded.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        now: u64,
        ttl: Option<u64>,
        start: ObjectId,
        suffix: &[Name],
        entity: Entity,
        zones: impl IntoIterator<Item = usize>,
        table: &SerialTable,
    ) {
        if ttl == Some(0) {
            return;
        }
        let mut deps: Vec<(usize, ZoneSerial)> =
            zones.into_iter().map(|z| (z, table.known(z))).collect();
        deps.sort_unstable_by_key(|&(z, _)| z);
        deps.dedup_by_key(|&mut (z, _)| z);
        let lease = Lease::grant(
            now,
            ttl,
            deps.first().map(|&(_, s)| s).unwrap_or(ZoneSerial::ZERO),
        );
        let key = (start, suffix.to_vec());
        if self
            .entries
            .insert(
                key.clone(),
                LeasedEntry {
                    entity,
                    expires_at: lease.expires_at,
                    recorded_at: now,
                    zones: deps,
                },
            )
            .is_none()
        {
            self.order.push_back(key);
        }
        self.stats.recorded += 1;
        while self.entries.len() > self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&old).is_some() {
                self.stats.evictions += 1;
            }
        }
    }

    /// Probes `(start, suffix)` at `now`, validating with the two
    /// replica-local checks. Invalid entries are dropped on sight and the
    /// probe reports why; only [`LeaseProbe::Hit`] carries an answer.
    pub fn probe(
        &mut self,
        now: u64,
        table: &SerialTable,
        start: ObjectId,
        suffix: &[Name],
    ) -> LeaseProbe {
        let key = (start, suffix.to_vec());
        let Some(entry) = self.entries.get(&key) else {
            self.stats.misses += 1;
            return LeaseProbe::Miss;
        };
        if now >= entry.expires_at {
            self.entries.remove(&key);
            self.stats.expired += 1;
            self.stats.misses += 1;
            return LeaseProbe::Expired;
        }
        if entry.zones.iter().any(|&(z, s)| table.known(z) != s) {
            // Any movement — forward or regressed — past the stamped
            // serial invalidates: the entry was justified under history
            // the zone no longer stands behind.
            self.entries.remove(&key);
            self.stats.serial_dropped += 1;
            self.stats.misses += 1;
            return LeaseProbe::Stale;
        }
        self.stats.hits += 1;
        LeaseProbe::Hit(entry.entity)
    }

    /// The shards the held entry for `(start, suffix)` depends on (empty
    /// when nothing is held). Lets a caller that jumped through a cached
    /// referral compose the jumped-over footprint into entries it records
    /// downstream — without ever consulting σ.
    pub fn zone_deps(&self, start: ObjectId, suffix: &[Name]) -> Vec<usize> {
        self.entries
            .get(&(start, suffix.to_vec()))
            .map(|e| e.zones.iter().map(|&(z, _)| z).collect())
            .unwrap_or_default()
    }

    /// Age in ticks of the entry for `(start, suffix)`, if one is held
    /// (valid or not): `now - recorded_at`. For staleness-window reports.
    pub fn entry_age(&self, now: u64, start: ObjectId, suffix: &[Name]) -> Option<u64> {
        self.entries
            .get(&(start, suffix.to_vec()))
            .map(|e| now.saturating_sub(e.recorded_at))
    }

    /// Removes one entry (no invalidation counted — caller's policy).
    pub fn remove(&mut self, start: ObjectId, suffix: &[Name]) -> bool {
        self.entries.remove(&(start, suffix.to_vec())).is_some()
    }

    /// Drops every entry that depends on `shard` with a stamp other than
    /// `serial` — called when an anti-entropy pull observes movement.
    /// Returns how many entries were dropped.
    pub fn invalidate_zone(&mut self, shard: usize, serial: ZoneSerial) -> usize {
        let doomed: Vec<(ObjectId, Vec<Name>)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.zones.iter().any(|&(z, s)| z == shard && s != serial))
            .map(|(k, _)| k.clone())
            .collect();
        let n = doomed.len();
        for k in doomed {
            self.entries.remove(&k);
        }
        self.stats.serial_dropped += n as u64;
        n
    }

    /// Drops every entry whose lease has lapsed at `now`. Returns how
    /// many were dropped. (Probes do this lazily; sweeping reclaims the
    /// space eagerly.)
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let doomed: Vec<(ObjectId, Vec<Name>)> = self
            .entries
            .iter()
            .filter(|(_, e)| now >= e.expires_at)
            .map(|(k, _)| k.clone())
            .collect();
        let n = doomed.len();
        for k in doomed {
            self.entries.remove(&k);
        }
        self.stats.expired += n as u64;
        n
    }

    /// Drops everything (not counted as invalidations).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// Default bound on retained changes per zone in a [`ZoneJournal`].
pub const DEFAULT_JOURNAL_WINDOW: usize = 64;

/// One zone's retained change log.
#[derive(Clone, Debug)]
struct ShardLog {
    /// The serial *before* the oldest retained change: a puller holding
    /// `base` (or newer) can be served incrementally; anyone older gets
    /// a full transfer.
    base: ZoneSerial,
    entries: VecDeque<(ZoneSerial, ZoneChange)>,
}

/// The authority-side delta log: a bounded window of recent changes per
/// zone, from which [`ZoneDeltaRequest`](crate::wire::ZoneDeltaRequest)s
/// are answered incrementally. A request older than the window — or one
/// the journal cannot prove contiguous coverage for — falls back to a
/// full transfer, never to a silently incomplete diff.
#[derive(Clone, Debug)]
pub struct ZoneJournal {
    logs: BTreeMap<usize, ShardLog>,
    window: usize,
}

impl ZoneJournal {
    /// A journal retaining at most `window` changes per zone.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> ZoneJournal {
        assert!(window > 0, "a zero-width journal can never serve a delta");
        ZoneJournal {
            logs: BTreeMap::new(),
            window,
        }
    }

    /// The retention bound per zone.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Changes currently retained for `shard`.
    pub fn retained(&self, shard: usize) -> usize {
        self.logs.get(&shard).map_or(0, |l| l.entries.len())
    }

    /// Appends the change committed at `serial` in `shard`. If the
    /// journal missed intermediate writes (a state mutation bypassed
    /// publication), the retained history is no longer contiguous and is
    /// discarded — older pullers then get full transfers, which is sound;
    /// serving a diff with silent gaps would not be.
    pub fn record(&mut self, shard: usize, serial: ZoneSerial, change: ZoneChange) {
        let prev = ZoneSerial::new(serial.get().wrapping_sub(1));
        let log = self.logs.entry(shard).or_insert_with(|| ShardLog {
            base: prev,
            entries: VecDeque::new(),
        });
        if let Some(&(last, _)) = log.entries.back() {
            if serial != last.bump() {
                log.entries.clear();
                log.base = prev;
            }
        } else if log.base != prev {
            log.base = prev;
        }
        log.entries.push_back((serial, change));
        while log.entries.len() > self.window {
            if let Some((s, _)) = log.entries.pop_front() {
                log.base = s;
            }
        }
    }

    /// The exact changes in `shard` after `since`, **iff** the retained
    /// window provably covers `(since, current]`. `None` means the caller
    /// must fall back to a full transfer: the window was evicted past
    /// `since`, the puller's serial regressed relative to the authority's
    /// (or vice versa), or unjournaled writes broke contiguity at the
    /// tail.
    pub fn delta_since(
        &self,
        shard: usize,
        since: ZoneSerial,
        current: ZoneSerial,
    ) -> Option<Vec<ZoneChange>> {
        if since == current {
            return Some(Vec::new());
        }
        // A puller "ahead" of the authority is the authority-restart
        // case: no diff can reconcile it.
        current.distance_from(since)?;
        let log = self.logs.get(&shard)?;
        // Coverage: the window must reach back to `since` …
        if log.base.is_newer_than(since) {
            return None;
        }
        // … and forward to `current` (a gap at the tail means σ moved
        // without the journal hearing about it).
        match log.entries.back() {
            Some(&(last, _)) if last == current => {}
            _ => return None,
        }
        Some(
            log.entries
                .iter()
                .filter(|&&(s, _)| s.is_newer_than(since))
                .map(|(_, c)| c.clone())
                .collect(),
        )
    }
}

impl Default for ZoneJournal {
    fn default() -> ZoneJournal {
        ZoneJournal::with_window(DEFAULT_JOURNAL_WINDOW)
    }
}

/// Counters for a [`ZoneMirror`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// Slices applied incrementally (IXFR).
    pub incremental: u64,
    /// Slices applied as full dumps (AXFR fallback).
    pub full: u64,
    /// Individual binding changes applied.
    pub changes_applied: u64,
    /// Slices whose serial regressed relative to what was heard before.
    pub regressions: u64,
}

/// A replica's materialized copy of zone bindings, maintained purely by
/// applying [`ShardDelta`] slices — the client end of anti-entropy. Used
/// to verify convergence (the mirror must equal the authority's zone
/// contents once serials match) and to exercise the full-transfer
/// fallback without touching σ.
#[derive(Clone, Debug, Default)]
pub struct ZoneMirror {
    table: SerialTable,
    bindings: BTreeMap<usize, BTreeMap<(ObjectId, Name), Entity>>,
    stats: MirrorStats,
}

impl ZoneMirror {
    /// An empty mirror that has heard nothing.
    pub fn new() -> ZoneMirror {
        ZoneMirror::default()
    }

    /// The serials heard so far.
    pub fn table(&self) -> &SerialTable {
        &self.table
    }

    /// Counters so far.
    pub fn stats(&self) -> MirrorStats {
        self.stats
    }

    /// Total bindings materialized across all zones.
    pub fn len(&self) -> usize {
        self.bindings.values().map(BTreeMap::len).sum()
    }

    /// True when no bindings are materialized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies one zone slice: a full dump replaces the zone's contents,
    /// an incremental diff applies change by change (⊥ unbinds). Adopts
    /// the slice's serial and reports how it related to prior knowledge.
    pub fn apply(&mut self, slice: &ShardDelta) -> SerialObservation {
        let obs = self.table.observe(slice.shard, slice.serial);
        if obs == SerialObservation::Regressed {
            self.stats.regressions += 1;
        }
        let zone = self.bindings.entry(slice.shard).or_default();
        if slice.full {
            zone.clear();
            self.stats.full += 1;
        } else {
            self.stats.incremental += 1;
        }
        for c in &slice.changes {
            self.stats.changes_applied += 1;
            if c.entity.is_defined() {
                zone.insert((c.ctx, c.name), c.entity);
            } else {
                zone.remove(&(c.ctx, c.name));
            }
        }
        obs
    }

    /// The mirrored binding of `name` in `ctx` (⊥ when not mirrored).
    pub fn lookup(&self, shard: usize, ctx: ObjectId, name: Name) -> Entity {
        self.bindings
            .get(&shard)
            .and_then(|z| z.get(&(ctx, name)).copied())
            .unwrap_or(Entity::Undefined)
    }

    /// The mirrored bindings of one zone, sorted, for convergence checks.
    pub fn zone_bindings(&self, shard: usize) -> Vec<(ObjectId, Name, Entity)> {
        self.bindings
            .get(&shard)
            .map(|z| z.iter().map(|(&(c, n), &e)| (c, n, e)).collect())
            .unwrap_or_default()
    }

    /// Replica restart: warm state is gone. The serial table and the
    /// materialized bindings are dropped (stats survive — they belong to
    /// the experimenter, not the replica); the next pull starts from
    /// [`ZoneSerial::ZERO`] and forces full transfers.
    pub fn restart(&mut self) {
        self.table.reset();
        self.bindings.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(raw: u32) -> ObjectId {
        ObjectId::from_index(raw)
    }

    fn change(ctx: u32, name: &str, bound: Option<u32>) -> ZoneChange {
        ZoneChange {
            ctx: oid(ctx),
            name: Name::new(name),
            entity: bound
                .map(|o| Entity::Object(oid(o)))
                .unwrap_or(Entity::Undefined),
        }
    }

    #[test]
    fn serial_table_observes_advance_and_regression() {
        let mut t = SerialTable::new();
        assert_eq!(t.known(3), ZoneSerial::ZERO);
        assert_eq!(
            t.observe(3, ZoneSerial::new(5)),
            SerialObservation::Advanced
        );
        assert_eq!(
            t.observe(3, ZoneSerial::new(5)),
            SerialObservation::Unchanged
        );
        assert_eq!(
            t.observe(3, ZoneSerial::new(9)),
            SerialObservation::Advanced
        );
        // Authority restart: older serial. Adopted, but flagged.
        assert_eq!(
            t.observe(3, ZoneSerial::new(2)),
            SerialObservation::Regressed
        );
        assert_eq!(t.known(3), ZoneSerial::new(2));
        t.reset();
        assert_eq!(t.known(3), ZoneSerial::ZERO);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn leased_cache_serves_until_expiry_or_serial_movement() {
        let mut table = SerialTable::new();
        table.observe(0, ZoneSerial::new(4));
        let mut c = LeasedCache::with_capacity(8);
        let suffix = [Name::new("a"), Name::new("b")];
        c.record(
            100,
            Some(20),
            oid(1),
            &suffix,
            Entity::Object(oid(9)),
            [0],
            &table,
        );
        assert_eq!(
            c.probe(119, &table, oid(1), &suffix),
            LeaseProbe::Hit(Entity::Object(oid(9)))
        );
        // Expiry exactly at the tick: the half-open interval closes.
        c.record(
            100,
            Some(20),
            oid(1),
            &suffix,
            Entity::Object(oid(9)),
            [0],
            &table,
        );
        assert_eq!(c.probe(120, &table, oid(1), &suffix), LeaseProbe::Expired);
        assert_eq!(c.probe(120, &table, oid(1), &suffix), LeaseProbe::Miss);
        // Serial movement kills an unexpired entry.
        c.record(
            100,
            Some(1000),
            oid(1),
            &suffix,
            Entity::Object(oid(9)),
            [0],
            &table,
        );
        table.observe(0, ZoneSerial::new(5));
        assert_eq!(c.probe(101, &table, oid(1), &suffix), LeaseProbe::Stale);
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.stats().serial_dropped, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_ttl_records_nothing_and_infinite_ttl_never_expires() {
        let table = SerialTable::new();
        let mut c = LeasedCache::with_capacity(8);
        let suffix = [Name::new("x")];
        c.record(
            7,
            Some(0),
            oid(1),
            &suffix,
            Entity::Object(oid(2)),
            [0],
            &table,
        );
        assert!(c.is_empty(), "ttl 0 is never servable; do not store it");
        c.record(
            7,
            None,
            oid(1),
            &suffix,
            Entity::Object(oid(2)),
            [0],
            &table,
        );
        assert_eq!(
            c.probe(u64::MAX - 1, &table, oid(1), &suffix),
            LeaseProbe::Hit(Entity::Object(oid(2)))
        );
    }

    #[test]
    fn leased_cache_bounds_by_fifo_eviction() {
        let table = SerialTable::new();
        let mut c = LeasedCache::with_capacity(2);
        for i in 0..4u32 {
            let suffix = [Name::new(&format!("n{i}"))];
            c.record(
                0,
                None,
                oid(1),
                &suffix,
                Entity::Object(oid(i)),
                [0],
                &table,
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 2);
        // The oldest two are gone, the newest two serve.
        assert_eq!(
            c.probe(1, &table, oid(1), &[Name::new("n0")]),
            LeaseProbe::Miss
        );
        assert_eq!(
            c.probe(1, &table, oid(1), &[Name::new("n3")]),
            LeaseProbe::Hit(Entity::Object(oid(3)))
        );
    }

    #[test]
    fn invalidate_zone_drops_exactly_the_dependents() {
        let mut table = SerialTable::new();
        table.observe(0, ZoneSerial::new(1));
        table.observe(1, ZoneSerial::new(1));
        let mut c = LeasedCache::with_capacity(8);
        c.record(
            0,
            None,
            oid(1),
            &[Name::new("a")],
            Entity::Object(oid(5)),
            [0],
            &table,
        );
        c.record(
            0,
            None,
            oid(2),
            &[Name::new("b")],
            Entity::Object(oid(6)),
            [1],
            &table,
        );
        c.record(
            0,
            None,
            oid(3),
            &[Name::new("c")],
            Entity::Object(oid(7)),
            [0, 1],
            &table,
        );
        assert_eq!(c.invalidate_zone(0, ZoneSerial::new(2)), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.probe(1, &table, oid(2), &[Name::new("b")]),
            LeaseProbe::Hit(Entity::Object(oid(6)))
        );
    }

    #[test]
    fn sweep_expired_reclaims_lapsed_leases() {
        let table = SerialTable::new();
        let mut c = LeasedCache::with_capacity(8);
        c.record(
            0,
            Some(10),
            oid(1),
            &[Name::new("a")],
            Entity::Object(oid(5)),
            [0],
            &table,
        );
        c.record(
            0,
            Some(30),
            oid(2),
            &[Name::new("b")],
            Entity::Object(oid(6)),
            [0],
            &table,
        );
        assert_eq!(c.sweep_expired(10), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn journal_serves_incremental_within_window() {
        let mut j = ZoneJournal::with_window(16);
        for i in 1..=5u64 {
            j.record(
                0,
                ZoneSerial::new(i),
                change(10, &format!("n{i}"), Some(100 + i as u32)),
            );
        }
        let cur = ZoneSerial::new(5);
        assert_eq!(j.delta_since(0, cur, cur), Some(Vec::new()));
        let d = j.delta_since(0, ZoneSerial::new(3), cur).expect("covered");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, Name::new("n4"));
        assert_eq!(d[1].name, Name::new("n5"));
        // From before any journaled history: full transfer.
        // (base is serial 0 here, so 0 is still coverable …)
        assert_eq!(
            j.delta_since(0, ZoneSerial::ZERO, cur).map(|d| d.len()),
            Some(5)
        );
    }

    #[test]
    fn journal_eviction_forces_full_transfer() {
        let mut j = ZoneJournal::with_window(4);
        for i in 1..=10u64 {
            j.record(0, ZoneSerial::new(i), change(10, "n", Some(i as u32)));
        }
        assert_eq!(j.retained(0), 4);
        let cur = ZoneSerial::new(10);
        // since=6 is the window base: still covered (changes 7..=10).
        assert_eq!(
            j.delta_since(0, ZoneSerial::new(6), cur).map(|d| d.len()),
            Some(4)
        );
        // since=5 fell off the window: full transfer required.
        assert_eq!(j.delta_since(0, ZoneSerial::new(5), cur), None);
        // An unknown shard has no journal at all.
        assert_eq!(j.delta_since(7, ZoneSerial::ZERO, ZoneSerial::new(1)), None);
    }

    #[test]
    fn journal_regression_and_gaps_refuse_diffs() {
        let mut j = ZoneJournal::with_window(8);
        j.record(0, ZoneSerial::new(1), change(10, "a", Some(1)));
        j.record(0, ZoneSerial::new(2), change(10, "b", Some(2)));
        // Puller ahead of the authority (authority restarted): no diff.
        assert_eq!(
            j.delta_since(0, ZoneSerial::new(9), ZoneSerial::new(2)),
            None
        );
        // A write bypassed the journal: σ says current=5, tail says 2.
        assert_eq!(
            j.delta_since(0, ZoneSerial::new(1), ZoneSerial::new(5)),
            None
        );
        // Recording resumes after the gap: history restarts at the gap.
        j.record(0, ZoneSerial::new(6), change(10, "c", Some(3)));
        assert_eq!(j.retained(0), 1, "non-contiguous history was discarded");
        assert_eq!(
            j.delta_since(0, ZoneSerial::new(1), ZoneSerial::new(6)),
            None
        );
        assert_eq!(
            j.delta_since(0, ZoneSerial::new(5), ZoneSerial::new(6))
                .map(|d| d.len()),
            Some(1)
        );
    }

    #[test]
    fn mirror_applies_incremental_and_full_and_flags_regression() {
        let mut m = ZoneMirror::new();
        // Incremental slice: two binds, then an unbind.
        let inc = ShardDelta {
            shard: 0,
            serial: ZoneSerial::new(3),
            full: false,
            changes: vec![
                change(10, "a", Some(1)),
                change(10, "b", Some(2)),
                change(10, "a", None),
            ],
        };
        assert_eq!(m.apply(&inc), SerialObservation::Advanced);
        assert_eq!(m.lookup(0, oid(10), Name::new("b")), Entity::Object(oid(2)));
        assert_eq!(m.lookup(0, oid(10), Name::new("a")), Entity::Undefined);
        assert_eq!(m.len(), 1);
        // Full slice replaces everything in the zone.
        let full = ShardDelta {
            shard: 0,
            serial: ZoneSerial::new(7),
            full: true,
            changes: vec![change(10, "c", Some(3))],
        };
        assert_eq!(m.apply(&full), SerialObservation::Advanced);
        assert_eq!(
            m.zone_bindings(0),
            vec![(oid(10), Name::new("c"), Entity::Object(oid(3)))]
        );
        // Authority regression is flagged and adopted.
        let back = ShardDelta {
            shard: 0,
            serial: ZoneSerial::new(2),
            full: true,
            changes: vec![],
        };
        assert_eq!(m.apply(&back), SerialObservation::Regressed);
        assert_eq!(m.stats().regressions, 1);
        assert!(m.is_empty());
        // Restart forgets serials and bindings; the next request starts
        // from ZERO (forcing a full transfer at the authority).
        m.restart();
        assert_eq!(m.table().known(0), ZoneSerial::ZERO);
    }
}
