//! Referral and negative caches: routing knowledge and `⊥` verdicts a
//! client may keep — *with* generation validation, so neither ever
//! returns a stale answer.
//!
//! DNS resolvers cache referrals (NS records) so repeat lookups skip the
//! root; SDSI's linked local namespaces make the same observation about
//! name-by-name delegation. The paper's §5 warning applies to both: a
//! cached referral is a claim about the bindings along a prefix, and the
//! contexts are free to falsify it. These caches therefore record the
//! full generation footprint of the prefix (PR-1 counters) and validate
//! it on every probe: a wrong-generation entry is dropped on sight and
//! the client falls back toward the root. That makes them *coherent*
//! caches — unlike [`CachingResolver`](crate::cache::CachingResolver)'s
//! deliberately incoherent positive cache, whose staleness is the point.
//!
//! Both caches are thin policies over naming-core's
//! [`ResolutionMemo`], which already owns the hard parts: borrowed-key
//! probes, O(1) LRU bounding, and epoch/generation validation.

use naming_core::entity::{Entity, ObjectId};
use naming_core::memo::ResolutionMemo;
use naming_core::name::{CompoundName, Name};
use naming_core::resolve::Resolver;
use naming_sim::topology::MachineId;
use naming_sim::world::World;

use crate::coherence::{CoherenceMode, LeaseProbe, LeasedCache, SerialTable};
use crate::service::NameService;

/// Default bound on cached referrals / negative entries.
pub const DEFAULT_REFERRAL_CAPACITY: usize = 1 << 10;

/// Counters for a validated cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidatedCacheStats {
    /// Probes answered by a still-valid entry.
    pub hits: u64,
    /// Probes that found nothing valid.
    pub misses: u64,
    /// Entries dropped because their generation footprint no longer
    /// matched the authoritative state.
    pub invalidated: u64,
    /// Entries recorded.
    pub recorded: u64,
}

/// Maps resolved zone prefixes to the context object (and server) that
/// became authoritative there, so a repeat lookup skips straight to the
/// deepest known server instead of walking from the root.
///
/// Every entry carries the `(context, generation)` footprint of its
/// prefix; [`ReferralCache::lookup_deepest`] re-validates on each probe
/// and falls back to the next-shallower prefix (ultimately the root)
/// when a generation moved. A jump is therefore always equivalent to
/// resolving the prefix afresh — referral caching changes message
/// counts, never answers.
#[derive(Debug)]
pub struct ReferralCache {
    memo: ResolutionMemo,
    leased: LeasedCache,
    mode: CoherenceMode,
    stats: ValidatedCacheStats,
}

impl ReferralCache {
    /// An empty cache with the default bound, in exact mode.
    pub fn new() -> ReferralCache {
        ReferralCache::with_capacity(DEFAULT_REFERRAL_CAPACITY)
    }

    /// An empty exact-mode cache holding at most `capacity` referrals
    /// (LRU-bounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> ReferralCache {
        ReferralCache::with_mode(capacity, CoherenceMode::Exact)
    }

    /// An empty cache holding at most `capacity` referrals, validating
    /// per `mode`: exact entries live in the generation-versioned memo,
    /// leased entries in a [`LeasedCache`] that never reads σ.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_mode(capacity: usize, mode: CoherenceMode) -> ReferralCache {
        ReferralCache {
            memo: ResolutionMemo::with_capacity(capacity),
            leased: LeasedCache::with_capacity(capacity),
            mode,
            stats: ValidatedCacheStats::default(),
        }
    }

    /// The validation regime this cache runs under.
    pub fn mode(&self) -> CoherenceMode {
        self.mode
    }

    /// Counters so far.
    pub fn stats(&self) -> ValidatedCacheStats {
        self.stats
    }

    /// Number of cached referrals.
    pub fn len(&self) -> usize {
        self.memo.len() + self.leased.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.leased.is_empty()
    }

    /// Records that resolving `prefix` from `start` handed authority to
    /// the context object `ctx`.
    ///
    /// The entry's validity footprint is the generation of every context
    /// the prefix traverses *now*; if the oracle walk disagrees with the
    /// protocol's referral (a lagging replica answered, or the binding
    /// changed while the referral was in flight), nothing is recorded —
    /// a cache that can't justify an entry must not keep it.
    pub fn record(&mut self, world: &World, start: ObjectId, prefix: &CompoundName, ctx: ObjectId) {
        debug_assert!(
            self.mode.is_exact(),
            "ReferralCache::record reads authoritative state; lease mode must use record_leased"
        );
        let (oracle, deps) = Resolver::new().resolve_entity_with_deps(world.state(), start, prefix);
        let justified = match oracle {
            Entity::Object(o) => o == ctx || world.replicas().are_replicas(o, ctx),
            _ => false,
        };
        if !justified || deps.is_empty() {
            return;
        }
        self.memo.record(
            world.state(),
            start,
            prefix.components(),
            Entity::Object(ctx),
            &deps,
        );
        self.stats.recorded += 1;
    }

    /// Finds the deepest cached, still-valid referral for a proper prefix
    /// of `comps` from `start`. Returns `(prefix length, context,
    /// machine)`; generation-invalid entries encountered on the way are
    /// dropped (counted in
    /// [`invalidated`](ValidatedCacheStats::invalidated)) and the search
    /// falls back toward the root.
    pub fn lookup_deepest(
        &mut self,
        world: &World,
        service: &NameService,
        start: ObjectId,
        comps: &[Name],
    ) -> Option<(usize, ObjectId, MachineId)> {
        debug_assert!(
            self.mode.is_exact(),
            "ReferralCache::lookup_deepest validates against authoritative state; \
             lease mode must use lookup_deepest_leased"
        );
        // Every entry this walk drops — generation-invalid probes and
        // unplaced-machine removals alike — bumps the memo's own
        // invalidation counter exactly once, so one delta over the whole
        // walk is the single source of truth for `stats.invalidated`.
        // (Mixing the delta with direct bumps is how entries get counted
        // twice or zero times.)
        let invalidations0 = self.memo.stats().invalidations;
        let mut found = None;
        for len in (1..comps.len()).rev() {
            let probed = self.memo.probe(world.state(), start, &comps[..len]);
            let Some(Entity::Object(ctx)) = probed else {
                continue;
            };
            // A referral is only useful if somebody still serves the
            // context; placement is consulted live, never cached.
            match service.machine_of_object(ctx) {
                Some(m) => {
                    found = Some((len, ctx, m));
                    break;
                }
                None => {
                    self.memo.remove(start, &comps[..len]);
                }
            }
        }
        let dropped = self.memo.stats().invalidations - invalidations0;
        self.stats.invalidated += dropped;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.invalidated").add(dropped);
        match found {
            Some(hit) => {
                self.stats.hits += 1;
                #[cfg(feature = "telemetry")]
                naming_telemetry::counter!("referral.hits").bump();
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                #[cfg(feature = "telemetry")]
                naming_telemetry::counter!("referral.misses").bump();
                None
            }
        }
    }

    /// Lease-mode [`ReferralCache::record`]: remembers that resolving
    /// `prefix` from `start` handed authority to `ctx`, justified by
    /// nothing but the protocol's own referral — stamped with a lease and
    /// the serials (from `table`) of `zones`, the shards the walk
    /// traversed. No oracle check: a lagging authority *may* plant a
    /// stale referral here, and the lease bounds how long it can mislead.
    pub fn record_leased(
        &mut self,
        now: u64,
        table: &SerialTable,
        start: ObjectId,
        prefix: &CompoundName,
        ctx: ObjectId,
        zones: impl IntoIterator<Item = usize>,
    ) {
        debug_assert!(
            self.mode.is_lease(),
            "record_leased grants leases; exact mode must use record"
        );
        self.leased.record(
            now,
            self.mode.lease_ttl(),
            start,
            prefix.components(),
            Entity::Object(ctx),
            zones,
            table,
        );
        self.stats.recorded += 1;
    }

    /// Lease-mode [`ReferralCache::lookup_deepest`]: finds the deepest
    /// cached referral whose lease holds at `now` and whose zone stamps
    /// match the serials heard in `table` — two replica-local checks,
    /// never a read of σ. Returns `(prefix length, context, machine,
    /// zones the entry depended on)` so the caller can compose the
    /// jumped-over footprint into entries it records downstream.
    pub fn lookup_deepest_leased(
        &mut self,
        now: u64,
        table: &SerialTable,
        service: &NameService,
        start: ObjectId,
        comps: &[Name],
    ) -> Option<(usize, ObjectId, MachineId, Vec<usize>)> {
        debug_assert!(
            self.mode.is_lease(),
            "lookup_deepest_leased validates leases; exact mode must use lookup_deepest"
        );
        for len in (1..comps.len()).rev() {
            let probed = self.leased.probe(now, table, start, &comps[..len]);
            let LeaseProbe::Hit(Entity::Object(ctx)) = probed else {
                if matches!(probed, LeaseProbe::Expired | LeaseProbe::Stale) {
                    self.stats.invalidated += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("referral.invalidated").bump();
                }
                continue;
            };
            // Placement is service configuration, consulted live in both
            // modes — it is not naming state.
            match service.machine_of_object(ctx) {
                Some(m) => {
                    self.stats.hits += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("referral.hits").bump();
                    return Some((len, ctx, m, self.leased.zone_deps(start, &comps[..len])));
                }
                None => {
                    self.leased.remove(start, &comps[..len]);
                    self.stats.invalidated += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("referral.invalidated").bump();
                }
            }
        }
        self.stats.misses += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.misses").bump();
        None
    }

    /// Drops every leased entry depending on `shard` with a stamp other
    /// than `serial` (anti-entropy observed movement). Returns how many.
    pub fn observe_zone(&mut self, shard: usize, serial: naming_core::lease::ZoneSerial) -> usize {
        let n = self.leased.invalidate_zone(shard, serial);
        self.stats.invalidated += n as u64;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.invalidated").add(n as u64);
        n
    }

    /// Drops every leased entry whose lease lapsed at `now`; returns how
    /// many. Exact entries are untouched (they have no leases).
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let n = self.leased.sweep_expired(now);
        self.stats.invalidated += n as u64;
        n
    }

    /// Drops every entry (exact and leased alike).
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
        self.leased.clear();
    }

    /// Drops exactly the entries whose generation footprint is stale.
    /// Returns how many were dropped. (Probes do this lazily anyway;
    /// sweeping just reclaims the space eagerly.)
    pub fn heal(&mut self, world: &World) -> usize {
        debug_assert!(
            self.mode.is_exact(),
            "ReferralCache::heal compares authoritative generations; \
             lease mode heals via observe_zone / sweep_expired"
        );
        let n = self.memo.invalidate_stale(world.state());
        self.stats.invalidated += n as u64;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.invalidated").add(n as u64);
        n
    }
}

impl Default for ReferralCache {
    fn default() -> ReferralCache {
        ReferralCache::new()
    }
}

/// Caches `⊥` outcomes — "this name denotes nothing" — with the
/// generation footprint of the failed walk, so repeated misses stop
/// hitting the network while a `bind` anywhere along the consulted path
/// invalidates the verdict exactly.
///
/// Unlike the positive cache, negative entries are *always* validated
/// before being served: serving a stale "does not exist" would invent
/// incoherence the authoritative system never exhibited.
#[derive(Debug)]
pub struct NegativeCache {
    memo: ResolutionMemo,
    leased: LeasedCache,
    mode: CoherenceMode,
    stats: ValidatedCacheStats,
}

impl NegativeCache {
    /// An empty cache with the default bound, in exact mode.
    pub fn new() -> NegativeCache {
        NegativeCache::with_capacity(DEFAULT_REFERRAL_CAPACITY)
    }

    /// An empty exact-mode cache holding at most `capacity` verdicts
    /// (LRU-bounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> NegativeCache {
        NegativeCache::with_mode(capacity, CoherenceMode::Exact)
    }

    /// An empty cache holding at most `capacity` verdicts, validating
    /// per `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_mode(capacity: usize, mode: CoherenceMode) -> NegativeCache {
        NegativeCache {
            memo: ResolutionMemo::with_capacity(capacity),
            leased: LeasedCache::with_capacity(capacity),
            mode,
            stats: ValidatedCacheStats::default(),
        }
    }

    /// The validation regime this cache runs under.
    pub fn mode(&self) -> CoherenceMode {
        self.mode
    }

    /// Counters so far.
    pub fn stats(&self) -> ValidatedCacheStats {
        self.stats
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.memo.len() + self.leased.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.leased.is_empty()
    }

    /// True when `name` from `start` is a cached, still-valid `⊥`.
    pub fn probe(&mut self, world: &World, start: ObjectId, name: &CompoundName) -> bool {
        debug_assert!(
            self.mode.is_exact(),
            "NegativeCache::probe validates against authoritative state; \
             lease mode must use probe_leased"
        );
        let invalidations0 = self.memo.stats().invalidations;
        let hit = matches!(
            self.memo.probe(world.state(), start, name.components()),
            Some(Entity::Undefined)
        );
        self.stats.invalidated += self.memo.stats().invalidations - invalidations0;
        if hit {
            self.stats.hits += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.hits").bump();
        } else {
            self.stats.misses += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.misses").bump();
        }
        hit
    }

    /// Records a `⊥` verdict the *authoritative state* agrees with.
    ///
    /// The network can answer `⊥` for reasons that are not naming state
    /// at all — every message lost, an unplaced zone — and caching those
    /// would keep denying a name that exists. So the verdict is only
    /// recorded when the oracle walk also fails, and its generation
    /// footprint (from
    /// [`Resolver::resolve_entity_with_deps`]) is non-empty. Returns
    /// whether an entry was recorded.
    pub fn record(&mut self, world: &World, start: ObjectId, name: &CompoundName) -> bool {
        debug_assert!(
            self.mode.is_exact(),
            "NegativeCache::record consults the oracle; lease mode must use record_verdict_leased"
        );
        let (oracle, deps) = Resolver::new().resolve_entity_with_deps(world.state(), start, name);
        if oracle.is_defined() || deps.is_empty() {
            return false;
        }
        self.memo.record(
            world.state(),
            start,
            name.components(),
            Entity::Undefined,
            &deps,
        );
        self.stats.recorded += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("negcache.recorded").bump();
        true
    }

    /// Like [`NegativeCache::record`], but carries the protocol's own
    /// classification of the ⊥: `unreachable` means the verdict came from
    /// transport failure (lost messages, exhausted deadlines, unplaced
    /// authorities), which must never become a negative entry — the
    /// binding may exist. Callers are expected to filter those out before
    /// getting here; the debug assertion keeps the invariant loud if a
    /// future call site forgets, and release builds still refuse to
    /// record.
    pub fn record_protocol_verdict(
        &mut self,
        world: &World,
        start: ObjectId,
        name: &CompoundName,
        unreachable: bool,
    ) -> bool {
        // Mode-gated assertion: under Exact coherence the caller had an
        // oracle to consult, so an Unreachable verdict reaching this
        // point is a caller bug. Under leases the authority may
        // legitimately be unreachable when the verdict is recorded — the
        // invariant that transport ⊥ is never cached still holds (the
        // early return below), it just isn't a programming error.
        debug_assert!(
            self.mode.is_lease() || !unreachable,
            "an Unreachable verdict for {name} must not reach the exact negative cache"
        );
        if unreachable {
            return false;
        }
        match self.mode {
            CoherenceMode::Exact => self.record(world, start, name),
            // Lease verdicts carry serial stamps the `World` cannot
            // provide; they are recorded through record_verdict_leased.
            CoherenceMode::Lease { .. } => false,
        }
    }

    /// Lease-mode `⊥` probe: true when a cached verdict's lease holds at
    /// `now` and its zone stamps match the serials heard in `table`. A
    /// false-⊥ window is possible by design — a bind the replica hasn't
    /// heard about yet — and bounded by the TTL; the bench measures it.
    pub fn probe_leased(
        &mut self,
        now: u64,
        table: &SerialTable,
        start: ObjectId,
        name: &CompoundName,
    ) -> bool {
        debug_assert!(
            self.mode.is_lease(),
            "probe_leased validates leases; exact mode must use probe"
        );
        let probed = self.leased.probe(now, table, start, name.components());
        if matches!(probed, LeaseProbe::Expired | LeaseProbe::Stale) {
            self.stats.invalidated += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.invalidated").bump();
        }
        let hit = matches!(probed, LeaseProbe::Hit(Entity::Undefined));
        if hit {
            self.stats.hits += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.hits").bump();
        } else {
            self.stats.misses += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.misses").bump();
        }
        hit
    }

    /// Lease-mode verdict recording: stores a `⊥` under a lease stamped
    /// with the serials (from `table`) of `zones`, the shards the failed
    /// walk traversed — no oracle agreement required or possible. An
    /// `unreachable` (transport) verdict is still refused in both modes:
    /// it says nothing about the binding. Returns whether an entry was
    /// recorded.
    pub fn record_verdict_leased(
        &mut self,
        now: u64,
        table: &SerialTable,
        start: ObjectId,
        name: &CompoundName,
        zones: impl IntoIterator<Item = usize>,
        unreachable: bool,
    ) -> bool {
        debug_assert!(
            self.mode.is_lease(),
            "record_verdict_leased grants leases; exact mode must use record_protocol_verdict"
        );
        if unreachable {
            return false;
        }
        let before = self.leased.stats().recorded;
        self.leased.record(
            now,
            self.mode.lease_ttl(),
            start,
            name.components(),
            Entity::Undefined,
            zones,
            table,
        );
        let recorded = self.leased.stats().recorded > before;
        if recorded {
            self.stats.recorded += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.recorded").bump();
        }
        recorded
    }

    /// Drops every leased verdict depending on `shard` with a stamp
    /// other than `serial` (anti-entropy observed movement). Returns how
    /// many.
    pub fn observe_zone(&mut self, shard: usize, serial: naming_core::lease::ZoneSerial) -> usize {
        let n = self.leased.invalidate_zone(shard, serial);
        self.stats.invalidated += n as u64;
        n
    }

    /// Drops every leased verdict whose lease lapsed at `now`; returns
    /// how many.
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let n = self.leased.sweep_expired(now);
        self.stats.invalidated += n as u64;
        n
    }

    /// Drops every entry (exact and leased alike).
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
        self.leased.clear();
    }

    /// Drops exactly the stale entries; returns how many.
    pub fn heal(&mut self, world: &World) -> usize {
        debug_assert!(
            self.mode.is_exact(),
            "NegativeCache::heal compares authoritative generations; \
             lease mode heals via observe_zone / sweep_expired"
        );
        let n = self.memo.invalidate_stale(world.state());
        self.stats.invalidated += n as u64;
        n
    }
}

impl Default for NegativeCache {
    fn default() -> NegativeCache {
        NegativeCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_core::name::Name;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    /// m1 hosts the root tree, m2 hosts /usr/remote.
    fn setup() -> (World, NameService, MachineId, MachineId, ObjectId, ObjectId) {
        let mut w = World::new(91);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let usr = store::ensure_dir(w.state_mut(), root, "usr");
        let root2 = w.machine_root(m2);
        let rem = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), rem, "data", vec![]);
        store::attach(w.state_mut(), usr, "remote", rem, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root, m1);
        (w, svc, m1, m2, root, rem)
    }

    #[test]
    fn referral_round_trips_and_jumps_deepest() {
        let (w, svc, _m1, m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        let full = CompoundName::parse_path("/usr/remote/data").unwrap();
        let prefix = CompoundName::parse_path("/usr/remote").unwrap();
        cache.record(&w, root, &prefix, rem);
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((3, rem, m2)));
        assert_eq!(cache.stats().hits, 1);
        // A name that IS the prefix has no proper-prefix referral to use.
        assert_eq!(
            cache.lookup_deepest(&w, &svc, root, prefix.components()),
            None
        );
    }

    #[test]
    fn wrong_generation_referral_falls_back_toward_root() {
        let (mut w, svc, _m1, m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        let full = CompoundName::parse_path("/usr/remote/data").unwrap();
        cache.record(
            &w,
            root,
            &CompoundName::parse_path("/usr/remote").unwrap(),
            rem,
        );
        cache.record(&w, root, &CompoundName::parse_path("/usr").unwrap(), {
            let usr = match store::resolve_path(w.state(), root, "/usr") {
                Entity::Object(o) => o,
                other => panic!("usr missing: {other}"),
            };
            usr
        });
        // Rebind "remote" inside /usr: the deep referral's footprint
        // includes usr's generation, so it must die; the shallow "/usr"
        // referral only depends on the root and survives.
        let usr = match store::resolve_path(w.state(), root, "/usr") {
            Entity::Object(o) => o,
            other => panic!("usr missing: {other}"),
        };
        let elsewhere = w.state_mut().add_context_object("elsewhere");
        w.state_mut()
            .bind(usr, Name::new("remote"), elsewhere)
            .unwrap();
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((2, usr, _m1)), "fell back to the /usr prefix");
        assert!(cache.stats().invalidated >= 1);
        let _ = m2;
    }

    #[test]
    fn unjustified_referrals_are_not_recorded() {
        let (w, _svc, _m1, _m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        // /usr does not resolve to `rem`; the record must be refused.
        cache.record(&w, root, &CompoundName::parse_path("/usr").unwrap(), rem);
        assert!(cache.is_empty());
        // A prefix that doesn't resolve at all is refused too.
        cache.record(&w, root, &CompoundName::parse_path("/nope").unwrap(), rem);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().recorded, 0);
    }

    #[test]
    fn replica_referral_is_justified() {
        let (mut w, mut svc, m1, _m2, root, rem) = setup();
        let copy = svc.replicate_zone(&mut w, rem, m1);
        let mut cache = ReferralCache::new();
        let prefix = CompoundName::parse_path("/usr/remote").unwrap();
        // The protocol may refer to the replica copy; the oracle resolves
        // the primary — the replica registry justifies the entry.
        cache.record(&w, root, &prefix, copy);
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup_deepest(
            &w,
            &svc,
            root,
            CompoundName::parse_path("/usr/remote/data")
                .unwrap()
                .components(),
        );
        assert_eq!(hit, Some((3, copy, m1)));
    }

    #[test]
    fn negative_cache_serves_then_invalidates_on_bind() {
        let (mut w, _svc, _m1, _m2, root, rem) = setup();
        let mut neg = NegativeCache::new();
        let name = CompoundName::parse_path("/usr/remote/nope").unwrap();
        assert!(!neg.probe(&w, root, &name), "cold cache misses");
        assert!(neg.record(&w, root, &name));
        assert!(neg.probe(&w, root, &name), "⊥ now served from cache");
        assert_eq!(neg.stats().hits, 1);
        // Binding the name bumps `rem`'s generation: the verdict dies.
        let f = w.state_mut().add_data_object("nope", vec![]);
        w.state_mut().bind(rem, Name::new("nope"), f).unwrap();
        assert!(!neg.probe(&w, root, &name), "stale ⊥ is never served");
        assert!(neg.stats().invalidated >= 1);
    }

    #[test]
    fn shard_a_write_never_invalidates_shard_b_cache_entries() {
        // Two machines, each zone confined to its own shard of σ. Churn
        // in zone B's shard must neither bump zone A's shard generation
        // nor invalidate referral / negative entries whose footprints
        // live in zone A.
        let mut w = World::with_shards(91, 2);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let root = w.machine_root(m1);
        let usr = store::ensure_dir(w.state_mut(), root, "usr");
        let sub = store::ensure_dir(w.state_mut(), usr, "sub");
        store::create_file(w.state_mut(), sub, "data", vec![]);

        w.state_mut().set_default_shard(1);
        let m2 = w.add_machine("m2", net);
        let root2 = w.machine_root(m2);
        let exp = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), exp, "data", vec![]);

        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root, m1);

        // Zone-A entries: a referral for /usr/sub and a ⊥ for /usr/nope.
        // Both footprints consult only shard-0 contexts.
        let mut cache = ReferralCache::new();
        let mut neg = NegativeCache::new();
        let prefix = CompoundName::parse_path("/usr/sub").unwrap();
        cache.record(&w, root, &prefix, sub);
        assert_eq!(cache.len(), 1);
        let miss = CompoundName::parse_path("/usr/nope").unwrap();
        assert!(neg.record(&w, root, &miss));

        // Churn entirely inside shard 1 (zone B).
        let va = w.state().shard_version(0);
        for i in 0..8 {
            let f = w.state_mut().add_data_object_in(1, format!("b{i}"), vec![]);
            w.state_mut()
                .bind(exp, Name::new(&format!("b{i}")), f)
                .unwrap();
        }
        assert_eq!(
            w.state().shard_version(0),
            va,
            "shard-B writes must not bump shard A's generation"
        );

        // Both zone-A entries still serve, with zero invalidations.
        let full = CompoundName::parse_path("/usr/sub/data").unwrap();
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((3, sub, m1)));
        assert_eq!(cache.stats().invalidated, 0);
        assert!(neg.probe(&w, root, &miss));
        assert_eq!(neg.stats().invalidated, 0);

        // Control: a shard-A write still kills the affected entries.
        let f = w.state_mut().add_data_object_in(0, "nope", vec![]);
        w.state_mut().bind(usr, Name::new("nope"), f).unwrap();
        assert!(!neg.probe(&w, root, &miss));
        assert!(neg.stats().invalidated >= 1);
    }

    #[test]
    fn negative_cache_survives_renumber_but_dies_on_rename() {
        let (mut w, _svc, m1, _m2, root, rem) = setup();
        let mut neg = NegativeCache::new();
        let name = CompoundName::parse_path("/usr/remote/nope").unwrap();
        assert!(neg.record(&w, root, &name));

        // Renumbering a machine churns topology addresses only — σ is
        // untouched, so the verdict's generation footprint still matches
        // and the cached ⊥ keeps being served (and is still correct).
        w.renumber_machine(m1);
        assert!(neg.probe(&w, root, &name), "renumber must not kill ⊥");
        assert_eq!(neg.stats().invalidated, 0);

        // Renaming the intermediate context bumps `usr`'s generation.
        // The footprint recorded at ⊥-time consulted usr, so the verdict
        // dies even though the terminal context `rem` never changed.
        let usr = match store::resolve_path(w.state(), root, "/usr") {
            Entity::Object(o) => o,
            other => panic!("usr missing: {other}"),
        };
        w.state_mut().unbind(usr, Name::new("remote")).unwrap();
        w.state_mut().bind(usr, Name::new("remote2"), rem).unwrap();
        assert!(!neg.probe(&w, root, &name), "rename must kill cached ⊥");
        assert!(neg.stats().invalidated >= 1);

        // Rename back and re-record, then churn the name away and back
        // *without* probing in between. The bindings end up identical to
        // recording time, but usr's generation moved twice — a verdict
        // is tied to generations, not to binding contents, so the entry
        // (still present, never dropped on sight) must not be served.
        w.state_mut().unbind(usr, Name::new("remote2")).unwrap();
        w.state_mut().bind(usr, Name::new("remote"), rem).unwrap();
        assert!(neg.record(&w, root, &name), "fresh verdict re-records");
        let len_before = neg.len();
        w.state_mut().unbind(usr, Name::new("remote")).unwrap();
        w.state_mut().bind(usr, Name::new("remote2"), rem).unwrap();
        w.state_mut().unbind(usr, Name::new("remote2")).unwrap();
        w.state_mut().bind(usr, Name::new("remote"), rem).unwrap();
        assert_eq!(neg.len(), len_before, "entry untouched until probed");
        assert!(
            !neg.probe(&w, root, &name),
            "pre-churn ⊥ must not be served after rename round-trip"
        );
        assert!(neg.stats().invalidated >= 2);
    }

    #[test]
    fn invalidation_stats_count_each_dropped_entry_exactly_once() {
        // Satellite regression: `stats.invalidated` used to mix a
        // memo-delta with direct bumps, so an entry dropped on the
        // unplaced-machine path risked double counting. Pin the exact
        // correspondence: entries dropped == invalidated counter, across
        // both drop paths in one walk.
        let (mut w, svc, _m1, _m2, root, _rem) = setup();
        let usr = match store::resolve_path(w.state(), root, "/usr") {
            Entity::Object(o) => o,
            other => panic!("usr missing: {other}"),
        };
        // A context bound into the tree AFTER placement ran: resolvable
        // (so `record` accepts the referral) but served by no machine.
        let orphan = store::ensure_dir(w.state_mut(), usr, "orph");
        assert_eq!(svc.machine_of_object(orphan), None);

        let mut cache = ReferralCache::new();
        let full = CompoundName::parse_path("/usr/orph/data").unwrap();
        cache.record(
            &w,
            root,
            &CompoundName::parse_path("/usr/orph").unwrap(),
            orphan,
        );
        cache.record(&w, root, &CompoundName::parse_path("/usr").unwrap(), usr);
        assert_eq!(cache.len(), 2);

        // Path 1: the deep referral probes valid but nobody serves its
        // context — the walk removes it and falls back to /usr.
        let before = cache.stats().invalidated;
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit.map(|(len, _, _)| len), Some(2), "fell back to /usr");
        let dropped = 2 - cache.len() as u64;
        assert_eq!(
            cache.stats().invalidated - before,
            dropped,
            "each dropped entry counts exactly once (unplaced-machine path)"
        );
        assert_eq!(dropped, 1);

        // Path 2: generation churn — re-record the deep entry, then move
        // "orph" inside /usr so the probe itself drops it.
        cache.record(
            &w,
            root,
            &CompoundName::parse_path("/usr/orph").unwrap(),
            orphan,
        );
        assert_eq!(cache.len(), 2);
        let elsewhere = w.state_mut().add_context_object("elsewhere");
        w.state_mut()
            .bind(usr, Name::new("orph"), elsewhere)
            .unwrap();
        let before = cache.stats().invalidated;
        let len_before = cache.len();
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit.map(|(len, _, _)| len), Some(2), "fell back to /usr");
        assert_eq!(
            cache.stats().invalidated - before,
            (len_before - cache.len()) as u64,
            "each dropped entry counts exactly once (generation path)"
        );
        // Sanity: every lookup is exactly one hit or one miss.
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2);
    }

    #[test]
    fn leased_referral_round_trip_without_any_state_access() {
        use crate::coherence::{CoherenceMode, SerialTable};
        let (_w, svc, _m1, m2, root, rem) = setup();
        let mut cache = ReferralCache::with_mode(16, CoherenceMode::Lease { ttl: Some(50) });
        let mut table = SerialTable::new();
        let full = CompoundName::parse_path("/usr/remote/data").unwrap();
        let prefix = CompoundName::parse_path("/usr/remote").unwrap();
        let shard = naming_core::state::SystemState::shard_of_id(root);
        cache.record_leased(10, &table, root, &prefix, rem, [shard]);
        // Valid while the lease holds and serials stand still.
        let hit = cache.lookup_deepest_leased(40, &table, &svc, root, full.components());
        assert_eq!(
            hit.as_ref().map(|&(len, ctx, m, _)| (len, ctx, m)),
            Some((3, rem, m2))
        );
        assert_eq!(hit.unwrap().3, vec![shard], "zone deps surface on a hit");
        // Expiry exactly at the boundary tick: gone.
        assert_eq!(
            cache.lookup_deepest_leased(60, &table, &svc, root, full.components()),
            None
        );
        assert_eq!(cache.stats().invalidated, 1);
        // Re-record; a heard serial advance kills it before expiry.
        cache.record_leased(100, &table, root, &prefix, rem, [shard]);
        table.observe(shard, naming_core::lease::ZoneSerial::new(1));
        assert_eq!(
            cache.lookup_deepest_leased(101, &table, &svc, root, full.components()),
            None
        );
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn leased_negative_verdicts_respect_ttl_and_refuse_unreachable() {
        use crate::coherence::{CoherenceMode, SerialTable};
        let (w, _svc, _m1, _m2, root, _rem) = setup();
        let mode = CoherenceMode::Lease { ttl: Some(30) };
        let mut neg = NegativeCache::with_mode(16, mode);
        let mut table = SerialTable::new();
        let name = CompoundName::parse_path("/usr/remote/nope").unwrap();
        let shard = naming_core::state::SystemState::shard_of_id(root);
        // The satellite fix: an unreachable verdict in lease mode is
        // refused but NOT a debug_assert violation (the authority may
        // legitimately be unreachable under leases).
        assert!(!neg.record_protocol_verdict(&w, root, &name, true));
        assert!(!neg.record_verdict_leased(5, &table, root, &name, [shard], true));
        assert!(neg.is_empty());
        // A genuine ⊥ verdict is recorded and served within its lease.
        assert!(neg.record_verdict_leased(5, &table, root, &name, [shard], false));
        assert!(neg.probe_leased(34, &table, root, &name));
        assert!(!neg.probe_leased(35, &table, root, &name), "lease lapsed");
        // Serial movement also kills a live verdict.
        assert!(neg.record_verdict_leased(40, &table, root, &name, [shard], false));
        table.observe(shard, naming_core::lease::ZoneSerial::new(3));
        assert!(!neg.probe_leased(41, &table, root, &name));
        assert!(neg.stats().invalidated >= 2);
    }

    #[test]
    fn negative_cache_refuses_protocol_only_failures() {
        let (w, _svc, _m1, _m2, root, _rem) = setup();
        let mut neg = NegativeCache::new();
        // The oracle CAN resolve this — a network-layer ⊥ (lost messages)
        // must not be cached.
        let name = CompoundName::parse_path("/usr/remote/data").unwrap();
        assert!(!neg.record(&w, root, &name));
        assert!(neg.is_empty());
    }
}
