//! Referral and negative caches: routing knowledge and `⊥` verdicts a
//! client may keep — *with* generation validation, so neither ever
//! returns a stale answer.
//!
//! DNS resolvers cache referrals (NS records) so repeat lookups skip the
//! root; SDSI's linked local namespaces make the same observation about
//! name-by-name delegation. The paper's §5 warning applies to both: a
//! cached referral is a claim about the bindings along a prefix, and the
//! contexts are free to falsify it. These caches therefore record the
//! full generation footprint of the prefix (PR-1 counters) and validate
//! it on every probe: a wrong-generation entry is dropped on sight and
//! the client falls back toward the root. That makes them *coherent*
//! caches — unlike [`CachingResolver`](crate::cache::CachingResolver)'s
//! deliberately incoherent positive cache, whose staleness is the point.
//!
//! Both caches are thin policies over naming-core's
//! [`ResolutionMemo`], which already owns the hard parts: borrowed-key
//! probes, O(1) LRU bounding, and epoch/generation validation.

use naming_core::entity::{Entity, ObjectId};
use naming_core::memo::ResolutionMemo;
use naming_core::name::{CompoundName, Name};
use naming_core::resolve::Resolver;
use naming_sim::topology::MachineId;
use naming_sim::world::World;

use crate::service::NameService;

/// Default bound on cached referrals / negative entries.
pub const DEFAULT_REFERRAL_CAPACITY: usize = 1 << 10;

/// Counters for a validated cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidatedCacheStats {
    /// Probes answered by a still-valid entry.
    pub hits: u64,
    /// Probes that found nothing valid.
    pub misses: u64,
    /// Entries dropped because their generation footprint no longer
    /// matched the authoritative state.
    pub invalidated: u64,
    /// Entries recorded.
    pub recorded: u64,
}

/// Maps resolved zone prefixes to the context object (and server) that
/// became authoritative there, so a repeat lookup skips straight to the
/// deepest known server instead of walking from the root.
///
/// Every entry carries the `(context, generation)` footprint of its
/// prefix; [`ReferralCache::lookup_deepest`] re-validates on each probe
/// and falls back to the next-shallower prefix (ultimately the root)
/// when a generation moved. A jump is therefore always equivalent to
/// resolving the prefix afresh — referral caching changes message
/// counts, never answers.
#[derive(Debug)]
pub struct ReferralCache {
    memo: ResolutionMemo,
    stats: ValidatedCacheStats,
}

impl ReferralCache {
    /// An empty cache with the default bound.
    pub fn new() -> ReferralCache {
        ReferralCache::with_capacity(DEFAULT_REFERRAL_CAPACITY)
    }

    /// An empty cache holding at most `capacity` referrals (LRU-bounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> ReferralCache {
        ReferralCache {
            memo: ResolutionMemo::with_capacity(capacity),
            stats: ValidatedCacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ValidatedCacheStats {
        self.stats
    }

    /// Number of cached referrals.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Records that resolving `prefix` from `start` handed authority to
    /// the context object `ctx`.
    ///
    /// The entry's validity footprint is the generation of every context
    /// the prefix traverses *now*; if the oracle walk disagrees with the
    /// protocol's referral (a lagging replica answered, or the binding
    /// changed while the referral was in flight), nothing is recorded —
    /// a cache that can't justify an entry must not keep it.
    pub fn record(&mut self, world: &World, start: ObjectId, prefix: &CompoundName, ctx: ObjectId) {
        let (oracle, deps) = Resolver::new().resolve_entity_with_deps(world.state(), start, prefix);
        let justified = match oracle {
            Entity::Object(o) => o == ctx || world.replicas().are_replicas(o, ctx),
            _ => false,
        };
        if !justified || deps.is_empty() {
            return;
        }
        self.memo.record(
            world.state(),
            start,
            prefix.components(),
            Entity::Object(ctx),
            &deps,
        );
        self.stats.recorded += 1;
    }

    /// Finds the deepest cached, still-valid referral for a proper prefix
    /// of `comps` from `start`. Returns `(prefix length, context,
    /// machine)`; generation-invalid entries encountered on the way are
    /// dropped (counted in
    /// [`invalidated`](ValidatedCacheStats::invalidated)) and the search
    /// falls back toward the root.
    pub fn lookup_deepest(
        &mut self,
        world: &World,
        service: &NameService,
        start: ObjectId,
        comps: &[Name],
    ) -> Option<(usize, ObjectId, MachineId)> {
        for len in (1..comps.len()).rev() {
            let invalidations0 = self.memo.stats().invalidations;
            let probed = self.memo.probe(world.state(), start, &comps[..len]);
            self.stats.invalidated += self.memo.stats().invalidations - invalidations0;
            let Some(Entity::Object(ctx)) = probed else {
                continue;
            };
            // A referral is only useful if somebody still serves the
            // context; placement is consulted live, never cached.
            match service.machine_of_object(ctx) {
                Some(m) => {
                    self.stats.hits += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("referral.hits").bump();
                    return Some((len, ctx, m));
                }
                None => {
                    self.memo.remove(start, &comps[..len]);
                    self.stats.invalidated += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("referral.invalidated").bump();
                }
            }
        }
        self.stats.misses += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.misses").bump();
        None
    }

    /// Drops every entry.
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
    }

    /// Drops exactly the entries whose generation footprint is stale.
    /// Returns how many were dropped. (Probes do this lazily anyway;
    /// sweeping just reclaims the space eagerly.)
    pub fn heal(&mut self, world: &World) -> usize {
        let n = self.memo.invalidate_stale(world.state());
        self.stats.invalidated += n as u64;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("referral.invalidated").add(n as u64);
        n
    }
}

impl Default for ReferralCache {
    fn default() -> ReferralCache {
        ReferralCache::new()
    }
}

/// Caches `⊥` outcomes — "this name denotes nothing" — with the
/// generation footprint of the failed walk, so repeated misses stop
/// hitting the network while a `bind` anywhere along the consulted path
/// invalidates the verdict exactly.
///
/// Unlike the positive cache, negative entries are *always* validated
/// before being served: serving a stale "does not exist" would invent
/// incoherence the authoritative system never exhibited.
#[derive(Debug)]
pub struct NegativeCache {
    memo: ResolutionMemo,
    stats: ValidatedCacheStats,
}

impl NegativeCache {
    /// An empty cache with the default bound.
    pub fn new() -> NegativeCache {
        NegativeCache::with_capacity(DEFAULT_REFERRAL_CAPACITY)
    }

    /// An empty cache holding at most `capacity` verdicts (LRU-bounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> NegativeCache {
        NegativeCache {
            memo: ResolutionMemo::with_capacity(capacity),
            stats: ValidatedCacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ValidatedCacheStats {
        self.stats
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// True when `name` from `start` is a cached, still-valid `⊥`.
    pub fn probe(&mut self, world: &World, start: ObjectId, name: &CompoundName) -> bool {
        let invalidations0 = self.memo.stats().invalidations;
        let hit = matches!(
            self.memo.probe(world.state(), start, name.components()),
            Some(Entity::Undefined)
        );
        self.stats.invalidated += self.memo.stats().invalidations - invalidations0;
        if hit {
            self.stats.hits += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.hits").bump();
        } else {
            self.stats.misses += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("negcache.misses").bump();
        }
        hit
    }

    /// Records a `⊥` verdict the *authoritative state* agrees with.
    ///
    /// The network can answer `⊥` for reasons that are not naming state
    /// at all — every message lost, an unplaced zone — and caching those
    /// would keep denying a name that exists. So the verdict is only
    /// recorded when the oracle walk also fails, and its generation
    /// footprint (from
    /// [`Resolver::resolve_entity_with_deps`]) is non-empty. Returns
    /// whether an entry was recorded.
    pub fn record(&mut self, world: &World, start: ObjectId, name: &CompoundName) -> bool {
        let (oracle, deps) = Resolver::new().resolve_entity_with_deps(world.state(), start, name);
        if oracle.is_defined() || deps.is_empty() {
            return false;
        }
        self.memo.record(
            world.state(),
            start,
            name.components(),
            Entity::Undefined,
            &deps,
        );
        self.stats.recorded += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("negcache.recorded").bump();
        true
    }

    /// Like [`NegativeCache::record`], but carries the protocol's own
    /// classification of the ⊥: `unreachable` means the verdict came from
    /// transport failure (lost messages, exhausted deadlines, unplaced
    /// authorities), which must never become a negative entry — the
    /// binding may exist. Callers are expected to filter those out before
    /// getting here; the debug assertion keeps the invariant loud if a
    /// future call site forgets, and release builds still refuse to
    /// record.
    pub fn record_protocol_verdict(
        &mut self,
        world: &World,
        start: ObjectId,
        name: &CompoundName,
        unreachable: bool,
    ) -> bool {
        debug_assert!(
            !unreachable,
            "an Unreachable verdict for {name} must not reach the negative cache"
        );
        if unreachable {
            return false;
        }
        self.record(world, start, name)
    }

    /// Drops every entry.
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
    }

    /// Drops exactly the stale entries; returns how many.
    pub fn heal(&mut self, world: &World) -> usize {
        let n = self.memo.invalidate_stale(world.state());
        self.stats.invalidated += n as u64;
        n
    }
}

impl Default for NegativeCache {
    fn default() -> NegativeCache {
        NegativeCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_core::name::Name;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    /// m1 hosts the root tree, m2 hosts /usr/remote.
    fn setup() -> (World, NameService, MachineId, MachineId, ObjectId, ObjectId) {
        let mut w = World::new(91);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let usr = store::ensure_dir(w.state_mut(), root, "usr");
        let root2 = w.machine_root(m2);
        let rem = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), rem, "data", vec![]);
        store::attach(w.state_mut(), usr, "remote", rem, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root, m1);
        (w, svc, m1, m2, root, rem)
    }

    #[test]
    fn referral_round_trips_and_jumps_deepest() {
        let (w, svc, _m1, m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        let full = CompoundName::parse_path("/usr/remote/data").unwrap();
        let prefix = CompoundName::parse_path("/usr/remote").unwrap();
        cache.record(&w, root, &prefix, rem);
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((3, rem, m2)));
        assert_eq!(cache.stats().hits, 1);
        // A name that IS the prefix has no proper-prefix referral to use.
        assert_eq!(
            cache.lookup_deepest(&w, &svc, root, prefix.components()),
            None
        );
    }

    #[test]
    fn wrong_generation_referral_falls_back_toward_root() {
        let (mut w, svc, _m1, m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        let full = CompoundName::parse_path("/usr/remote/data").unwrap();
        cache.record(
            &w,
            root,
            &CompoundName::parse_path("/usr/remote").unwrap(),
            rem,
        );
        cache.record(&w, root, &CompoundName::parse_path("/usr").unwrap(), {
            let usr = match store::resolve_path(w.state(), root, "/usr") {
                Entity::Object(o) => o,
                other => panic!("usr missing: {other}"),
            };
            usr
        });
        // Rebind "remote" inside /usr: the deep referral's footprint
        // includes usr's generation, so it must die; the shallow "/usr"
        // referral only depends on the root and survives.
        let usr = match store::resolve_path(w.state(), root, "/usr") {
            Entity::Object(o) => o,
            other => panic!("usr missing: {other}"),
        };
        let elsewhere = w.state_mut().add_context_object("elsewhere");
        w.state_mut()
            .bind(usr, Name::new("remote"), elsewhere)
            .unwrap();
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((2, usr, _m1)), "fell back to the /usr prefix");
        assert!(cache.stats().invalidated >= 1);
        let _ = m2;
    }

    #[test]
    fn unjustified_referrals_are_not_recorded() {
        let (w, _svc, _m1, _m2, root, rem) = setup();
        let mut cache = ReferralCache::new();
        // /usr does not resolve to `rem`; the record must be refused.
        cache.record(&w, root, &CompoundName::parse_path("/usr").unwrap(), rem);
        assert!(cache.is_empty());
        // A prefix that doesn't resolve at all is refused too.
        cache.record(&w, root, &CompoundName::parse_path("/nope").unwrap(), rem);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().recorded, 0);
    }

    #[test]
    fn replica_referral_is_justified() {
        let (mut w, mut svc, m1, _m2, root, rem) = setup();
        let copy = svc.replicate_zone(&mut w, rem, m1);
        let mut cache = ReferralCache::new();
        let prefix = CompoundName::parse_path("/usr/remote").unwrap();
        // The protocol may refer to the replica copy; the oracle resolves
        // the primary — the replica registry justifies the entry.
        cache.record(&w, root, &prefix, copy);
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup_deepest(
            &w,
            &svc,
            root,
            CompoundName::parse_path("/usr/remote/data")
                .unwrap()
                .components(),
        );
        assert_eq!(hit, Some((3, copy, m1)));
    }

    #[test]
    fn negative_cache_serves_then_invalidates_on_bind() {
        let (mut w, _svc, _m1, _m2, root, rem) = setup();
        let mut neg = NegativeCache::new();
        let name = CompoundName::parse_path("/usr/remote/nope").unwrap();
        assert!(!neg.probe(&w, root, &name), "cold cache misses");
        assert!(neg.record(&w, root, &name));
        assert!(neg.probe(&w, root, &name), "⊥ now served from cache");
        assert_eq!(neg.stats().hits, 1);
        // Binding the name bumps `rem`'s generation: the verdict dies.
        let f = w.state_mut().add_data_object("nope", vec![]);
        w.state_mut().bind(rem, Name::new("nope"), f).unwrap();
        assert!(!neg.probe(&w, root, &name), "stale ⊥ is never served");
        assert!(neg.stats().invalidated >= 1);
    }

    #[test]
    fn shard_a_write_never_invalidates_shard_b_cache_entries() {
        // Two machines, each zone confined to its own shard of σ. Churn
        // in zone B's shard must neither bump zone A's shard generation
        // nor invalidate referral / negative entries whose footprints
        // live in zone A.
        let mut w = World::with_shards(91, 2);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let root = w.machine_root(m1);
        let usr = store::ensure_dir(w.state_mut(), root, "usr");
        let sub = store::ensure_dir(w.state_mut(), usr, "sub");
        store::create_file(w.state_mut(), sub, "data", vec![]);

        w.state_mut().set_default_shard(1);
        let m2 = w.add_machine("m2", net);
        let root2 = w.machine_root(m2);
        let exp = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), exp, "data", vec![]);

        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root, m1);

        // Zone-A entries: a referral for /usr/sub and a ⊥ for /usr/nope.
        // Both footprints consult only shard-0 contexts.
        let mut cache = ReferralCache::new();
        let mut neg = NegativeCache::new();
        let prefix = CompoundName::parse_path("/usr/sub").unwrap();
        cache.record(&w, root, &prefix, sub);
        assert_eq!(cache.len(), 1);
        let miss = CompoundName::parse_path("/usr/nope").unwrap();
        assert!(neg.record(&w, root, &miss));

        // Churn entirely inside shard 1 (zone B).
        let va = w.state().shard_version(0);
        for i in 0..8 {
            let f = w.state_mut().add_data_object_in(1, format!("b{i}"), vec![]);
            w.state_mut()
                .bind(exp, Name::new(&format!("b{i}")), f)
                .unwrap();
        }
        assert_eq!(
            w.state().shard_version(0),
            va,
            "shard-B writes must not bump shard A's generation"
        );

        // Both zone-A entries still serve, with zero invalidations.
        let full = CompoundName::parse_path("/usr/sub/data").unwrap();
        let hit = cache.lookup_deepest(&w, &svc, root, full.components());
        assert_eq!(hit, Some((3, sub, m1)));
        assert_eq!(cache.stats().invalidated, 0);
        assert!(neg.probe(&w, root, &miss));
        assert_eq!(neg.stats().invalidated, 0);

        // Control: a shard-A write still kills the affected entries.
        let f = w.state_mut().add_data_object_in(0, "nope", vec![]);
        w.state_mut().bind(usr, Name::new("nope"), f).unwrap();
        assert!(!neg.probe(&w, root, &miss));
        assert!(neg.stats().invalidated >= 1);
    }

    #[test]
    fn negative_cache_survives_renumber_but_dies_on_rename() {
        let (mut w, _svc, m1, _m2, root, rem) = setup();
        let mut neg = NegativeCache::new();
        let name = CompoundName::parse_path("/usr/remote/nope").unwrap();
        assert!(neg.record(&w, root, &name));

        // Renumbering a machine churns topology addresses only — σ is
        // untouched, so the verdict's generation footprint still matches
        // and the cached ⊥ keeps being served (and is still correct).
        w.renumber_machine(m1);
        assert!(neg.probe(&w, root, &name), "renumber must not kill ⊥");
        assert_eq!(neg.stats().invalidated, 0);

        // Renaming the intermediate context bumps `usr`'s generation.
        // The footprint recorded at ⊥-time consulted usr, so the verdict
        // dies even though the terminal context `rem` never changed.
        let usr = match store::resolve_path(w.state(), root, "/usr") {
            Entity::Object(o) => o,
            other => panic!("usr missing: {other}"),
        };
        w.state_mut().unbind(usr, Name::new("remote")).unwrap();
        w.state_mut().bind(usr, Name::new("remote2"), rem).unwrap();
        assert!(!neg.probe(&w, root, &name), "rename must kill cached ⊥");
        assert!(neg.stats().invalidated >= 1);

        // Rename back and re-record, then churn the name away and back
        // *without* probing in between. The bindings end up identical to
        // recording time, but usr's generation moved twice — a verdict
        // is tied to generations, not to binding contents, so the entry
        // (still present, never dropped on sight) must not be served.
        w.state_mut().unbind(usr, Name::new("remote2")).unwrap();
        w.state_mut().bind(usr, Name::new("remote"), rem).unwrap();
        assert!(neg.record(&w, root, &name), "fresh verdict re-records");
        let len_before = neg.len();
        w.state_mut().unbind(usr, Name::new("remote")).unwrap();
        w.state_mut().bind(usr, Name::new("remote2"), rem).unwrap();
        w.state_mut().unbind(usr, Name::new("remote2")).unwrap();
        w.state_mut().bind(usr, Name::new("remote"), rem).unwrap();
        assert_eq!(neg.len(), len_before, "entry untouched until probed");
        assert!(
            !neg.probe(&w, root, &name),
            "pre-churn ⊥ must not be served after rename round-trip"
        );
        assert!(neg.stats().invalidated >= 2);
    }

    #[test]
    fn negative_cache_refuses_protocol_only_failures() {
        let (w, _svc, _m1, _m2, root, _rem) = setup();
        let mut neg = NegativeCache::new();
        // The oracle CAN resolve this — a network-layer ⊥ (lost messages)
        // must not be cached.
        let name = CompoundName::parse_path("/usr/remote/data").unwrap();
        assert!(!neg.record(&w, root, &name));
        assert!(neg.is_empty());
    }
}
