//! Client-side resolution caching — and its *incoherence*.
//!
//! Caching resolutions is the classic optimization of distributed naming
//! (DNS, Grapevine, …), and it reintroduces exactly the paper's problem in
//! temporal form: a cached entry is a context binding frozen at lookup
//! time, so after the authoritative binding changes, the cache and the
//! authority give the *same name different meanings*. [`CachingResolver`]
//! measures that staleness instead of hiding it.
//!
//! The store behind the cache is naming-core's generation-versioned
//! [`ResolutionMemo`]: every entry carries the generations of the contexts
//! its resolution traversed, and the cache is bounded with LRU eviction.
//! Lookups deliberately serve entries *without* re-validating them — that
//! is what a distributed client cache does, and what makes its staleness
//! measurable — but the recorded generations make healing cheap:
//! [`CachingResolver::heal`] drops exactly the entries whose underlying
//! contexts have changed, by comparing version counters instead of
//! re-resolving every name.

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::memo::ResolutionMemo;
use naming_core::name::CompoundName;
use naming_core::report::json_string;
use naming_core::resolve::Resolver;
use naming_core::state::SystemState;
use naming_sim::world::World;

use crate::engine::{ProtocolEngine, ResolveStats};
use crate::wire::Mode;

/// Default bound on the number of cached resolutions.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 12;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the network.
    pub misses: u64,
    /// Cache entries explicitly invalidated (including generation-based
    /// healing).
    pub invalidations: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Renders the statistics — including the derived
    /// [`hit_rate`](CacheStats::hit_rate) — as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{{}: {}, {}: {}, {}: {}, {}: {}, {}: {:.6}}}",
            json_string("hits"),
            self.hits,
            json_string("misses"),
            self.misses,
            json_string("invalidations"),
            self.invalidations,
            json_string("evictions"),
            self.evictions,
            json_string("hit_rate"),
            self.hit_rate()
        )
    }
}

/// A resolution client with a bounded positive cache keyed on
/// `(start, name)`, backed by a generation-versioned [`ResolutionMemo`].
#[derive(Debug)]
pub struct CachingResolver {
    engine: ProtocolEngine,
    memo: ResolutionMemo,
}

impl CachingResolver {
    /// Wraps a protocol engine with the default cache bound.
    pub fn new(engine: ProtocolEngine) -> CachingResolver {
        CachingResolver::with_capacity(engine, DEFAULT_CACHE_CAPACITY)
    }

    /// Wraps a protocol engine with an explicit cache bound; inserts past
    /// the bound evict the least recently used entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(engine: ProtocolEngine, capacity: usize) -> CachingResolver {
        CachingResolver {
            engine,
            memo: ResolutionMemo::with_capacity(capacity),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// Mutable engine access (placement changes).
    pub fn engine_mut(&mut self) -> &mut ProtocolEngine {
        &mut self.engine
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        let m = self.memo.stats();
        CacheStats {
            hits: m.hits,
            misses: m.misses,
            invalidations: m.invalidations,
            evictions: m.evictions,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// The cache bound.
    pub fn capacity(&self) -> usize {
        self.memo.capacity()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Resolves through the cache: a hit answers instantly (zero virtual
    /// latency, zero messages); a miss goes to the network and populates
    /// the cache on success.
    ///
    /// Hits are served *without* validation — a client cache has no
    /// authoritative state to validate against, which is precisely the §5
    /// incoherence this type exists to measure. Use
    /// [`CachingResolver::heal`] to apply generation-based invalidation.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (Entity, bool) {
        if let Some(e) = self.memo.probe_stale(start, name.components()) {
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.hits").bump();
            return (e, true);
        }
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("cache.misses").bump();
        let stats: ResolveStats = self.engine.resolve(world, client, start, name, mode);
        if stats.entity.is_defined() {
            let deps = path_deps(world.state(), start, name);
            self.memo
                .record(world.state(), start, name.components(), stats.entity, &deps);
        }
        (stats.entity, false)
    }

    /// Drops one cache entry.
    pub fn invalidate(&mut self, start: ObjectId, name: &CompoundName) -> bool {
        self.memo.remove(start, name.components())
    }

    /// Drops the whole cache.
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
    }

    /// Generation-based healing: drops every entry whose recorded context
    /// generations no longer match the authoritative state, by comparing
    /// version counters — no re-resolution. Returns how many entries were
    /// dropped.
    pub fn heal(&mut self, world: &World) -> usize {
        self.memo.invalidate_stale(world.state())
    }

    /// Audits the cache against the authoritative naming state: returns
    /// the entries whose cached entity no longer matches what the
    /// authority would answer — the *incoherent* (stale) entries.
    pub fn stale_entries(&self, world: &World) -> Vec<(ObjectId, CompoundName, Entity)> {
        let mut out = Vec::new();
        let r = Resolver::new();
        for (start, suffix, cached) in self.memo.entries() {
            let name = CompoundName::new(suffix.to_vec()).expect("cached names are nonempty");
            let authoritative = r.resolve_entity(world.state(), start, &name);
            if authoritative != cached {
                out.push((start, name, cached));
            }
        }
        out
    }

    /// Staleness rate: stale entries / cached entries (0 when empty).
    pub fn staleness(&self, world: &World) -> f64 {
        if self.memo.is_empty() {
            return 0.0;
        }
        self.stale_entries(world).len() as f64 / self.memo.len() as f64
    }
}

/// The `(context, generation)` pairs an authoritative resolution of `name`
/// reads, recorded into cache entries so healing can be a pure version
/// comparison.
fn path_deps(state: &SystemState, start: ObjectId, name: &CompoundName) -> Vec<(ObjectId, u64)> {
    match Resolver::new().resolve(state, start, name) {
        Ok(res) => res
            .steps
            .iter()
            .filter_map(|s| state.context(s.context).map(|c| (s.context, c.version())))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::NameService;
    use naming_core::name::Name;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    fn setup() -> (World, CachingResolver, ActivityId, ObjectId) {
        let mut w = World::new(81);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let sub = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), sub, "data", vec![]);
        store::attach(w.state_mut(), root, "remote", sub, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, w.machine_root(m2), m2);
        svc.place_subtree(&w, root, m1);
        let client = w.spawn(m1, "client", None);
        let resolver = CachingResolver::new(ProtocolEngine::new(svc));
        (w, resolver, client, root)
    }

    fn mid(_m: MachineId) {}

    #[test]
    fn hits_after_first_miss() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, from_cache1) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(!from_cache1);
        let t_after_miss = w.now();
        let (e2, from_cache2) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(e1, e2);
        assert!(from_cache2);
        assert_eq!(w.now(), t_after_miss, "hits cost no virtual time");
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
        assert!((r.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn stats_hit_rate_and_json() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            invalidations: 2,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"hits\": 3, \"misses\": 1, \"invalidations\": 2, \
             \"evictions\": 0, \"hit_rate\": 0.750000}"
        );
    }

    #[test]
    fn failures_are_not_cached() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/nope").unwrap();
        let (e, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!e.is_defined());
        assert!(r.is_empty());
        // Second lookup goes to the network again.
        let (_, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
    }

    #[test]
    fn rebinding_makes_cache_stale_and_invalidations_heal() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (old, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(r.staleness(&w), 0.0);
        // The authority rebinds "data" to a new object.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        // The cached answer is now incoherent with the authority.
        assert_eq!(r.stale_entries(&w).len(), 1);
        assert!((r.staleness(&w) - 1.0).abs() < 1e-9);
        let (still_old, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(from_cache);
        assert_eq!(still_old, old, "stale cache keeps serving the old entity");
        // Invalidate → next lookup fetches the new binding.
        assert!(r.invalidate(root, &name));
        let (new, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(new, naming_core::entity::Entity::Object(fresh));
        assert_eq!(r.staleness(&w), 0.0);
        assert_eq!(r.stats().invalidations, 1);
    }

    #[test]
    fn heal_drops_exactly_the_generation_stale_entries() {
        let (mut w, mut r, client, root) = setup();
        let touched = CompoundName::parse_path("/remote/data").unwrap();
        let untouched = CompoundName::parse_path("/remote").unwrap();
        r.resolve(&mut w, client, root, &touched, Mode::Iterative);
        r.resolve(&mut w, client, root, &untouched, Mode::Iterative);
        assert_eq!(r.len(), 2);
        // Nothing changed: healing is a no-op.
        assert_eq!(r.heal(&w), 0);
        // Rebind inside /remote. Both cached paths traversed the root
        // context, but only /remote/data read the mutated "remote"
        // context... in fact both read root only until the last step:
        // "/remote" never reads the remote context itself, so healing
        // keeps it and drops only the entry that read the mutated context.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        assert_eq!(r.heal(&w), 1);
        assert_eq!(r.len(), 1);
        // The healed cache is coherent again without a full flush.
        assert_eq!(r.staleness(&w), 0.0);
        let (e, from_cache) = r.resolve(&mut w, client, root, &touched, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(e, naming_core::entity::Entity::Object(fresh));
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let (mut w, mut r0, client, root) = setup();
        // Rebuild with a tiny cache over the same engine.
        let engine = std::mem::replace(
            r0.engine_mut(),
            ProtocolEngine::new(NameService::install(&mut w, &[])),
        );
        let mut r = CachingResolver::with_capacity(engine, 1);
        let a = CompoundName::parse_path("/remote/data").unwrap();
        let b = CompoundName::parse_path("/remote").unwrap();
        r.resolve(&mut w, client, root, &a, Mode::Iterative);
        r.resolve(&mut w, client, root, &b, Mode::Iterative);
        assert_eq!(r.len(), 1);
        assert_eq!(r.stats().evictions, 1);
        // `a` was evicted; resolving it again is a miss.
        let (_, from_cache) = r.resolve(&mut w, client, root, &a, Mode::Iterative);
        assert!(!from_cache);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut w, mut r, client, root) = setup();
        for p in ["/remote/data", "/remote"] {
            let name = CompoundName::parse_path(p).unwrap();
            r.resolve(&mut w, client, root, &name, Mode::Iterative);
        }
        assert_eq!(r.len(), 2);
        r.invalidate_all();
        assert!(r.is_empty());
        assert_eq!(r.stats().invalidations, 2);
        mid(MachineId(0));
    }

    #[test]
    fn invalidating_absent_entry_is_false() {
        let (_w, mut r, _client, root) = setup();
        let name = CompoundName::parse_path("/never").unwrap();
        assert!(!r.invalidate(root, &name));
    }
}
