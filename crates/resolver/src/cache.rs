//! Client-side resolution caching — and its *incoherence*.
//!
//! Caching resolutions is the classic optimization of distributed naming
//! (DNS, Grapevine, …), and it reintroduces exactly the paper's problem in
//! temporal form: a cached entry is a context binding frozen at lookup
//! time, so after the authoritative binding changes, the cache and the
//! authority give the *same name different meanings*. [`CachingResolver`]
//! measures that staleness instead of hiding it.
//!
//! The store behind the cache is naming-core's generation-versioned
//! [`ResolutionMemo`]: every entry carries the generations of the contexts
//! its resolution traversed, and the cache is bounded with LRU eviction.
//! Lookups deliberately serve entries *without* re-validating them — that
//! is what a distributed client cache does, and what makes its staleness
//! measurable — but the recorded generations make healing cheap:
//! [`CachingResolver::heal`] drops exactly the entries whose underlying
//! contexts have changed, by comparing version counters instead of
//! re-resolving every name.

use std::collections::{BTreeMap, BTreeSet};

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::memo::ResolutionMemo;
use naming_core::name::CompoundName;
use naming_core::report::json_string;
use naming_core::resolve::Resolver;
use naming_core::state::SystemState;
use naming_sim::time::Duration;
use naming_sim::world::World;

use naming_sim::topology::MachineId;

use crate::coherence::{
    CoherenceMode, LeaseCacheStats, LeaseProbe, LeasedCache, SerialObservation, SerialTable,
};
use crate::engine::{ProtocolEngine, ReferralHop, ResolveStats};
use crate::referral::{NegativeCache, ReferralCache, ValidatedCacheStats};
use crate::wire::Mode;

/// Default bound on the number of cached resolutions.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 12;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the network.
    pub misses: u64,
    /// Cache entries explicitly invalidated (including generation-based
    /// healing).
    pub invalidations: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Renders the statistics — including the derived
    /// [`hit_rate`](CacheStats::hit_rate) — as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{{}: {}, {}: {}, {}: {}, {}: {}, {}: {:.6}}}",
            json_string("hits"),
            self.hits,
            json_string("misses"),
            self.misses,
            json_string("invalidations"),
            self.invalidations,
            json_string("evictions"),
            self.evictions,
            json_string("hit_rate"),
            self.hit_rate()
        )
    }
}

/// What a cached batch resolution cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedBatchOutcome {
    /// One entity per input name, in input order (possibly `⊥`).
    pub entities: Vec<Entity>,
    /// Per name: answered by a cache (positive or negative), no network.
    pub from_cache: Vec<bool>,
    /// Wire messages exchanged for the cache misses.
    pub messages: u64,
    /// Virtual time the network exchanges took.
    pub latency: Duration,
}

/// A resolution client with a bounded positive cache keyed on
/// `(start, name)`, backed by a generation-versioned [`ResolutionMemo`] —
/// plus two *validated* side caches that speed resolution up without ever
/// changing an answer:
///
/// * a [`ReferralCache`] of resolved zone prefixes, so repeat lookups
///   jump to the deepest known server instead of walking from the root;
/// * a [`NegativeCache`] of `⊥` verdicts, so repeated misses stop
///   costing network round-trips until a `bind` revives the name.
///
/// Only the positive cache is deliberately incoherent (served without
/// validation — that staleness is what this type measures); the side
/// caches validate generation footprints on every probe.
#[derive(Debug)]
pub struct CachingResolver {
    engine: ProtocolEngine,
    memo: ResolutionMemo,
    referrals: ReferralCache,
    negatives: NegativeCache,
    /// The validation regime: exact (oracle generation checks) or leases
    /// (TTL + replica-local zone serials, never authoritative state).
    mode: CoherenceMode,
    /// Zone serials this replica has heard through anti-entropy pulls —
    /// the *only* authority the lease path ever validates against.
    table: SerialTable,
    /// Lease-mode positive cache; unused (and empty) in exact mode, where
    /// `memo` carries positives instead.
    positives: LeasedCache,
}

/// What one anti-entropy pull ([`CachingResolver::sync`]) accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Wire bytes the exchange cost (request + reply frames).
    pub bytes: u64,
    /// Shards answered with a full (AXFR-style) transfer.
    pub shards_full: usize,
    /// Shards answered incrementally (IXFR-style, possibly empty).
    pub shards_incremental: usize,
    /// Individual binding changes carried in the deltas.
    pub changes: usize,
    /// Shards whose authoritative serial moved *backwards* (authority
    /// restart); the heard serial is re-adopted either way.
    pub regressions: usize,
    /// Cached entries (positive, referral, negative) dropped because a
    /// zone they depend on moved past their stamped serial.
    pub entries_dropped: u64,
}

impl CachingResolver {
    /// Wraps a protocol engine with the default cache bound.
    pub fn new(engine: ProtocolEngine) -> CachingResolver {
        CachingResolver::with_capacity(engine, DEFAULT_CACHE_CAPACITY)
    }

    /// Wraps a protocol engine with an explicit cache bound; inserts past
    /// the bound evict the least recently used entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(engine: ProtocolEngine, capacity: usize) -> CachingResolver {
        CachingResolver::with_mode(engine, capacity, CoherenceMode::Exact)
    }

    /// Wraps a protocol engine with an explicit cache bound under the
    /// given coherence regime. Exact mode behaves identically to
    /// [`CachingResolver::with_capacity`]; lease mode serves every cache
    /// through TTL + zone-serial validation and never consults
    /// authoritative state on the resolution path.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_mode(
        engine: ProtocolEngine,
        capacity: usize,
        mode: CoherenceMode,
    ) -> CachingResolver {
        CachingResolver {
            engine,
            memo: ResolutionMemo::with_capacity(capacity),
            referrals: ReferralCache::with_mode(crate::referral::DEFAULT_REFERRAL_CAPACITY, mode),
            negatives: NegativeCache::with_mode(crate::referral::DEFAULT_REFERRAL_CAPACITY, mode),
            mode,
            table: SerialTable::new(),
            positives: LeasedCache::with_capacity(capacity),
        }
    }

    /// The coherence regime this resolver runs under.
    pub fn coherence_mode(&self) -> CoherenceMode {
        self.mode
    }

    /// The zone serials this replica has heard so far.
    pub fn serial_table(&self) -> &SerialTable {
        &self.table
    }

    /// Mutable access to the heard-serial table. Experiment harnesses use
    /// this to stage serial regressions (a replica that synced against an
    /// authority which later restarted from an older snapshot); the
    /// resolver itself only ever writes through [`CachingResolver::sync`].
    pub fn serial_table_mut(&mut self) -> &mut SerialTable {
        &mut self.table
    }

    /// Lease-mode positive-cache counters (all zero in exact mode).
    pub fn lease_stats(&self) -> LeaseCacheStats {
        self.positives.stats()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// Mutable engine access (placement changes).
    pub fn engine_mut(&mut self) -> &mut ProtocolEngine {
        &mut self.engine
    }

    /// Cache statistics so far — positive-cache counters under whichever
    /// store the mode uses (the generation memo in exact mode, the leased
    /// cache in lease mode).
    pub fn stats(&self) -> CacheStats {
        match self.mode {
            CoherenceMode::Exact => {
                let m = self.memo.stats();
                CacheStats {
                    hits: m.hits,
                    misses: m.misses,
                    invalidations: m.invalidations,
                    evictions: m.evictions,
                }
            }
            CoherenceMode::Lease { .. } => {
                let l = self.positives.stats();
                CacheStats {
                    hits: l.hits,
                    misses: l.misses,
                    invalidations: l.invalidated(),
                    evictions: l.evictions,
                }
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        match self.mode {
            CoherenceMode::Exact => self.memo.len(),
            CoherenceMode::Lease { .. } => self.positives.len(),
        }
    }

    /// The cache bound.
    pub fn capacity(&self) -> usize {
        self.memo.capacity()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Referral-cache statistics so far.
    pub fn referral_stats(&self) -> ValidatedCacheStats {
        self.referrals.stats()
    }

    /// Negative-cache statistics so far.
    pub fn negative_stats(&self) -> ValidatedCacheStats {
        self.negatives.stats()
    }

    /// Resolves through the cache: a hit answers instantly (zero virtual
    /// latency, zero messages); a miss goes to the network and populates
    /// the cache on success.
    ///
    /// Hits are served *without* validation — a client cache has no
    /// authoritative state to validate against, which is precisely the §5
    /// incoherence this type exists to measure. Use
    /// [`CachingResolver::heal`] to apply generation-based invalidation.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (Entity, bool) {
        if self.mode.is_lease() {
            return self.resolve_leased(world, client, start, name, mode);
        }
        if let Some(e) = self.memo.probe_stale(start, name.components()) {
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.hits").bump();
            return (e, true);
        }
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("cache.misses").bump();
        // A still-valid negative verdict is also a hit: this name denotes
        // nothing, and the generations that made it so haven't moved.
        if self.negatives.probe(world, start, name) {
            return (Entity::Undefined, true);
        }
        // Referral jump: resume from the deepest cached, still-valid
        // prefix instead of the root. Validation guarantees the jump is
        // answer-equivalent to the full walk; only messages are saved.
        let jump = match mode {
            Mode::Iterative => self.referrals.lookup_deepest(
                world,
                self.engine.service(),
                start,
                name.components(),
            ),
            Mode::Recursive => None,
        };
        let (stats, hops, offset): (ResolveStats, Vec<ReferralHop>, usize) = match jump {
            Some((plen, ctx, _machine)) => {
                let remaining = CompoundName::new(name.components()[plen..].to_vec())
                    .expect("proper prefix leaves a nonempty suffix");
                let (s, h) = self
                    .engine
                    .resolve_traced(world, client, ctx, &remaining, mode);
                (s, h, plen)
            }
            None => {
                let (s, h) = self.engine.resolve_traced(world, client, start, name, mode);
                (s, h, 0)
            }
        };
        // Remember the referrals the walk followed, keyed by the ORIGINAL
        // name (the hop offsets are relative to where we jumped in).
        for hop in &hops {
            let plen = offset + hop.consumed;
            if plen >= 1 && plen < name.len() {
                let prefix =
                    CompoundName::new(name.components()[..plen].to_vec()).expect("nonempty prefix");
                self.referrals.record(world, start, &prefix, hop.ctx);
            }
        }
        if stats.entity.is_defined() {
            let deps = path_deps(world.state(), start, name);
            self.memo
                .record(world.state(), start, name.components(), stats.entity, &deps);
        } else if stats.unreachable {
            // A transport-failure ⊥ says nothing about the binding; caching
            // it would poison the negative cache with lies the oracle check
            // only catches by luck. Cache nothing, retry next time.
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.unreachable_uncached").bump();
        } else {
            // ⊥ is cached only when the authoritative state agrees —
            // never when the network alone failed us.
            self.negatives
                .record_protocol_verdict(world, start, name, stats.unreachable);
        }
        (stats.entity, false)
    }

    /// The lease-mode resolution path. Every cache probe validates with
    /// replica-local facts only — virtual-time lease expiry and the zone
    /// serials in [`CachingResolver::serial_table`] — and recorded entries
    /// are stamped with a *protocol-visible* zone footprint: the start
    /// context's shard, every referral target's shard (including the
    /// footprint inherited from a cached-referral jump), and the answer
    /// object's shard. Contexts a server walks silently between referrals
    /// are covered by the TTL bound alone, exactly as a DNS resolver's
    /// cached record is unaffected by a parent-zone edit.
    fn resolve_leased(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (Entity, bool) {
        let now = world.now().ticks();
        if let LeaseProbe::Hit(e) = self
            .positives
            .probe(now, &self.table, start, name.components())
        {
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.hits").bump();
            return (e, true);
        }
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("cache.misses").bump();
        if self.negatives.probe_leased(now, &self.table, start, name) {
            return (Entity::Undefined, true);
        }
        let jump = match mode {
            Mode::Iterative => self.referrals.lookup_deepest_leased(
                now,
                &self.table,
                self.engine.service(),
                start,
                name.components(),
            ),
            Mode::Recursive => None,
        };
        let mut zones: Vec<usize> = vec![SystemState::shard_of_id(start)];
        let (stats, hops, offset): (ResolveStats, Vec<ReferralHop>, usize) = match jump {
            Some((plen, ctx, _machine, inherited)) => {
                zones.extend(inherited);
                zones.push(SystemState::shard_of_id(ctx));
                let remaining = CompoundName::new(name.components()[plen..].to_vec())
                    .expect("proper prefix leaves a nonempty suffix");
                let (s, h) = self
                    .engine
                    .resolve_traced(world, client, ctx, &remaining, mode);
                (s, h, plen)
            }
            None => {
                let (s, h) = self.engine.resolve_traced(world, client, start, name, mode);
                (s, h, 0)
            }
        };
        // Record the walk's referrals with cumulative footprints: each
        // deeper prefix depends on every zone crossed to reach it.
        for hop in &hops {
            let plen = offset + hop.consumed;
            zones.push(SystemState::shard_of_id(hop.ctx));
            if plen >= 1 && plen < name.len() {
                let prefix =
                    CompoundName::new(name.components()[..plen].to_vec()).expect("nonempty prefix");
                self.referrals.record_leased(
                    now,
                    &self.table,
                    start,
                    &prefix,
                    hop.ctx,
                    zones.iter().copied(),
                );
            }
        }
        if let Entity::Object(o) = stats.entity {
            zones.push(SystemState::shard_of_id(o));
        }
        if stats.entity.is_defined() {
            self.positives.record(
                now,
                self.mode.lease_ttl(),
                start,
                name.components(),
                stats.entity,
                zones,
                &self.table,
            );
        } else if stats.unreachable {
            // Transport verdict: cached in neither mode.
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.unreachable_uncached").bump();
        } else {
            self.negatives
                .record_verdict_leased(now, &self.table, start, name, zones, false);
        }
        (stats.entity, false)
    }

    /// Resolves many names through the cache in one shot: cache (and
    /// negative-cache) hits answer locally, and the misses ride the
    /// batched wire protocol — grouped by the deepest valid cached
    /// referral so each group starts as close to its answer as possible.
    ///
    /// Answers are identical to resolving each name via
    /// [`CachingResolver::resolve`] in iterative mode; batching and
    /// referral jumps change message counts, never entities.
    pub fn resolve_batch(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> CachedBatchOutcome {
        if self.mode.is_lease() {
            return self.resolve_batch_leased(world, client, start, names);
        }
        let mut entities = vec![Entity::Undefined; names.len()];
        let mut from_cache = vec![false; names.len()];
        // Misses grouped by the context the batch will start from:
        // group ctx → (prefix components consumed to get there, slot).
        let mut groups: BTreeMap<ObjectId, Vec<(usize, usize)>> = BTreeMap::new();
        for (slot, name) in names.iter().enumerate() {
            if let Some(e) = self.memo.probe_stale(start, name.components()) {
                #[cfg(feature = "telemetry")]
                naming_telemetry::counter!("cache.hits").bump();
                entities[slot] = e;
                from_cache[slot] = true;
                continue;
            }
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.misses").bump();
            if self.negatives.probe(world, start, name) {
                from_cache[slot] = true;
                continue;
            }
            let jump = self.referrals.lookup_deepest(
                world,
                self.engine.service(),
                start,
                name.components(),
            );
            match jump {
                Some((plen, ctx, _machine)) => groups.entry(ctx).or_default().push((plen, slot)),
                None => groups.entry(start).or_default().push((0, slot)),
            }
        }
        let mut messages = 0u64;
        let mut latency = Duration::ZERO;
        let mut seen_referrals: BTreeSet<(CompoundName, ObjectId)> = BTreeSet::new();
        for (gctx, members) in groups {
            let remaining: Vec<CompoundName> = members
                .iter()
                .map(|&(plen, slot)| {
                    CompoundName::new(names[slot].components()[plen..].to_vec())
                        .expect("proper prefix leaves a nonempty suffix")
                })
                .collect();
            let batch = self.engine.resolve_batch(world, client, gctx, &remaining);
            messages += batch.messages;
            latency = latency + batch.latency;
            for (i, &(plen, slot)) in members.iter().enumerate() {
                entities[slot] = batch.entities[i];
                // Referrals are reported relative to the group's start;
                // re-key them by every original name they prefix.
                for (ref_prefix, _machine, ctx) in &batch.referrals {
                    let rel = ref_prefix.components();
                    if names[slot].components()[plen..].starts_with(rel) {
                        let full = plen + rel.len();
                        if full >= 1 && full < names[slot].len() {
                            let prefix =
                                CompoundName::new(names[slot].components()[..full].to_vec())
                                    .expect("nonempty prefix");
                            if seen_referrals.insert((prefix.clone(), *ctx)) {
                                self.referrals.record(world, start, &prefix, *ctx);
                            }
                        }
                    }
                }
                let name = &names[slot];
                if entities[slot].is_defined() {
                    let deps = path_deps(world.state(), start, name);
                    self.memo.record(
                        world.state(),
                        start,
                        name.components(),
                        entities[slot],
                        &deps,
                    );
                } else if batch.unreachable[i] {
                    // Transport verdict: never a negative-cache entry.
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("cache.unreachable_uncached").bump();
                } else {
                    self.negatives.record_protocol_verdict(
                        world,
                        start,
                        name,
                        batch.unreachable[i],
                    );
                }
            }
        }
        CachedBatchOutcome {
            entities,
            from_cache,
            messages,
            latency,
        }
    }

    /// Lease-mode batch resolution: same grouping as the exact path, but
    /// every probe, jump, and record goes through the lease stores with
    /// the protocol-visible zone footprints of
    /// [`CachingResolver::resolve_leased`].
    fn resolve_batch_leased(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> CachedBatchOutcome {
        let now = world.now().ticks();
        let mut entities = vec![Entity::Undefined; names.len()];
        let mut from_cache = vec![false; names.len()];
        let mut slot_zones: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut groups: BTreeMap<ObjectId, Vec<(usize, usize)>> = BTreeMap::new();
        for (slot, name) in names.iter().enumerate() {
            if let LeaseProbe::Hit(e) =
                self.positives
                    .probe(now, &self.table, start, name.components())
            {
                #[cfg(feature = "telemetry")]
                naming_telemetry::counter!("cache.hits").bump();
                entities[slot] = e;
                from_cache[slot] = true;
                continue;
            }
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("cache.misses").bump();
            if self.negatives.probe_leased(now, &self.table, start, name) {
                from_cache[slot] = true;
                continue;
            }
            let jump = self.referrals.lookup_deepest_leased(
                now,
                &self.table,
                self.engine.service(),
                start,
                name.components(),
            );
            slot_zones[slot].push(SystemState::shard_of_id(start));
            match jump {
                Some((plen, ctx, _machine, inherited)) => {
                    slot_zones[slot].extend(inherited);
                    slot_zones[slot].push(SystemState::shard_of_id(ctx));
                    groups.entry(ctx).or_default().push((plen, slot));
                }
                None => {
                    groups.entry(start).or_default().push((0, slot));
                }
            }
        }
        let mut messages = 0u64;
        let mut latency = Duration::ZERO;
        let mut seen_referrals: BTreeSet<(CompoundName, ObjectId)> = BTreeSet::new();
        for (gctx, members) in groups {
            let remaining: Vec<CompoundName> = members
                .iter()
                .map(|&(plen, slot)| {
                    CompoundName::new(names[slot].components()[plen..].to_vec())
                        .expect("proper prefix leaves a nonempty suffix")
                })
                .collect();
            let batch = self.engine.resolve_batch(world, client, gctx, &remaining);
            messages += batch.messages;
            latency = latency + batch.latency;
            for (i, &(plen, slot)) in members.iter().enumerate() {
                entities[slot] = batch.entities[i];
                for (ref_prefix, _machine, ctx) in &batch.referrals {
                    let rel = ref_prefix.components();
                    if names[slot].components()[plen..].starts_with(rel) {
                        slot_zones[slot].push(SystemState::shard_of_id(*ctx));
                        let full = plen + rel.len();
                        if full >= 1 && full < names[slot].len() {
                            let prefix =
                                CompoundName::new(names[slot].components()[..full].to_vec())
                                    .expect("nonempty prefix");
                            if seen_referrals.insert((prefix.clone(), *ctx)) {
                                self.referrals.record_leased(
                                    now,
                                    &self.table,
                                    start,
                                    &prefix,
                                    *ctx,
                                    slot_zones[slot].iter().copied(),
                                );
                            }
                        }
                    }
                }
                let name = &names[slot];
                if let Entity::Object(o) = entities[slot] {
                    slot_zones[slot].push(SystemState::shard_of_id(o));
                }
                if entities[slot].is_defined() {
                    self.positives.record(
                        now,
                        self.mode.lease_ttl(),
                        start,
                        name.components(),
                        entities[slot],
                        slot_zones[slot].iter().copied(),
                        &self.table,
                    );
                } else if batch.unreachable[i] {
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("cache.unreachable_uncached").bump();
                } else {
                    self.negatives.record_verdict_leased(
                        now,
                        &self.table,
                        start,
                        name,
                        slot_zones[slot].iter().copied(),
                        false,
                    );
                }
            }
        }
        CachedBatchOutcome {
            entities,
            from_cache,
            messages,
            latency,
        }
    }

    /// Drops one cache entry.
    pub fn invalidate(&mut self, start: ObjectId, name: &CompoundName) -> bool {
        match self.mode {
            CoherenceMode::Exact => self.memo.remove(start, name.components()),
            CoherenceMode::Lease { .. } => self.positives.remove(start, name.components()),
        }
    }

    /// Drops the whole cache — positive, referral, and negative alike.
    /// The serial table is kept: forgetting heard serials is a *restart*
    /// (see [`CachingResolver::restart_replica`]), not a cache flush.
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
        self.positives.clear();
        self.referrals.invalidate_all();
        self.negatives.invalidate_all();
    }

    /// Simulates a replica restart: every cache *and* the heard-serial
    /// table are wiped. The next [`CachingResolver::sync`] pulls from
    /// serial zero on every shard, which the authority answers with full
    /// transfers — a restarted replica cannot trust a diff.
    pub fn restart_replica(&mut self) {
        self.invalidate_all();
        self.table.reset();
    }

    /// Generation-based healing: drops every entry whose recorded context
    /// generations no longer match the authoritative state, by comparing
    /// version counters — no re-resolution. Returns how many *positive*
    /// entries were dropped; the referral and negative caches are swept
    /// too (their probes validate lazily anyway, this reclaims space).
    ///
    /// Exact-mode only: healing reads authoritative generations, which is
    /// precisely what the lease path must never do.
    pub fn heal(&mut self, world: &World) -> usize {
        debug_assert!(
            self.mode.is_exact(),
            "heal() consults authoritative generations; lease mode syncs serials instead"
        );
        let n = self.memo.invalidate_stale(world.state());
        self.referrals.heal(world);
        self.negatives.heal(world);
        n
    }

    /// Drops every leased entry (positive, referral, negative) whose
    /// lease has lapsed at virtual time `now`; returns how many. A no-op
    /// in exact mode. Probes drop lapsed entries on sight anyway; this
    /// reclaims space for entries that are never probed again.
    pub fn sweep_leases(&mut self, now: u64) -> usize {
        self.positives.sweep_expired(now)
            + self.referrals.sweep_expired(now)
            + self.negatives.sweep_expired(now)
    }

    /// Anti-entropy pull: asks the authority on `machine` for zone deltas
    /// since the serials this replica last heard, adopts the answered
    /// serials, and drops every cached entry stamped under a serial its
    /// zone has moved past. Returns `None` when the exchange was lost
    /// (the next periodic pull catches up).
    ///
    /// This is the lease path's *only* source of invalidation evidence —
    /// it reads authoritative state exclusively through the wire.
    pub fn sync(
        &mut self,
        world: &mut World,
        client: ActivityId,
        machine: MachineId,
    ) -> Option<SyncReport> {
        let since = self.table.snapshot_for(world.state().shard_count());
        let (delta, bytes) = self
            .engine
            .pull_zone_deltas(world, client, machine, since)?;
        let mut report = SyncReport {
            bytes,
            ..SyncReport::default()
        };
        for slice in &delta.shards {
            if slice.full {
                report.shards_full += 1;
            } else {
                report.shards_incremental += 1;
            }
            report.changes += slice.changes.len();
            match self.table.observe(slice.shard, slice.serial) {
                SerialObservation::Unchanged => continue,
                SerialObservation::Advanced => {}
                SerialObservation::Regressed => report.regressions += 1,
            }
            // The zone's serial moved: entries stamped under the old
            // serial were justified by history the zone no longer stands
            // behind. Drop them eagerly; probes would drop them lazily.
            let dropped = self.positives.invalidate_zone(slice.shard, slice.serial) as u64
                + self.referrals.observe_zone(slice.shard, slice.serial) as u64
                + self.negatives.observe_zone(slice.shard, slice.serial) as u64;
            report.entries_dropped += dropped;
        }
        Some(report)
    }

    /// Audits the cache against the authoritative naming state: returns
    /// the entries whose cached entity no longer matches what the
    /// authority would answer — the *incoherent* (stale) entries.
    ///
    /// The authoritative walks run through a scratch [`ResolutionMemo`],
    /// so entries sharing path prefixes (the common case — a cache fills
    /// up with siblings) are each walked once instead of once per entry;
    /// with the `parallel` feature large audits shard across threads.
    /// Output is identical either way: same entries, same order.
    pub fn stale_entries(&self, world: &World) -> Vec<(ObjectId, CompoundName, Entity)> {
        let entries: Vec<(ObjectId, CompoundName, Entity)> = self
            .memo
            .entries()
            .map(|(start, suffix, cached)| {
                let name = CompoundName::new(suffix.to_vec()).expect("cached names are nonempty");
                (start, name, cached)
            })
            .collect();
        audit_against_authority(world.state(), entries)
    }

    /// Staleness rate: stale entries / cached entries (0 when empty).
    pub fn staleness(&self, world: &World) -> f64 {
        if self.memo.is_empty() {
            return 0.0;
        }
        self.stale_entries(world).len() as f64 / self.memo.len() as f64
    }
}

/// Keeps exactly the entries whose cached entity disagrees with a fresh
/// authoritative resolution, preserving input order. Walks share a
/// memo per worker, which never changes answers — only work.
fn audit_against_authority(
    state: &SystemState,
    entries: Vec<(ObjectId, CompoundName, Entity)>,
) -> Vec<(ObjectId, CompoundName, Entity)> {
    let audit_chunk = |slice: &[(ObjectId, CompoundName, Entity)]| {
        let r = Resolver::new();
        let mut memo = ResolutionMemo::with_capacity(slice.len().max(16) * 4);
        slice
            .iter()
            .filter(|(start, name, cached)| {
                r.resolve_entity_memo(state, *start, name, &mut memo) != *cached
            })
            .cloned()
            .collect::<Vec<_>>()
    };
    #[cfg(feature = "parallel")]
    if entries.len() >= 64 {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(entries.len());
        if threads > 1 {
            let chunk = entries.len().div_ceil(threads);
            let mut out: Vec<Vec<(ObjectId, CompoundName, Entity)>> = Vec::with_capacity(threads);
            crossbeam::scope(|scope| {
                let handles: Vec<_> = entries
                    .chunks(chunk)
                    .map(|slice| scope.spawn(move |_| audit_chunk(slice)))
                    .collect();
                for h in handles {
                    out.push(h.join().expect("audit worker panicked"));
                }
            })
            .expect("audit scope");
            return out.into_iter().flatten().collect();
        }
    }
    audit_chunk(&entries)
}

/// The `(context, generation)` pairs an authoritative resolution of `name`
/// reads, recorded into cache entries so healing can be a pure version
/// comparison.
fn path_deps(state: &SystemState, start: ObjectId, name: &CompoundName) -> Vec<(ObjectId, u64)> {
    match Resolver::new().resolve(state, start, name) {
        Ok(res) => res
            .steps
            .iter()
            .filter_map(|s| state.context(s.context).map(|c| (s.context, c.version())))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::NameService;
    use naming_core::name::Name;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    fn setup() -> (World, CachingResolver, ActivityId, ObjectId) {
        let mut w = World::new(81);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let sub = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), sub, "data", vec![]);
        store::attach(w.state_mut(), root, "remote", sub, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, w.machine_root(m2), m2);
        svc.place_subtree(&w, root, m1);
        let client = w.spawn(m1, "client", None);
        let resolver = CachingResolver::new(ProtocolEngine::new(svc));
        (w, resolver, client, root)
    }

    fn mid(_m: MachineId) {}

    #[test]
    fn hits_after_first_miss() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, from_cache1) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(!from_cache1);
        let t_after_miss = w.now();
        let (e2, from_cache2) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(e1, e2);
        assert!(from_cache2);
        assert_eq!(w.now(), t_after_miss, "hits cost no virtual time");
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
        assert!((r.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn stats_hit_rate_and_json() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            invalidations: 2,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"hits\": 3, \"misses\": 1, \"invalidations\": 2, \
             \"evictions\": 0, \"hit_rate\": 0.750000}"
        );
    }

    #[test]
    fn failures_are_negatively_cached_until_a_bind_revives_the_name() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/nope").unwrap();
        let (e, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!e.is_defined());
        assert!(!from_cache);
        assert!(r.is_empty(), "⊥ never enters the positive cache");
        assert_eq!(r.negative_stats().recorded, 1);
        // Second lookup: the validated negative cache answers, zero wire
        // traffic.
        let sent = w.trace().counter("sent");
        let (e2, from_cache2) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!e2.is_defined());
        assert!(from_cache2);
        assert_eq!(w.trace().counter("sent"), sent, "negative hits are free");
        // Binding the name bumps the consulted generation: the cached ⊥
        // dies and the next lookup finds the new file on the network.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = store::create_file(w.state_mut(), sub, "nope", vec![]);
        let (e3, from_cache3) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache3, "stale ⊥ is never served");
        assert_eq!(e3, naming_core::entity::Entity::Object(fresh));
        assert!(r.negative_stats().invalidated >= 1);
    }

    #[test]
    fn repeat_lookups_jump_through_the_referral_cache() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(
            r.referral_stats().recorded >= 1,
            "the m1→m2 handoff was cached"
        );
        let full_walk = w.trace().counter("sent");
        // Drop the positive entry so the next lookup must use the wire —
        // but now it starts from the cached /remote referral on m2.
        assert!(r.invalidate(root, &name));
        let sent = w.trace().counter("sent");
        let (e2, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        let jumped = w.trace().counter("sent") - sent;
        assert_eq!(e2, e1);
        assert!(!from_cache);
        assert_eq!(r.referral_stats().hits, 1);
        assert!(
            jumped < full_walk,
            "referral jump used fewer messages ({jumped}) than the full walk ({full_walk})"
        );
        assert_eq!(jumped, 2, "one request/reply pair straight to m2");
    }

    #[test]
    fn invalidated_referral_falls_back_to_the_root_and_stays_correct() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(r.referral_stats().recorded >= 1);
        // The authority moves "remote" to a different (local) subtree.
        // The cached referral's generation footprint includes the root
        // context, so it must die — and the lookup must fall back to the
        // root walk, answering what the authority now answers.
        let local = store::ensure_dir(w.state_mut(), root, "local");
        let fresh = store::create_file(w.state_mut(), local, "data", vec![]);
        store::attach(w.state_mut(), root, "remote", local, false);
        r.engine_mut()
            .service_mut()
            .place_subtree(&w, local, MachineId(0));
        r.invalidate(root, &name); // drop the (deliberately stale) positive entry
        let (e, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(
            e,
            naming_core::entity::Entity::Object(fresh),
            "wrong-generation referral was not used"
        );
        assert!(r.referral_stats().invalidated >= 1);
    }

    #[test]
    fn batch_resolution_matches_singles_and_uses_every_cache() {
        let (mut w, mut r, client, root) = setup();
        let names: Vec<CompoundName> = ["/remote/data", "/remote", "/remote/nope", "/remote/data"]
            .iter()
            .map(|p| CompoundName::parse_path(p).unwrap())
            .collect();
        let batch = r.resolve_batch(&mut w, client, root, &names);
        // Same answers as one-at-a-time resolution (on a fresh resolver).
        let (mut w2, mut r2, client2, root2) = setup();
        for (i, name) in names.iter().enumerate() {
            let (e, _) = r2.resolve(&mut w2, client2, root2, name, Mode::Iterative);
            assert_eq!(batch.entities[i], e, "batch disagrees on {name}");
        }
        assert!(batch.entities[0].is_defined());
        assert!(!batch.entities[2].is_defined());
        assert_eq!(batch.entities[0], batch.entities[3]);
        assert_eq!(batch.from_cache, vec![false, false, false, false]);
        // Everything is now cached: the same batch again is free.
        let sent = w.trace().counter("sent");
        let again = r.resolve_batch(&mut w, client, root, &names);
        assert_eq!(again.entities, batch.entities);
        assert_eq!(again.from_cache, vec![true, true, true, true]);
        assert_eq!(again.messages, 0);
        assert_eq!(w.trace().counter("sent"), sent);
        // A fresh sibling lookup jumps through the referral recorded by
        // the batch instead of walking from the root.
        let sibling = [CompoundName::parse_path("/remote/other").unwrap()];
        let hits = r.referral_stats().hits;
        r.resolve_batch(&mut w, client, root, &sibling);
        assert_eq!(r.referral_stats().hits, hits + 1);
    }

    #[test]
    fn zero_lookup_hit_rate_is_zero_not_nan() {
        // Satellite check: a fresh resolver has performed no lookups, and
        // every derived rate must be a number.
        let (_w, r, _client, _root) = setup();
        assert_eq!(r.stats().hits + r.stats().misses, 0);
        assert_eq!(r.stats().hit_rate(), 0.0);
        assert!(!r.stats().hit_rate().is_nan());
        assert!(!CacheStats::default().hit_rate().is_nan());
        let json = CacheStats::default().to_json();
        assert!(json.contains("\"hit_rate\": 0.000000"), "got {json}");
    }

    #[test]
    fn hits_plus_misses_equals_lookups_under_a_mixed_workload() {
        let (mut w, mut r, client, root) = setup();
        let mut lookups = 0u64;
        // Mixed workload: repeats (hits), fresh names (misses), failures
        // (negative-cache traffic), rebinds (staleness), every mode.
        for round in 0..3 {
            for p in ["/remote/data", "/remote", "/remote/nope", "/remote/data"] {
                let name = CompoundName::parse_path(p).unwrap();
                let mode = if round == 2 {
                    Mode::Recursive
                } else {
                    Mode::Iterative
                };
                r.resolve(&mut w, client, root, &name, mode);
                lookups += 1;
            }
            if round == 1 {
                let sub = match store::resolve_path(w.state(), root, "/remote") {
                    naming_core::entity::Entity::Object(o) => o,
                    other => panic!("remote missing: {other}"),
                };
                let fresh = w.state_mut().add_data_object("data-v2", vec![]);
                w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
                r.heal(&w);
            }
        }
        let s = r.stats();
        assert_eq!(
            s.hits + s.misses,
            lookups,
            "every lookup is exactly one hit or one miss"
        );
        assert!(s.hits > 0 && s.misses > 0, "the workload exercised both");
        assert!(!s.hit_rate().is_nan());
    }

    #[test]
    fn stale_audit_output_is_stable_under_memoization() {
        // The memoized (and, with `parallel`, sharded) audit must report
        // exactly what the naive per-entry walk reported.
        let (mut w, mut r, client, root) = setup();
        for p in ["/remote/data", "/remote", "/remote/data"] {
            let name = CompoundName::parse_path(p).unwrap();
            r.resolve(&mut w, client, root, &name, Mode::Iterative);
        }
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        let naive: Vec<(ObjectId, CompoundName, Entity)> = {
            let resolver = Resolver::new();
            r.memo
                .entries()
                .filter_map(|(start, suffix, cached)| {
                    let name = CompoundName::new(suffix.to_vec()).unwrap();
                    (resolver.resolve_entity(w.state(), start, &name) != cached)
                        .then_some((start, name, cached))
                })
                .collect()
        };
        assert_eq!(r.stale_entries(&w), naive);
        assert_eq!(naive.len(), 1);
    }

    #[test]
    fn rebinding_makes_cache_stale_and_invalidations_heal() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (old, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(r.staleness(&w), 0.0);
        // The authority rebinds "data" to a new object.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        // The cached answer is now incoherent with the authority.
        assert_eq!(r.stale_entries(&w).len(), 1);
        assert!((r.staleness(&w) - 1.0).abs() < 1e-9);
        let (still_old, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(from_cache);
        assert_eq!(still_old, old, "stale cache keeps serving the old entity");
        // Invalidate → next lookup fetches the new binding.
        assert!(r.invalidate(root, &name));
        let (new, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(new, naming_core::entity::Entity::Object(fresh));
        assert_eq!(r.staleness(&w), 0.0);
        assert_eq!(r.stats().invalidations, 1);
    }

    #[test]
    fn heal_drops_exactly_the_generation_stale_entries() {
        let (mut w, mut r, client, root) = setup();
        let touched = CompoundName::parse_path("/remote/data").unwrap();
        let untouched = CompoundName::parse_path("/remote").unwrap();
        r.resolve(&mut w, client, root, &touched, Mode::Iterative);
        r.resolve(&mut w, client, root, &untouched, Mode::Iterative);
        assert_eq!(r.len(), 2);
        // Nothing changed: healing is a no-op.
        assert_eq!(r.heal(&w), 0);
        // Rebind inside /remote. Both cached paths traversed the root
        // context, but only /remote/data read the mutated "remote"
        // context... in fact both read root only until the last step:
        // "/remote" never reads the remote context itself, so healing
        // keeps it and drops only the entry that read the mutated context.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        assert_eq!(r.heal(&w), 1);
        assert_eq!(r.len(), 1);
        // The healed cache is coherent again without a full flush.
        assert_eq!(r.staleness(&w), 0.0);
        let (e, from_cache) = r.resolve(&mut w, client, root, &touched, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(e, naming_core::entity::Entity::Object(fresh));
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let (mut w, mut r0, client, root) = setup();
        // Rebuild with a tiny cache over the same engine.
        let engine = std::mem::replace(
            r0.engine_mut(),
            ProtocolEngine::new(NameService::install(&mut w, &[])),
        );
        let mut r = CachingResolver::with_capacity(engine, 1);
        let a = CompoundName::parse_path("/remote/data").unwrap();
        let b = CompoundName::parse_path("/remote").unwrap();
        r.resolve(&mut w, client, root, &a, Mode::Iterative);
        r.resolve(&mut w, client, root, &b, Mode::Iterative);
        assert_eq!(r.len(), 1);
        assert_eq!(r.stats().evictions, 1);
        // `a` was evicted; resolving it again is a miss.
        let (_, from_cache) = r.resolve(&mut w, client, root, &a, Mode::Iterative);
        assert!(!from_cache);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut w, mut r, client, root) = setup();
        for p in ["/remote/data", "/remote"] {
            let name = CompoundName::parse_path(p).unwrap();
            r.resolve(&mut w, client, root, &name, Mode::Iterative);
        }
        assert_eq!(r.len(), 2);
        r.invalidate_all();
        assert!(r.is_empty());
        assert_eq!(r.stats().invalidations, 2);
        mid(MachineId(0));
    }

    #[test]
    fn invalidating_absent_entry_is_false() {
        let (_w, mut r, _client, root) = setup();
        let name = CompoundName::parse_path("/never").unwrap();
        assert!(!r.invalidate(root, &name));
    }

    fn setup_leased(ttl: Option<u64>) -> (World, CachingResolver, ActivityId, ObjectId, MachineId) {
        let mut w = World::new(81);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let sub = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), sub, "data", vec![]);
        store::attach(w.state_mut(), root, "remote", sub, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, w.machine_root(m2), m2);
        svc.place_subtree(&w, root, m1);
        let client = w.spawn(m1, "client", None);
        let resolver = CachingResolver::with_mode(
            ProtocolEngine::new(svc),
            DEFAULT_CACHE_CAPACITY,
            CoherenceMode::Lease { ttl },
        );
        (w, resolver, client, root, m1)
    }

    /// Pushes virtual time forward by `ticks` without any naming traffic.
    fn advance(w: &mut World, client: ActivityId, ticks: u64) {
        w.schedule_wake(client, Duration::from_ticks(ticks), u64::MAX);
        while w.step() {}
        w.drain_wakes(client);
    }

    #[test]
    fn leased_hits_are_free_and_expire_on_schedule() {
        let (mut w, mut r, client, root, _m) = setup_leased(Some(50));
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, from_cache1) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(!from_cache1);
        let sent = w.trace().counter("sent");
        let (e2, from_cache2) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(e2, e1);
        assert!(from_cache2, "within the TTL the lease answers");
        assert_eq!(w.trace().counter("sent"), sent, "lease hits are free");
        // Past the TTL the lease lapses and the next lookup pays the wire.
        advance(&mut w, client, 60);
        let (e3, from_cache3) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(e3, e1);
        assert!(!from_cache3, "an expired lease must not answer");
        assert!(r.lease_stats().expired >= 1);
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn lease_resolution_never_reads_authoritative_state() {
        // The replica-local guarantee, demonstrated behaviorally: rebind
        // at the authority WITHOUT telling the replica, and the lease
        // keeps serving the old answer until it expires or a sync lands —
        // exact mode's validated caches would have noticed immediately.
        let (mut w, mut r, client, root, m1) = setup_leased(None);
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (old, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        r.engine_mut()
            .publish_binding(&mut w, sub, Name::new("data"), Some(Entity::Object(fresh)))
            .expect("publish commits");
        let (served, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(from_cache);
        assert_eq!(served, old, "unsynced replica still serves the lease");
        // An anti-entropy pull brings the serial movement home; the entry
        // drops and the next lookup fetches the new binding.
        let report = r.sync(&mut w, client, m1).expect("sync completes");
        assert!(
            report.entries_dropped >= 1,
            "serial movement drops the entry"
        );
        let (now_fresh, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(now_fresh, Entity::Object(fresh));
    }

    #[test]
    fn first_sync_is_full_then_incremental() {
        let (mut w, mut r, client, root, m1) = setup_leased(None);
        // Never heard any shard: every populated shard answers full.
        let first = r.sync(&mut w, client, m1).expect("sync completes");
        assert!(first.shards_full >= 1, "cold replica gets full transfers");
        assert!(first.bytes > 0);
        // Nothing changed since: pure heartbeat, zero changes.
        let idle = r.sync(&mut w, client, m1).expect("sync completes");
        assert_eq!(idle.shards_full, 0);
        assert_eq!(idle.changes, 0);
        assert_eq!(idle.entries_dropped, 0);
        // One publish: the next sync carries exactly that delta.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        r.engine_mut()
            .publish_binding(&mut w, sub, Name::new("data"), Some(Entity::Object(fresh)))
            .expect("publish commits");
        let after = r.sync(&mut w, client, m1).expect("sync completes");
        assert_eq!(after.shards_full, 0, "journaled write travels as a diff");
        assert_eq!(after.changes, 1);
    }

    #[test]
    fn replica_restart_forces_full_transfers() {
        let (mut w, mut r, client, _root, m1) = setup_leased(None);
        r.sync(&mut w, client, m1).expect("warm-up sync");
        r.restart_replica();
        assert!(r.is_empty());
        assert_eq!(r.serial_table().snapshot().len(), 0);
        let cold = r.sync(&mut w, client, m1).expect("sync completes");
        assert!(
            cold.shards_full >= 1,
            "a restarted replica must not trust diffs"
        );
    }

    #[test]
    fn leased_batch_matches_singles() {
        let (mut w, mut r, client, root, _m) = setup_leased(None);
        let names: Vec<CompoundName> = ["/remote/data", "/remote", "/remote/nope", "/remote/data"]
            .iter()
            .map(|p| CompoundName::parse_path(p).unwrap())
            .collect();
        let batch = r.resolve_batch(&mut w, client, root, &names);
        let (mut w2, mut r2, client2, root2, _m2) = setup_leased(None);
        for (i, name) in names.iter().enumerate() {
            let (e, _) = r2.resolve(&mut w2, client2, root2, name, Mode::Iterative);
            assert_eq!(batch.entities[i], e, "leased batch disagrees on {name}");
        }
        // Everything cached: the same batch again is free.
        let again = r.resolve_batch(&mut w, client, root, &names);
        assert_eq!(again.entities, batch.entities);
        assert_eq!(again.from_cache, vec![true, true, true, true]);
        assert_eq!(again.messages, 0);
    }

    #[test]
    fn zero_ttl_leases_are_never_served() {
        let (mut w, mut r, client, root, _m) = setup_leased(Some(0));
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(r.is_empty(), "ttl 0 records nothing");
        let (_, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
    }

    #[test]
    fn dropped_replies_never_seed_the_negative_cache() {
        // A bound name resolved while the network eats everything comes
        // back ⊥-with-unreachable; were that cached negatively, the name
        // would keep denying after the network heals.
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        w.set_message_drop_rate(1.0);
        let (e, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!e.is_defined());
        assert!(!from_cache);
        assert_eq!(
            r.negative_stats().recorded,
            0,
            "transport ⊥ must not be cached"
        );
        // Batch path under total loss: same invariant.
        let names = vec![name.clone()];
        let out = r.resolve_batch(&mut w, client, root, &names);
        assert!(!out.entities[0].is_defined());
        assert_eq!(r.negative_stats().recorded, 0);
        // Network heals: the same resolver answers correctly.
        w.set_message_drop_rate(0.0);
        let (healed, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(healed.is_defined(), "no poisoned ⊥ survives the outage");
    }
}
