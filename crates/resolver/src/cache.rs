//! Client-side resolution caching — and its *incoherence*.
//!
//! Caching resolutions is the classic optimization of distributed naming
//! (DNS, Grapevine, …), and it reintroduces exactly the paper's problem in
//! temporal form: a cached entry is a context binding frozen at lookup
//! time, so after the authoritative binding changes, the cache and the
//! authority give the *same name different meanings*. [`CachingResolver`]
//! measures that staleness instead of hiding it.

use std::collections::BTreeMap;

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::CompoundName;
use naming_sim::world::World;

use crate::engine::{ProtocolEngine, ResolveStats};
use crate::wire::Mode;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the network.
    pub misses: u64,
    /// Cache entries explicitly invalidated.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit fraction.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A resolution client with an unbounded positive cache keyed on
/// `(start, name)`.
#[derive(Debug)]
pub struct CachingResolver {
    engine: ProtocolEngine,
    cache: BTreeMap<(ObjectId, CompoundName), Entity>,
    stats: CacheStats,
}

impl CachingResolver {
    /// Wraps a protocol engine.
    pub fn new(engine: ProtocolEngine) -> CachingResolver {
        CachingResolver {
            engine,
            cache: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// Mutable engine access (placement changes).
    pub fn engine_mut(&mut self) -> &mut ProtocolEngine {
        &mut self.engine
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Resolves through the cache: a hit answers instantly (zero virtual
    /// latency, zero messages); a miss goes to the network and populates
    /// the cache on success.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (Entity, bool) {
        let key = (start, name.clone());
        if let Some(&e) = self.cache.get(&key) {
            self.stats.hits += 1;
            return (e, true);
        }
        self.stats.misses += 1;
        let stats: ResolveStats = self.engine.resolve(world, client, start, name, mode);
        if stats.entity.is_defined() {
            self.cache.insert(key, stats.entity);
        }
        (stats.entity, false)
    }

    /// Drops one cache entry.
    pub fn invalidate(&mut self, start: ObjectId, name: &CompoundName) -> bool {
        let removed = self.cache.remove(&(start, name.clone())).is_some();
        if removed {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Drops the whole cache.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidations += self.cache.len() as u64;
        self.cache.clear();
    }

    /// Audits the cache against the authoritative naming state: returns
    /// the entries whose cached entity no longer matches what the
    /// authority would answer — the *incoherent* (stale) entries.
    pub fn stale_entries(&self, world: &World) -> Vec<(ObjectId, CompoundName, Entity)> {
        let mut out = Vec::new();
        for ((start, name), &cached) in &self.cache {
            let authoritative =
                naming_core::resolve::Resolver::new().resolve_entity(world.state(), *start, name);
            if authoritative != cached {
                out.push((*start, name.clone(), cached));
            }
        }
        out
    }

    /// Staleness rate: stale entries / cached entries (0 when empty).
    pub fn staleness(&self, world: &World) -> f64 {
        if self.cache.is_empty() {
            return 0.0;
        }
        self.stale_entries(world).len() as f64 / self.cache.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::NameService;
    use naming_core::name::Name;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    fn setup() -> (World, CachingResolver, ActivityId, ObjectId) {
        let mut w = World::new(81);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let sub = store::ensure_dir(w.state_mut(), root2, "export");
        store::create_file(w.state_mut(), sub, "data", vec![]);
        store::attach(w.state_mut(), root, "remote", sub, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, w.machine_root(m2), m2);
        svc.place_subtree(&w, root, m1);
        let client = w.spawn(m1, "client", None);
        let resolver = CachingResolver::new(ProtocolEngine::new(svc));
        (w, resolver, client, root)
    }

    fn mid(_m: MachineId) {}

    #[test]
    fn hits_after_first_miss() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (e1, from_cache1) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(e1.is_defined());
        assert!(!from_cache1);
        let t_after_miss = w.now();
        let (e2, from_cache2) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(e1, e2);
        assert!(from_cache2);
        assert_eq!(w.now(), t_after_miss, "hits cost no virtual time");
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
        assert!((r.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn failures_are_not_cached() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/nope").unwrap();
        let (e, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!e.is_defined());
        assert!(r.is_empty());
        // Second lookup goes to the network again.
        let (_, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
    }

    #[test]
    fn rebinding_makes_cache_stale_and_invalidations_heal() {
        let (mut w, mut r, client, root) = setup();
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let (old, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(r.staleness(&w), 0.0);
        // The authority rebinds "data" to a new object.
        let sub = match store::resolve_path(w.state(), root, "/remote") {
            naming_core::entity::Entity::Object(o) => o,
            other => panic!("remote missing: {other}"),
        };
        let fresh = w.state_mut().add_data_object("data-v2", vec![]);
        w.state_mut().bind(sub, Name::new("data"), fresh).unwrap();
        // The cached answer is now incoherent with the authority.
        assert_eq!(r.stale_entries(&w).len(), 1);
        assert!((r.staleness(&w) - 1.0).abs() < 1e-9);
        let (still_old, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(from_cache);
        assert_eq!(still_old, old, "stale cache keeps serving the old entity");
        // Invalidate → next lookup fetches the new binding.
        assert!(r.invalidate(root, &name));
        let (new, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(!from_cache);
        assert_eq!(new, naming_core::entity::Entity::Object(fresh));
        assert_eq!(r.staleness(&w), 0.0);
        assert_eq!(r.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut w, mut r, client, root) = setup();
        for p in ["/remote/data", "/remote"] {
            let name = CompoundName::parse_path(p).unwrap();
            r.resolve(&mut w, client, root, &name, Mode::Iterative);
        }
        assert_eq!(r.len(), 2);
        r.invalidate_all();
        assert!(r.is_empty());
        assert_eq!(r.stats().invalidations, 2);
        mid(MachineId(0));
    }

    #[test]
    fn invalidating_absent_entry_is_false() {
        let (_w, mut r, _client, root) = setup();
        let name = CompoundName::parse_path("/never").unwrap();
        assert!(!r.invalidate(root, &name));
    }
}
