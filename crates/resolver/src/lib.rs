//! # naming-resolver
//!
//! A distributed name-resolution protocol over the `naming-sim` substrate.
//!
//! The paper's model makes resolution a traversal of context objects; in a
//! distributed system those objects live on different machines, so
//! resolution is a protocol. This crate supplies the machinery the paper's
//! environment presupposes:
//!
//! * [`service::NameService`] — one name server per machine plus an
//!   authoritative *placement* of objects onto machines; servers resolve
//!   locally and refer across machine boundaries;
//! * [`wire`] — a hand-rolled binary framing of requests/replies carried
//!   through the simulator's message layer;
//! * [`engine::ProtocolEngine`] — drives lookups to completion in
//!   [`wire::Mode::Iterative`] (client chases referrals) or
//!   [`wire::Mode::Recursive`] (servers chase) mode, reporting messages,
//!   server work, and virtual-time latency;
//! * [`cache::CachingResolver`] — client-side caching, with *staleness
//!   audits*: a cached entry that no longer matches the authority is a
//!   name with two meanings — the paper's incoherence, in temporal form;
//! * [`concurrent::ConcurrentService`] (feature `parallel`) — a
//!   multi-worker serving front end over immutable copy-on-publish
//!   snapshots: readers never block, writes serialize through a publish
//!   step that swaps the shared `Arc`;
//! * [`runtime::PipelinedService`] — an event-driven reactor that
//!   multiplexes many in-flight batch resolutions as explicit
//!   state-machine continuations on one virtual timeline, removing the
//!   head-of-line blocking of a blocked-thread-per-batch pool while
//!   staying byte-identical across worker counts;
//! * [`observatory::StalenessObservatory`] — a coherence-SLO monitor
//!   grading observed staleness windows, false-⊥/unreachable rates, and
//!   publish-latency burn against declared thresholds, live.
//!
//! Experiment E14 (in `naming-bench`) uses this crate to measure
//! iterative-vs-recursive cost and cache staleness under binding churn.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coherence;
#[cfg(feature = "parallel")]
pub mod concurrent;
pub mod engine;
pub mod observatory;
pub mod referral;
pub mod runtime;
pub mod service;
pub mod wire;
#[cfg(feature = "telemetry")]
pub(crate) mod worker_metrics;
