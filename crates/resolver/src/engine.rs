//! The protocol engine: drives resolution requests through the simulated
//! network, with servers answering iteratively or chasing referrals
//! recursively.
//!
//! The simulator's processes are passive mailboxes; the engine supplies
//! the server logic, pumping the event queue and handling each delivered
//! frame. All scheduling remains deterministic.

use std::collections::BTreeMap;

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::CompoundName;
use naming_sim::message::Payload;
use naming_sim::time::Duration;
use naming_sim::world::World;

use crate::service::NameService;
use crate::wire::{BatchReply, BatchRequest, Mode, NameTrie, Outcome, Reply, Request, ZoneUpdate};

/// What a completed resolution cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolveStats {
    /// The final entity (possibly `⊥`).
    pub entity: Entity,
    /// Wire messages exchanged (requests + replies, client and servers).
    pub messages: u64,
    /// Distinct server answers involved (authoritative work units).
    pub servers_touched: u32,
    /// Virtual time from request to final answer.
    pub latency: Duration,
}

/// One referral a resolution followed, relative to the name the client
/// asked for: after `consumed` components, authority passed to `ctx` on
/// `machine`. This is exactly what a referral cache can store and later
/// validate against `ctx`'s generation counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferralHop {
    /// Components of the original name consumed before the handoff.
    pub consumed: usize,
    /// The machine that became authoritative.
    pub machine: naming_sim::topology::MachineId,
    /// The context object resolution continued from.
    pub ctx: ObjectId,
}

/// What a completed *batch* resolution cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchResolveStats {
    /// One entity per input name, in input order (possibly `⊥`).
    pub entities: Vec<Entity>,
    /// Wire messages exchanged.
    pub messages: u64,
    /// Virtual time from first request to last answer.
    pub latency: Duration,
    /// Protocol rounds (referral depth reached).
    pub rounds: u32,
    /// Distinct server answers involved.
    pub servers_touched: u32,
    /// Duplicate in-flight `(context, suffix)` resolutions that rode a
    /// shared wire exchange instead of their own.
    pub coalesced: u64,
    /// Server lookups avoided by shared-prefix compression.
    pub hops_saved: u64,
    /// Every referral any of the names followed, as `(consumed prefix of
    /// the original name, machine, context)` — deduplicated and sorted.
    pub referrals: Vec<(CompoundName, naming_sim::topology::MachineId, ObjectId)>,
}

#[derive(Debug, Default)]
struct ServerState {
    /// Recursive requests forwarded on behalf of someone: id → (original
    /// requester, work units accumulated before forwarding).
    pending: BTreeMap<u64, (ActivityId, u32)>,
}

/// Drives the resolution protocol over a [`World`].
#[derive(Debug)]
pub struct ProtocolEngine {
    service: NameService,
    server_state: BTreeMap<ActivityId, ServerState>,
    next_id: u64,
    /// Safety bound on pump iterations per resolve.
    max_steps: usize,
}

impl ProtocolEngine {
    /// Wraps a name service.
    pub fn new(service: NameService) -> ProtocolEngine {
        ProtocolEngine {
            service,
            server_state: BTreeMap::new(),
            next_id: 1,
            max_steps: 100_000,
        }
    }

    /// The underlying service.
    pub fn service(&self) -> &NameService {
        &self.service
    }

    /// Mutable access to the service (placement changes).
    pub fn service_mut(&mut self) -> &mut NameService {
        &mut self.service
    }

    /// Resolves `name` for `client`, starting at the context object
    /// `start`, using `mode`. Blocks (in virtual time) until the answer
    /// arrives.
    ///
    /// Unresolvable names (including protocol dead-ends such as unplaced
    /// objects or lost messages) yield `⊥` with the stats accumulated so
    /// far.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> ResolveStats {
        let (stats, _) = self.resolve_traced(world, client, start, name, mode);
        stats
    }

    /// Like [`ProtocolEngine::resolve`], but also reports every referral
    /// the walk followed — what a client-side referral cache records.
    /// Referrals are only observed by the client in iterative mode; a
    /// recursive resolve returns an empty hop list.
    pub fn resolve_traced(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (ResolveStats, Vec<ReferralHop>) {
        let (stats, hops) = self.resolve_impl(world, client, start, name, mode);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("protocol.resolves").bump();
            naming_telemetry::histogram!("protocol.latency_ticks").record(stats.latency.ticks());
            naming_telemetry::histogram!("protocol.messages").record(stats.messages);
            if naming_telemetry::recorder::is_active() {
                naming_telemetry::recorder::span(
                    "protocol",
                    format!("{mode:?} {name}"),
                    world.now().ticks() - stats.latency.ticks(),
                    world.now().ticks(),
                    vec![
                        (
                            "client".into(),
                            world.state().activity_label(client).to_string(),
                        ),
                        ("entity".into(), stats.entity.to_string()),
                        ("messages".into(), stats.messages.to_string()),
                        ("servers".into(), stats.servers_touched.to_string()),
                    ],
                );
            }
        }
        (stats, hops)
    }

    /// The protocol walk itself, free of observation hooks.
    fn resolve_impl(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (ResolveStats, Vec<ReferralHop>) {
        let t0 = world.now();
        let sent0 = world.trace().counter("sent");
        let mut servers_touched = 0u32;
        let mut hops = Vec::new();
        let mut target_machine = match self.service.machine_of_object(start) {
            Some(m) => m,
            None => {
                return (
                    ResolveStats {
                        entity: Entity::Undefined,
                        messages: 0,
                        servers_touched: 0,
                        latency: Duration::ZERO,
                    },
                    hops,
                )
            }
        };
        let mut current_start = start;
        let mut current_name = name.clone();

        'outer: loop {
            let id = self.next_id;
            self.next_id += 1;
            let server = self.service.server_on(target_machine);
            // With the `batch-wire` feature, iterative single resolves
            // ride the batch frames as a batch of one — same exchanges,
            // same answers, one wire format. Recursive mode keeps the
            // scalar frames (servers forward those on the client's
            // behalf).
            #[cfg(feature = "batch-wire")]
            let frame = if mode == Mode::Iterative {
                let (trie, _) = NameTrie::build(std::slice::from_ref(&current_name));
                BatchRequest {
                    id,
                    start: current_start,
                    trie,
                }
                .encode()
            } else {
                Request {
                    id,
                    start: current_start,
                    name: current_name.clone(),
                    mode,
                }
                .encode()
            };
            #[cfg(not(feature = "batch-wire"))]
            let frame = Request {
                id,
                start: current_start,
                name: current_name.clone(),
                mode,
            }
            .encode();
            world.send(client, server, vec![Payload::Bytes(frame)]);

            // Pump until the client hears back about this id.
            let mut steps = 0usize;
            let (outcome, touched) = loop {
                if let Some(r) = self.take_client_answer(world, client, id) {
                    break r;
                }
                if steps >= self.max_steps || !world.step() {
                    // Dead protocol (e.g. all messages lost).
                    break 'outer (
                        ResolveStats {
                            entity: Entity::Undefined,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                        },
                        hops,
                    );
                }
                steps += 1;
                self.drain_servers(world);
            };

            servers_touched += touched;
            match outcome {
                Outcome::Resolved(e) => {
                    break (
                        ResolveStats {
                            entity: e,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                        },
                        hops,
                    );
                }
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                } => {
                    // Iterative mode: the client chases the referral.
                    hops.push(ReferralHop {
                        consumed: name.len().saturating_sub(remaining.len()),
                        machine: next_machine,
                        ctx: next_ctx,
                    });
                    target_machine = next_machine;
                    current_start = next_ctx;
                    current_name = remaining;
                }
                Outcome::NotFound | Outcome::WrongServer => {
                    break (
                        ResolveStats {
                            entity: Entity::Undefined,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                        },
                        hops,
                    );
                }
            }
        }
    }

    /// Resolves many names from one start context in coalesced, batched
    /// wire exchanges: per protocol round, all names still in flight that
    /// continue from the same context object share a single
    /// [`BatchRequest`] (shared-prefix compressed), and duplicate
    /// `(context, suffix)` pairs ride one exchange. Answers match
    /// [`ProtocolEngine::resolve`] in iterative mode, name by name.
    pub fn resolve_batch(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> BatchResolveStats {
        let stats = self.resolve_batch_impl(world, client, start, names);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("protocol.batch_resolves").bump();
            naming_telemetry::counter!("protocol.hops_saved").add(stats.hops_saved);
            naming_telemetry::counter!("protocol.coalesced").add(stats.coalesced);
            naming_telemetry::histogram!("protocol.batch_size").record(names.len() as u64);
            naming_telemetry::histogram!("protocol.batch_messages").record(stats.messages);
        }
        stats
    }

    fn resolve_batch_impl(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> BatchResolveStats {
        let t0 = world.now();
        let sent0 = world.trace().counter("sent");
        let mut entities = vec![Entity::Undefined; names.len()];
        let mut referrals = Vec::new();
        let mut servers_touched = 0u32;
        let mut hops_saved = 0u64;
        let mut coalesced = 0u64;
        let mut rounds = 0u32;

        // In-flight work, grouped two levels deep: context to continue
        // from → remaining suffix → the input slots riding that suffix
        // (slot index, components of the slot's original name already
        // consumed). The suffix level is what single-flight coalescing
        // collapses; the context level is what shares a wire exchange.
        type Slots = Vec<(usize, usize)>;
        let mut pending: BTreeMap<ObjectId, BTreeMap<CompoundName, Slots>> = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            pending
                .entry(start)
                .or_default()
                .entry(n.clone())
                .or_default()
                .push((i, 0));
        }
        // Every referral consumes at least one component, so the round
        // count is bounded by the deepest name (+1 slack for the final
        // answer round).
        let max_rounds = names.iter().map(|n| n.len() as u32).max().unwrap_or(0) + 1;

        while !pending.is_empty() && rounds < max_rounds {
            rounds += 1;
            let round = std::mem::take(&mut pending);
            // One BatchRequest per continue-from context; all requests of
            // the round go out before any reply is awaited.
            struct Awaiting {
                entries: Vec<(CompoundName, Vec<(usize, usize)>)>,
                mapping: Vec<u32>,
            }
            let mut awaiting: BTreeMap<u64, Awaiting> = BTreeMap::new();
            for (ctx, group) in round {
                let Some(machine) = self.service.machine_of_object(ctx) else {
                    continue; // nobody authoritative: those slots stay ⊥
                };
                let entries: Vec<(CompoundName, Slots)> = group.into_iter().collect();
                for (_, slots) in &entries {
                    coalesced += slots.len() as u64 - 1;
                }
                let group_names: Vec<CompoundName> =
                    entries.iter().map(|(n, _)| n.clone()).collect();
                let (trie, mapping) = NameTrie::build(&group_names);
                let id = self.next_id;
                self.next_id += 1;
                let req = BatchRequest {
                    id,
                    start: ctx,
                    trie,
                };
                let server = self.service.server_on(machine);
                world.send(client, server, vec![Payload::Bytes(req.encode())]);
                awaiting.insert(id, Awaiting { entries, mapping });
            }

            // Pump until every request of the round is answered (or the
            // protocol is dead).
            let mut got: BTreeMap<u64, BatchReply> = BTreeMap::new();
            let mut steps = 0usize;
            loop {
                while let Some(msg) = world.receive(client) {
                    for part in &msg.parts {
                        let Payload::Bytes(b) = part else { continue };
                        if let Some(rep) = BatchReply::decode(b.clone()) {
                            if awaiting.contains_key(&rep.id) {
                                got.insert(rep.id, rep);
                            }
                        }
                    }
                }
                if got.len() == awaiting.len() {
                    break;
                }
                if steps >= self.max_steps || !world.step() {
                    break; // dead protocol: unanswered slots stay ⊥
                }
                steps += 1;
                self.drain_servers(world);
            }

            for (id, Awaiting { entries, mapping }) in awaiting {
                let Some(rep) = got.remove(&id) else { continue };
                servers_touched += rep.servers_touched;
                hops_saved += u64::from(rep.lookups_saved);
                for (k, (sent_name, slots)) in entries.into_iter().enumerate() {
                    let outcome = mapping.get(k).and_then(|&q| rep.outcomes.get(q as usize));
                    match outcome {
                        Some(Outcome::Resolved(e)) => {
                            for (slot, _) in slots {
                                entities[slot] = *e;
                            }
                        }
                        Some(Outcome::Referral {
                            next_machine,
                            next_ctx,
                            remaining,
                        }) => {
                            let step = sent_name.len().saturating_sub(remaining.len());
                            let next = pending.entry(*next_ctx).or_default();
                            let riders = next.entry(remaining.clone()).or_default();
                            for (slot, consumed) in slots {
                                let consumed = (consumed + step).min(names[slot].len());
                                if consumed > 0 {
                                    if let Ok(prefix) = CompoundName::new(
                                        names[slot].components()[..consumed].iter().copied(),
                                    ) {
                                        referrals.push((prefix, *next_machine, *next_ctx));
                                    }
                                }
                                riders.push((slot, consumed));
                            }
                        }
                        // NotFound / WrongServer / malformed reply: ⊥.
                        _ => {}
                    }
                }
            }
        }

        referrals.sort();
        referrals.dedup();
        BatchResolveStats {
            entities,
            messages: world.trace().counter("sent") - sent0,
            latency: world.now() - t0,
            rounds,
            servers_touched,
            coalesced,
            hops_saved,
            referrals,
        }
    }

    /// Publishes a replicated zone's current bindings: the primary's
    /// server sends a [`ZoneUpdate`] frame to every secondary. The copies
    /// converge when the frames arrive (after network latency) — drive the
    /// queue with [`ProtocolEngine::pump_idle`] or any `resolve`.
    ///
    /// Returns the number of updates sent.
    pub fn publish_zone(&mut self, world: &mut World, zone: ObjectId) -> usize {
        let servers = self.service.zone_servers(zone);
        let Some((&primary, secondaries)) = servers.split_first() else {
            return 0;
        };
        let Some(ctx) = world.state().context(zone) else {
            return 0;
        };
        let update = ZoneUpdate {
            zone,
            bindings: ctx.iter().collect(),
        };
        let from = self.service.server_on(primary);
        let mut sent = 0;
        for &m in secondaries {
            let to = self.service.server_on(m);
            world.send(from, to, vec![Payload::Bytes(update.encode())]);
            sent += 1;
        }
        sent
    }

    /// Drains the event queue, letting servers process whatever is in
    /// flight (replica updates, stray replies). Returns the number of
    /// events processed.
    pub fn pump_idle(&mut self, world: &mut World) -> usize {
        let mut n = 0;
        while world.step() {
            n += 1;
            self.drain_servers(world);
        }
        n
    }

    /// Pops the client's answer for `id`, if one is waiting — a scalar
    /// [`Reply`] or a batch-of-one [`BatchReply`], whichever frame the
    /// server answered with.
    fn take_client_answer(
        &mut self,
        world: &mut World,
        client: ActivityId,
        id: u64,
    ) -> Option<(Outcome, u32)> {
        // Handle every waiting message; replies for other ids are dropped
        // (single-outstanding-request client).
        while let Some(msg) = world.receive(client) {
            for part in &msg.parts {
                if let Payload::Bytes(b) = part {
                    if let Some(r) = Reply::decode(b.clone()) {
                        if r.id == id {
                            return Some((r.outcome, r.servers_touched));
                        }
                    } else if let Some(r) = BatchReply::decode(b.clone()) {
                        if r.id == id {
                            let outcome =
                                r.outcomes.into_iter().next().unwrap_or(Outcome::NotFound);
                            return Some((outcome, r.servers_touched));
                        }
                    }
                }
            }
        }
        None
    }

    /// Processes every message waiting in any server's mailbox.
    fn drain_servers(&mut self, world: &mut World) {
        let servers: Vec<(naming_sim::topology::MachineId, ActivityId)> =
            self.service.servers().collect();
        for (machine, server) in servers {
            while let Some(msg) = world.receive(server) {
                for part in &msg.parts {
                    let Payload::Bytes(b) = part else { continue };
                    if let Some(req) = Request::decode(b.clone()) {
                        self.handle_request(world, machine, server, msg.from, req);
                    } else if let Some(req) = BatchRequest::decode(b.clone()) {
                        self.handle_batch_request(world, machine, server, msg.from, req);
                    } else if let Some(rep) = Reply::decode(b.clone()) {
                        self.handle_forwarded_reply(world, server, rep);
                    } else if let Some(update) = ZoneUpdate::decode(b.clone()) {
                        self.handle_zone_update(world, machine, update);
                    }
                }
            }
        }
    }

    fn handle_request(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        server: ActivityId,
        requester: ActivityId,
        req: Request,
    ) {
        let outcome = self
            .service
            .local_resolve(world, machine, req.start, &req.name);
        match (&outcome, req.mode) {
            (
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                },
                Mode::Recursive,
            ) => {
                // Chase the referral on the requester's behalf.
                let next_server = self.service.server_on(*next_machine);
                let fwd = Request {
                    id: req.id,
                    start: *next_ctx,
                    name: remaining.clone(),
                    mode: Mode::Recursive,
                };
                self.server_state
                    .entry(server)
                    .or_default()
                    .pending
                    .insert(req.id, (requester, 1));
                world.send(server, next_server, vec![Payload::Bytes(fwd.encode())]);
            }
            _ => {
                let reply = Reply {
                    id: req.id,
                    outcome,
                    servers_touched: 1,
                };
                world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
            }
        }
    }

    /// Answers a [`BatchRequest`]: one trie walk, one [`BatchReply`].
    /// Batches are always client-driven; there is no recursive variant to
    /// forward.
    fn handle_batch_request(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        server: ActivityId,
        requester: ActivityId,
        req: BatchRequest,
    ) {
        let (outcomes, lookups_saved) = self
            .service
            .local_resolve_batch(world, machine, req.start, &req.trie);
        let reply = BatchReply {
            id: req.id,
            outcomes,
            servers_touched: 1,
            lookups_saved,
        };
        world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
    }

    fn handle_zone_update(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        update: ZoneUpdate,
    ) {
        let Some(copy) = self.service.zone_copy_on(update.zone, machine) else {
            return;
        };
        if copy == update.zone {
            return; // the primary ignores its own echo
        }
        if let Some(ctx) = world.state_mut().context_mut(copy) {
            let fresh: naming_core::context::Context = update.bindings.iter().copied().collect();
            *ctx = fresh;
        }
    }

    fn handle_forwarded_reply(&mut self, world: &mut World, server: ActivityId, rep: Reply) {
        let Some(state) = self.server_state.get_mut(&server) else {
            return;
        };
        let Some((requester, own_work)) = state.pending.remove(&rep.id) else {
            return;
        };
        let forwarded = Reply {
            id: rep.id,
            outcome: rep.outcome,
            servers_touched: rep.servers_touched + own_work,
        };
        world.send(server, requester, vec![Payload::Bytes(forwarded.encode())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    /// A chain of three machines: m0 hosts the root, each subsequent hop's
    /// subtree lives on the next machine. Resolving `/hop1/hop2/leaf`
    /// crosses all three.
    fn chain_world() -> (World, NameService, Vec<MachineId>, ObjectId, Entity) {
        let mut w = World::new(71);
        let net = w.add_network("n");
        let machines: Vec<MachineId> = (0..3)
            .map(|i| w.add_machine(format!("m{i}"), net))
            .collect();
        // Build: root(m0) -> hop1(m1) -> hop2(m2) -> leaf
        let root = w.machine_root(machines[0]);
        let root1 = w.machine_root(machines[1]);
        let root2 = w.machine_root(machines[2]);
        let hop1 = store::ensure_dir(w.state_mut(), root1, "self1");
        let hop2 = store::ensure_dir(w.state_mut(), root2, "self2");
        store::attach(w.state_mut(), root, "hop1", hop1, false);
        store::attach(w.state_mut(), hop1, "hop2", hop2, false);
        let leaf = store::create_file(w.state_mut(), hop2, "leaf", vec![]);
        let mut svc = NameService::install(&mut w, &machines);
        // Place each machine's own tree before any tree that grafts it:
        // first-placement-wins means graft sources must claim their objects
        // first.
        for &m in machines.iter().rev() {
            let r = w.machine_root(m);
            svc.place_subtree(&w, r, m);
        }
        // Placement sanity: hop1 on m1, hop2 on m2.
        assert_eq!(svc.machine_of_object(hop1), Some(machines[1]));
        assert_eq!(svc.machine_of_object(hop2), Some(machines[2]));
        (w, svc, machines, root, Entity::Object(leaf))
    }

    #[test]
    fn iterative_resolution_crosses_machines() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Iterative: 3 request/reply pairs.
        assert_eq!(stats.messages, 6);
        assert!(stats.latency.ticks() > 0);
    }

    #[test]
    fn recursive_resolution_returns_one_answer() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Recursive: req m0->srv0->srv1->srv2, replies back up: 6 messages,
        // but only ONE client round-trip.
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn single_machine_resolution_is_one_round_trip() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(stats.entity.is_defined());
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.servers_touched, 1);
    }

    #[test]
    fn missing_names_resolve_to_bottom() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/nope").unwrap();
        for mode in [Mode::Iterative, Mode::Recursive] {
            let stats = engine.resolve(&mut w, client, root, &name, mode);
            assert_eq!(stats.entity, Entity::Undefined);
        }
    }

    #[test]
    fn unplaced_start_fails_cleanly() {
        let (mut w, svc, machines, _, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let orphan = w.state_mut().add_context_object("orphan");
        let name = CompoundName::parse_path("/x").unwrap();
        let stats = engine.resolve(&mut w, client, orphan, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn lost_messages_end_in_bottom_not_hang() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        w.set_message_drop_rate(1.0);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
    }

    #[test]
    fn zone_updates_propagate_with_latency() {
        use naming_core::name::Name;
        // Primary on m2 (owns `rem`), replica on m1.
        let mut w = World::new(72);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root1 = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let zone = store::ensure_dir(w.state_mut(), root2, "zone");
        let _old = store::create_file(w.state_mut(), zone, "rec", vec![1]);
        store::attach(w.state_mut(), root1, "far", zone, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root1, m1);
        let copy = svc.replicate_zone(&mut w, zone, m1);
        let mut engine = ProtocolEngine::new(svc);

        // Primary rebinding opens the window.
        let fresh = w.state_mut().add_data_object("rec-v2", vec![2]);
        w.state_mut().bind(zone, Name::new("rec"), fresh).unwrap();
        assert_eq!(
            engine.service().replica_divergence(&w, zone).len(),
            1,
            "window open"
        );
        // Publish; before pumping, the copy is still stale.
        let sent = engine.publish_zone(&mut w, zone);
        assert_eq!(sent, 1);
        assert!(!engine.service().replica_divergence(&w, zone).is_empty());
        let t0 = w.now();
        let events = engine.pump_idle(&mut w);
        assert!(events >= 1);
        // Window length equals the network latency between the servers.
        let window = (w.now() - t0).ticks();
        assert_eq!(window, w.topology().latency_model().same_network);
        assert!(engine.service().replica_divergence(&w, zone).is_empty());
        // And the copy answers the new binding.
        assert_eq!(
            w.state().lookup(copy, Name::new("rec")),
            naming_core::entity::Entity::Object(fresh)
        );
    }

    #[test]
    fn publish_without_replicas_is_a_no_op() {
        let (mut w, svc, machines, root, _) = chain_world();
        let mut engine = ProtocolEngine::new(svc);
        assert_eq!(engine.publish_zone(&mut w, root), 0);
        assert_eq!(engine.pump_idle(&mut w), 0);
        let _ = machines;
    }

    #[test]
    fn batch_resolution_matches_singles_with_fewer_messages() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let names: Vec<CompoundName> = [
            "/hop1/hop2/leaf",
            "/hop1/hop2",
            "/hop1",
            "/hop1/nope",
            "/hop1/hop2/leaf", // duplicate: coalesces
        ]
        .iter()
        .map(|p| CompoundName::parse_path(p).unwrap())
        .collect();

        // Ground truth: each name alone.
        let mut single_msgs = 0u64;
        let singles: Vec<Entity> = names
            .iter()
            .map(|n| {
                let s = engine.resolve(&mut w, client, root, n, Mode::Iterative);
                single_msgs += s.messages;
                s.entity
            })
            .collect();
        assert_eq!(singles[0], leaf);

        let batch = engine.resolve_batch(&mut w, client, root, &names);
        assert_eq!(batch.entities, singles, "batch must agree name-by-name");
        // Three rounds (one per machine crossed), two messages each.
        assert_eq!(batch.rounds, 3);
        assert_eq!(batch.messages, 6);
        assert!(
            batch.messages * 3 <= single_msgs,
            "batched {} vs singles {}",
            batch.messages,
            single_msgs
        );
        // The duplicate name coalesced in every one of the three rounds
        // (one avoided exchange per round).
        assert_eq!(batch.coalesced, 3);
        assert!(batch.hops_saved > 0, "shared prefixes saved server work");
        // The deepest referral the batch followed is recordable: the
        // prefix "/hop1/hop2" handed authority to machine 2.
        assert!(batch
            .referrals
            .iter()
            .any(|(p, m, _)| p.to_string() == "/hop1/hop2" && *m == machines[2]));
    }

    #[test]
    fn batch_of_one_matches_single_resolve() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let single = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        let batch = engine.resolve_batch(&mut w, client, root, std::slice::from_ref(&name));
        assert_eq!(batch.entities, vec![leaf]);
        assert_eq!(batch.messages, single.messages);
        assert_eq!(batch.latency, single.latency);
        assert_eq!(batch.servers_touched, single.servers_touched);
    }

    #[test]
    fn batch_with_lost_messages_ends_in_bottom_not_hang() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        w.set_message_drop_rate(1.0);
        let names = vec![
            CompoundName::parse_path("/hop1/hop2/leaf").unwrap(),
            CompoundName::parse_path("/hop1").unwrap(),
        ];
        let batch = engine.resolve_batch(&mut w, client, root, &names);
        assert_eq!(batch.entities, vec![Entity::Undefined, Entity::Undefined]);
    }

    #[test]
    fn batch_from_unplaced_start_is_all_bottom() {
        let (mut w, svc, machines, _, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let orphan = w.state_mut().add_context_object("orphan");
        let names = vec![CompoundName::parse_path("/x").unwrap()];
        let batch = engine.resolve_batch(&mut w, client, orphan, &names);
        assert_eq!(batch.entities, vec![Entity::Undefined]);
        assert_eq!(batch.messages, 0);
    }

    #[test]
    fn traced_resolve_reports_the_referral_chain() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let (stats, hops) = engine.resolve_traced(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].consumed, 2); // "/", "hop1" consumed
        assert_eq!(hops[0].machine, machines[1]);
        assert_eq!(hops[1].consumed, 3);
        assert_eq!(hops[1].machine, machines[2]);
        // Recursive mode: the client never sees referrals.
        let (_, rhops) = engine.resolve_traced(&mut w, client, root, &name, Mode::Recursive);
        assert!(rhops.is_empty());
    }

    #[test]
    fn recursive_latency_beats_iterative_for_remote_clients() {
        // A client far from the chain benefits from recursion: referral
        // chasing pays the client<->server distance each hop.
        let (mut w, svc, machines, root, leaf) = chain_world();
        // Client on a separate network, far from everything.
        let far_net = w.add_network("far");
        let far_machine = w.add_machine("far-host", far_net);
        let client = w.spawn(far_machine, "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let it = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        let rec = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(it.entity, leaf);
        assert_eq!(rec.entity, leaf);
        assert!(
            rec.latency < it.latency,
            "recursive {:?} should beat iterative {:?}",
            rec.latency,
            it.latency
        );
        let _ = machines;
    }
}
