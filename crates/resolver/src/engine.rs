//! The protocol engine: drives resolution requests through the simulated
//! network, with servers answering iteratively or chasing referrals
//! recursively.
//!
//! The simulator's processes are passive mailboxes; the engine supplies
//! the server logic, pumping the event queue and handling each delivered
//! frame. All scheduling remains deterministic.

use std::collections::BTreeMap;

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::CompoundName;
use naming_sim::message::Payload;
use naming_sim::time::Duration;
use naming_sim::world::World;

use crate::service::NameService;
use crate::wire::{Mode, Outcome, Reply, Request, ZoneUpdate};

/// What a completed resolution cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolveStats {
    /// The final entity (possibly `⊥`).
    pub entity: Entity,
    /// Wire messages exchanged (requests + replies, client and servers).
    pub messages: u64,
    /// Distinct server answers involved (authoritative work units).
    pub servers_touched: u32,
    /// Virtual time from request to final answer.
    pub latency: Duration,
}

#[derive(Debug, Default)]
struct ServerState {
    /// Recursive requests forwarded on behalf of someone: id → (original
    /// requester, work units accumulated before forwarding).
    pending: BTreeMap<u64, (ActivityId, u32)>,
}

/// Drives the resolution protocol over a [`World`].
#[derive(Debug)]
pub struct ProtocolEngine {
    service: NameService,
    server_state: BTreeMap<ActivityId, ServerState>,
    next_id: u64,
    /// Safety bound on pump iterations per resolve.
    max_steps: usize,
}

impl ProtocolEngine {
    /// Wraps a name service.
    pub fn new(service: NameService) -> ProtocolEngine {
        ProtocolEngine {
            service,
            server_state: BTreeMap::new(),
            next_id: 1,
            max_steps: 100_000,
        }
    }

    /// The underlying service.
    pub fn service(&self) -> &NameService {
        &self.service
    }

    /// Mutable access to the service (placement changes).
    pub fn service_mut(&mut self) -> &mut NameService {
        &mut self.service
    }

    /// Resolves `name` for `client`, starting at the context object
    /// `start`, using `mode`. Blocks (in virtual time) until the answer
    /// arrives.
    ///
    /// Unresolvable names (including protocol dead-ends such as unplaced
    /// objects or lost messages) yield `⊥` with the stats accumulated so
    /// far.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> ResolveStats {
        let stats = self.resolve_impl(world, client, start, name, mode);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("protocol.resolves").bump();
            naming_telemetry::histogram!("protocol.latency_ticks").record(stats.latency.ticks());
            naming_telemetry::histogram!("protocol.messages").record(stats.messages);
            if naming_telemetry::recorder::is_active() {
                naming_telemetry::recorder::span(
                    "protocol",
                    format!("{mode:?} {name}"),
                    world.now().ticks() - stats.latency.ticks(),
                    world.now().ticks(),
                    vec![
                        (
                            "client".into(),
                            world.state().activity_label(client).to_string(),
                        ),
                        ("entity".into(), stats.entity.to_string()),
                        ("messages".into(), stats.messages.to_string()),
                        ("servers".into(), stats.servers_touched.to_string()),
                    ],
                );
            }
        }
        stats
    }

    /// The protocol walk itself, free of observation hooks.
    fn resolve_impl(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> ResolveStats {
        let t0 = world.now();
        let sent0 = world.trace().counter("sent");
        let mut servers_touched = 0u32;
        let mut target_machine = match self.service.machine_of_object(start) {
            Some(m) => m,
            None => {
                return ResolveStats {
                    entity: Entity::Undefined,
                    messages: 0,
                    servers_touched: 0,
                    latency: Duration::ZERO,
                }
            }
        };
        let mut current_start = start;
        let mut current_name = name.clone();

        'outer: loop {
            let id = self.next_id;
            self.next_id += 1;
            let req = Request {
                id,
                start: current_start,
                name: current_name.clone(),
                mode,
            };
            let server = self.service.server_on(target_machine);
            world.send(client, server, vec![Payload::Bytes(req.encode())]);

            // Pump until the client hears back about this id.
            let mut steps = 0usize;
            let reply = loop {
                if let Some(r) = self.take_client_reply(world, client, id) {
                    break r;
                }
                if steps >= self.max_steps || !world.step() {
                    // Dead protocol (e.g. all messages lost).
                    break 'outer ResolveStats {
                        entity: Entity::Undefined,
                        messages: world.trace().counter("sent") - sent0,
                        servers_touched,
                        latency: world.now() - t0,
                    };
                }
                steps += 1;
                self.drain_servers(world);
            };

            servers_touched += reply.servers_touched;
            match reply.outcome {
                Outcome::Resolved(e) => {
                    break ResolveStats {
                        entity: e,
                        messages: world.trace().counter("sent") - sent0,
                        servers_touched,
                        latency: world.now() - t0,
                    };
                }
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                } => {
                    // Iterative mode: the client chases the referral.
                    target_machine = next_machine;
                    current_start = next_ctx;
                    current_name = remaining;
                }
                Outcome::NotFound | Outcome::WrongServer => {
                    break ResolveStats {
                        entity: Entity::Undefined,
                        messages: world.trace().counter("sent") - sent0,
                        servers_touched,
                        latency: world.now() - t0,
                    };
                }
            }
        }
    }

    /// Publishes a replicated zone's current bindings: the primary's
    /// server sends a [`ZoneUpdate`] frame to every secondary. The copies
    /// converge when the frames arrive (after network latency) — drive the
    /// queue with [`ProtocolEngine::pump_idle`] or any `resolve`.
    ///
    /// Returns the number of updates sent.
    pub fn publish_zone(&mut self, world: &mut World, zone: ObjectId) -> usize {
        let servers = self.service.zone_servers(zone);
        let Some((&primary, secondaries)) = servers.split_first() else {
            return 0;
        };
        let Some(ctx) = world.state().context(zone) else {
            return 0;
        };
        let update = ZoneUpdate {
            zone,
            bindings: ctx.iter().collect(),
        };
        let from = self.service.server_on(primary);
        let mut sent = 0;
        for &m in secondaries {
            let to = self.service.server_on(m);
            world.send(from, to, vec![Payload::Bytes(update.encode())]);
            sent += 1;
        }
        sent
    }

    /// Drains the event queue, letting servers process whatever is in
    /// flight (replica updates, stray replies). Returns the number of
    /// events processed.
    pub fn pump_idle(&mut self, world: &mut World) -> usize {
        let mut n = 0;
        while world.step() {
            n += 1;
            self.drain_servers(world);
        }
        n
    }

    /// Pops the client's reply for `id`, if one is waiting.
    fn take_client_reply(
        &mut self,
        world: &mut World,
        client: ActivityId,
        id: u64,
    ) -> Option<Reply> {
        // Handle every waiting message; replies for other ids are dropped
        // (single-outstanding-request client).
        while let Some(msg) = world.receive(client) {
            for part in &msg.parts {
                if let Payload::Bytes(b) = part {
                    if let Some(r) = Reply::decode(b.clone()) {
                        if r.id == id {
                            return Some(r);
                        }
                    }
                }
            }
        }
        None
    }

    /// Processes every message waiting in any server's mailbox.
    fn drain_servers(&mut self, world: &mut World) {
        let servers: Vec<(naming_sim::topology::MachineId, ActivityId)> =
            self.service.servers().collect();
        for (machine, server) in servers {
            while let Some(msg) = world.receive(server) {
                for part in &msg.parts {
                    let Payload::Bytes(b) = part else { continue };
                    if let Some(req) = Request::decode(b.clone()) {
                        self.handle_request(world, machine, server, msg.from, req);
                    } else if let Some(rep) = Reply::decode(b.clone()) {
                        self.handle_forwarded_reply(world, server, rep);
                    } else if let Some(update) = ZoneUpdate::decode(b.clone()) {
                        self.handle_zone_update(world, machine, update);
                    }
                }
            }
        }
    }

    fn handle_request(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        server: ActivityId,
        requester: ActivityId,
        req: Request,
    ) {
        let outcome = self
            .service
            .local_resolve(world, machine, req.start, &req.name);
        match (&outcome, req.mode) {
            (
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                },
                Mode::Recursive,
            ) => {
                // Chase the referral on the requester's behalf.
                let next_server = self.service.server_on(*next_machine);
                let fwd = Request {
                    id: req.id,
                    start: *next_ctx,
                    name: remaining.clone(),
                    mode: Mode::Recursive,
                };
                self.server_state
                    .entry(server)
                    .or_default()
                    .pending
                    .insert(req.id, (requester, 1));
                world.send(server, next_server, vec![Payload::Bytes(fwd.encode())]);
            }
            _ => {
                let reply = Reply {
                    id: req.id,
                    outcome,
                    servers_touched: 1,
                };
                world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
            }
        }
    }

    fn handle_zone_update(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        update: ZoneUpdate,
    ) {
        let Some(copy) = self.service.zone_copy_on(update.zone, machine) else {
            return;
        };
        if copy == update.zone {
            return; // the primary ignores its own echo
        }
        if let Some(ctx) = world.state_mut().context_mut(copy) {
            let fresh: naming_core::context::Context = update.bindings.iter().copied().collect();
            *ctx = fresh;
        }
    }

    fn handle_forwarded_reply(&mut self, world: &mut World, server: ActivityId, rep: Reply) {
        let Some(state) = self.server_state.get_mut(&server) else {
            return;
        };
        let Some((requester, own_work)) = state.pending.remove(&rep.id) else {
            return;
        };
        let forwarded = Reply {
            id: rep.id,
            outcome: rep.outcome,
            servers_touched: rep.servers_touched + own_work,
        };
        world.send(server, requester, vec![Payload::Bytes(forwarded.encode())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    /// A chain of three machines: m0 hosts the root, each subsequent hop's
    /// subtree lives on the next machine. Resolving `/hop1/hop2/leaf`
    /// crosses all three.
    fn chain_world() -> (World, NameService, Vec<MachineId>, ObjectId, Entity) {
        let mut w = World::new(71);
        let net = w.add_network("n");
        let machines: Vec<MachineId> = (0..3)
            .map(|i| w.add_machine(format!("m{i}"), net))
            .collect();
        // Build: root(m0) -> hop1(m1) -> hop2(m2) -> leaf
        let root = w.machine_root(machines[0]);
        let root1 = w.machine_root(machines[1]);
        let root2 = w.machine_root(machines[2]);
        let hop1 = store::ensure_dir(w.state_mut(), root1, "self1");
        let hop2 = store::ensure_dir(w.state_mut(), root2, "self2");
        store::attach(w.state_mut(), root, "hop1", hop1, false);
        store::attach(w.state_mut(), hop1, "hop2", hop2, false);
        let leaf = store::create_file(w.state_mut(), hop2, "leaf", vec![]);
        let mut svc = NameService::install(&mut w, &machines);
        // Place each machine's own tree before any tree that grafts it:
        // first-placement-wins means graft sources must claim their objects
        // first.
        for &m in machines.iter().rev() {
            let r = w.machine_root(m);
            svc.place_subtree(&w, r, m);
        }
        // Placement sanity: hop1 on m1, hop2 on m2.
        assert_eq!(svc.machine_of_object(hop1), Some(machines[1]));
        assert_eq!(svc.machine_of_object(hop2), Some(machines[2]));
        (w, svc, machines, root, Entity::Object(leaf))
    }

    #[test]
    fn iterative_resolution_crosses_machines() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Iterative: 3 request/reply pairs.
        assert_eq!(stats.messages, 6);
        assert!(stats.latency.ticks() > 0);
    }

    #[test]
    fn recursive_resolution_returns_one_answer() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Recursive: req m0->srv0->srv1->srv2, replies back up: 6 messages,
        // but only ONE client round-trip.
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn single_machine_resolution_is_one_round_trip() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(stats.entity.is_defined());
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.servers_touched, 1);
    }

    #[test]
    fn missing_names_resolve_to_bottom() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/nope").unwrap();
        for mode in [Mode::Iterative, Mode::Recursive] {
            let stats = engine.resolve(&mut w, client, root, &name, mode);
            assert_eq!(stats.entity, Entity::Undefined);
        }
    }

    #[test]
    fn unplaced_start_fails_cleanly() {
        let (mut w, svc, machines, _, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let orphan = w.state_mut().add_context_object("orphan");
        let name = CompoundName::parse_path("/x").unwrap();
        let stats = engine.resolve(&mut w, client, orphan, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn lost_messages_end_in_bottom_not_hang() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        w.set_message_drop_rate(1.0);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
    }

    #[test]
    fn zone_updates_propagate_with_latency() {
        use naming_core::name::Name;
        // Primary on m2 (owns `rem`), replica on m1.
        let mut w = World::new(72);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root1 = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let zone = store::ensure_dir(w.state_mut(), root2, "zone");
        let _old = store::create_file(w.state_mut(), zone, "rec", vec![1]);
        store::attach(w.state_mut(), root1, "far", zone, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root1, m1);
        let copy = svc.replicate_zone(&mut w, zone, m1);
        let mut engine = ProtocolEngine::new(svc);

        // Primary rebinding opens the window.
        let fresh = w.state_mut().add_data_object("rec-v2", vec![2]);
        w.state_mut().bind(zone, Name::new("rec"), fresh).unwrap();
        assert_eq!(
            engine.service().replica_divergence(&w, zone).len(),
            1,
            "window open"
        );
        // Publish; before pumping, the copy is still stale.
        let sent = engine.publish_zone(&mut w, zone);
        assert_eq!(sent, 1);
        assert!(!engine.service().replica_divergence(&w, zone).is_empty());
        let t0 = w.now();
        let events = engine.pump_idle(&mut w);
        assert!(events >= 1);
        // Window length equals the network latency between the servers.
        let window = (w.now() - t0).ticks();
        assert_eq!(window, w.topology().latency_model().same_network);
        assert!(engine.service().replica_divergence(&w, zone).is_empty());
        // And the copy answers the new binding.
        assert_eq!(
            w.state().lookup(copy, Name::new("rec")),
            naming_core::entity::Entity::Object(fresh)
        );
    }

    #[test]
    fn publish_without_replicas_is_a_no_op() {
        let (mut w, svc, machines, root, _) = chain_world();
        let mut engine = ProtocolEngine::new(svc);
        assert_eq!(engine.publish_zone(&mut w, root), 0);
        assert_eq!(engine.pump_idle(&mut w), 0);
        let _ = machines;
    }

    #[test]
    fn recursive_latency_beats_iterative_for_remote_clients() {
        // A client far from the chain benefits from recursion: referral
        // chasing pays the client<->server distance each hop.
        let (mut w, svc, machines, root, leaf) = chain_world();
        // Client on a separate network, far from everything.
        let far_net = w.add_network("far");
        let far_machine = w.add_machine("far-host", far_net);
        let client = w.spawn(far_machine, "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let it = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        let rec = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(it.entity, leaf);
        assert_eq!(rec.entity, leaf);
        assert!(
            rec.latency < it.latency,
            "recursive {:?} should beat iterative {:?}",
            rec.latency,
            it.latency
        );
        let _ = machines;
    }
}
