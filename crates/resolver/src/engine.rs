//! The protocol engine: drives resolution requests through the simulated
//! network, with servers answering iteratively or chasing referrals
//! recursively.
//!
//! The simulator's processes are passive mailboxes; the engine supplies
//! the server logic, pumping the event queue and handling each delivered
//! frame. All scheduling remains deterministic.

use std::collections::{BTreeMap, BTreeSet};

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::lease::ZoneSerial;
use naming_core::name::{CompoundName, Name};
use naming_core::state::SystemState;
use naming_sim::message::Payload;
use naming_sim::time::Duration;
use naming_sim::topology::MachineId;
use naming_sim::world::World;

use crate::coherence::ZoneJournal;
use crate::service::NameService;
use crate::wire::{
    BatchReply, BatchRequest, Mode, NameTrie, Outcome, Reply, Request, ShardDelta, ZoneChange,
    ZoneDelta, ZoneDeltaRequest, ZoneUpdate,
};

/// What a completed resolution cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolveStats {
    /// The final entity (possibly `⊥`).
    pub entity: Entity,
    /// Wire messages exchanged (requests + replies, client and servers).
    pub messages: u64,
    /// Distinct server answers involved (authoritative work units).
    pub servers_touched: u32,
    /// Virtual time from request to final answer.
    pub latency: Duration,
    /// True when the answer is a *transport* verdict, not a naming one:
    /// messages were lost, deadlines exhausted, or no authority could be
    /// addressed. The paper's ⊥ means "unbound in the context" (§2); an
    /// unreachable authority says nothing about the binding, so callers
    /// (in particular ⊥-caching layers) must treat the two differently.
    pub unreachable: bool,
}

/// Deterministic deadline/retransmission schedule for one logical request.
///
/// Timeouts live on the `VirtualTime` axis as sim wake events, so a retried
/// run is exactly as reproducible as a lossless one. The backoff doubles per
/// attempt up to `2^backoff_cap`, plus a jitter term derived by hashing
/// `(request id, attempt)` — seeded, consuming no RNG draws, so enabling the
/// retry layer cannot perturb fault injection decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-attempt deadline in ticks. The default (256) covers the
    /// stock latency model's worst round trip (2 × 100 cross-network)
    /// with headroom.
    pub base_timeout_ticks: u64,
    /// Total send attempts per hop before giving up with
    /// [`Outcome::Unreachable`].
    pub max_attempts: u32,
    /// Backoff stops doubling after this many attempts.
    pub backoff_cap: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_timeout_ticks: 256,
            max_attempts: 8,
            backoff_cap: 6,
        }
    }
}

impl RetryPolicy {
    /// Deadline for `attempt` (0-based) of request `id`, in ticks.
    pub fn timeout_ticks(&self, id: u64, attempt: u32) -> u64 {
        let backoff = self.base_timeout_ticks << attempt.min(self.backoff_cap);
        let span = (self.base_timeout_ticks / 4).max(1);
        backoff + jitter(id, attempt) % span
    }
}

/// Splitmix64-style hash of `(id, attempt)`: deterministic jitter that
/// never touches the world's RNG stream.
fn jitter(id: u64, attempt: u32) -> u64 {
    let mut z = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Running totals of the retry layer's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Requests re-sent after a deadline expired.
    pub retransmissions: u64,
    /// Replies that arrived for a superseded (timed-out) attempt. Counted,
    /// never acted on: the retransmitted attempt's answer wins.
    pub late_replies: u64,
    /// Attempts redirected to a replica of the addressed context.
    pub failovers: u64,
    /// Hops abandoned after `max_attempts` deadlines.
    pub exhausted: u64,
}

/// One referral a resolution followed, relative to the name the client
/// asked for: after `consumed` components, authority passed to `ctx` on
/// `machine`. This is exactly what a referral cache can store and later
/// validate against `ctx`'s generation counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferralHop {
    /// Components of the original name consumed before the handoff.
    pub consumed: usize,
    /// The machine that became authoritative.
    pub machine: naming_sim::topology::MachineId,
    /// The context object resolution continued from.
    pub ctx: ObjectId,
}

/// What a completed *batch* resolution cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchResolveStats {
    /// One entity per input name, in input order (possibly `⊥`).
    pub entities: Vec<Entity>,
    /// Wire messages exchanged.
    pub messages: u64,
    /// Virtual time from first request to last answer.
    pub latency: Duration,
    /// Protocol rounds (referral depth reached).
    pub rounds: u32,
    /// Distinct server answers involved.
    pub servers_touched: u32,
    /// Duplicate in-flight `(context, suffix)` resolutions that rode a
    /// shared wire exchange instead of their own.
    pub coalesced: u64,
    /// Server lookups avoided by shared-prefix compression.
    pub hops_saved: u64,
    /// Every referral any of the names followed, as `(consumed prefix of
    /// the original name, machine, context)` — deduplicated and sorted.
    pub referrals: Vec<(CompoundName, naming_sim::topology::MachineId, ObjectId)>,
    /// Per input slot: true when the slot's ⊥ is a transport verdict
    /// (lost exchange, exhausted deadlines, unplaced authority) rather
    /// than an authoritative "unbound". Always false for defined entities.
    pub unreachable: Vec<bool>,
}

#[derive(Debug, Default)]
struct ServerState {
    /// Recursive requests forwarded on behalf of someone: id → (original
    /// requester, work units accumulated before forwarding).
    pending: BTreeMap<u64, (ActivityId, u32)>,
}

/// Drives the resolution protocol over a [`World`].
#[derive(Debug)]
pub struct ProtocolEngine {
    service: NameService,
    server_state: BTreeMap<ActivityId, ServerState>,
    next_id: u64,
    /// Safety bound on pump iterations per resolve.
    max_steps: usize,
    /// Deadline/retransmission schedule; `None` (the default) keeps the
    /// fire-and-wait behavior where a lost message ends the walk.
    retry: Option<RetryPolicy>,
    /// Request ids whose deadline expired before an answer arrived. A
    /// reply bearing one of these ids is a *late* reply: counted, dropped.
    superseded: BTreeSet<u64>,
    counters: RetryCounters,
    /// Authority-side delta log: every write routed through
    /// [`ProtocolEngine::publish_binding`] is journaled at its zone
    /// serial, so anti-entropy pulls can be answered incrementally.
    journal: ZoneJournal,
}

impl ProtocolEngine {
    /// Wraps a name service.
    pub fn new(service: NameService) -> ProtocolEngine {
        ProtocolEngine {
            service,
            server_state: BTreeMap::new(),
            next_id: 1,
            max_steps: 100_000,
            retry: None,
            superseded: BTreeSet::new(),
            counters: RetryCounters::default(),
            journal: ZoneJournal::default(),
        }
    }

    /// The authority-side delta journal.
    pub fn journal(&self) -> &ZoneJournal {
        &self.journal
    }

    /// Replaces the journal's retention window (changes per zone). A
    /// smaller window forces full transfers sooner — the IXFR→AXFR
    /// fallback the coherence bench measures. Retained history is reset.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_journal_window(&mut self, window: usize) {
        self.journal = ZoneJournal::with_window(window);
    }

    /// The underlying service.
    pub fn service(&self) -> &NameService {
        &self.service
    }

    /// Mutable access to the service (placement changes).
    pub fn service_mut(&mut self) -> &mut NameService {
        &mut self.service
    }

    /// Installs (or removes) the deadline/retransmission schedule.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// The active retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Retry-layer activity accumulated so far.
    pub fn retry_counters(&self) -> RetryCounters {
        self.counters
    }

    /// Allocates a fresh request id. Shared with the pipelined runtime so
    /// interleaved use of both drivers never collides correlation ids.
    pub(crate) fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Marks an in-flight attempt as superseded by a retransmission: a
    /// reply bearing this id is late, not an answer.
    pub(crate) fn supersede(&mut self, id: u64) {
        self.superseded.insert(id);
    }

    /// Counts a deadline-driven retransmission.
    pub(crate) fn note_retransmission(&mut self) {
        self.counters.retransmissions += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("retry.retransmissions").bump();
    }

    /// Counts an attempt redirected to a replica.
    pub(crate) fn note_failover(&mut self) {
        self.counters.failovers += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("failover.attempts").bump();
    }

    /// Counts a hop abandoned after `max_attempts` deadlines.
    pub(crate) fn note_exhausted(&mut self) {
        self.counters.exhausted += 1;
    }

    /// Restarts the name server on `machine` after a [`World::kill`]: the
    /// process is revived with a cleared mailbox, its in-flight forwarding
    /// state is discarded, and every replicated zone it participates in is
    /// re-published by its primary, so updates dropped while the server
    /// was down are replayed. Pump the queue to let the re-publications
    /// land. Returns the number of zone updates sent.
    pub fn restart_server(&mut self, world: &mut World, machine: MachineId) -> usize {
        let server = self.service.server_on(machine);
        world.revive(server);
        self.server_state.remove(&server);
        let mut published = 0;
        for zone in self.service.zones_on(machine) {
            published += self.publish_zone(world, zone);
        }
        published
    }

    /// Resolves `name` for `client`, starting at the context object
    /// `start`, using `mode`. Blocks (in virtual time) until the answer
    /// arrives.
    ///
    /// Unresolvable names (including protocol dead-ends such as unplaced
    /// objects or lost messages) yield `⊥` with the stats accumulated so
    /// far.
    pub fn resolve(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> ResolveStats {
        let (stats, _) = self.resolve_traced(world, client, start, name, mode);
        stats
    }

    /// Like [`ProtocolEngine::resolve`], but also reports every referral
    /// the walk followed — what a client-side referral cache records.
    /// Referrals are only observed by the client in iterative mode; a
    /// recursive resolve returns an empty hop list.
    pub fn resolve_traced(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (ResolveStats, Vec<ReferralHop>) {
        let (stats, hops) = self.resolve_impl(world, client, start, name, mode);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("protocol.resolves").bump();
            naming_telemetry::histogram!("protocol.latency_ticks").record(stats.latency.ticks());
            naming_telemetry::histogram!("protocol.messages").record(stats.messages);
            if naming_telemetry::recorder::is_active() {
                naming_telemetry::recorder::span(
                    "protocol",
                    format!("{mode:?} {name}"),
                    world.now().ticks() - stats.latency.ticks(),
                    world.now().ticks(),
                    vec![
                        (
                            "client".into(),
                            world.state().activity_label(client).to_string(),
                        ),
                        ("entity".into(), stats.entity.to_string()),
                        ("messages".into(), stats.messages.to_string()),
                        ("servers".into(), stats.servers_touched.to_string()),
                    ],
                );
            }
        }
        (stats, hops)
    }

    /// The protocol walk itself, free of observation hooks.
    fn resolve_impl(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        name: &CompoundName,
        mode: Mode,
    ) -> (ResolveStats, Vec<ReferralHop>) {
        let t0 = world.now();
        let sent0 = world.trace().counter("sent");
        let mut servers_touched = 0u32;
        let mut hops = Vec::new();
        let mut target_machine = match self.service.machine_of_object(start) {
            Some(m) => m,
            None => {
                // Nobody can even be addressed: a transport verdict, not ⊥.
                return (
                    ResolveStats {
                        entity: Entity::Undefined,
                        messages: 0,
                        servers_touched: 0,
                        latency: Duration::ZERO,
                        unreachable: true,
                    },
                    hops,
                );
            }
        };
        let mut current_start = start;
        let mut current_name = name.clone();

        loop {
            // Failover order for this hop: the addressed authority first,
            // then every other replica of the context's group. Only
            // consulted once a deadline expires, so a lossless walk never
            // deviates from the primary route.
            let mut candidates: Vec<(MachineId, ObjectId)> = vec![(target_machine, current_start)];
            if self.retry.is_some() {
                for (m, ctx) in self.service.failover_targets(current_start) {
                    if !candidates.iter().any(|&(cm, _)| cm == m) {
                        candidates.push((m, ctx));
                    }
                }
            }

            let mut attempt = 0u32;
            let (outcome, touched) = 'hop: loop {
                let (machine, req_start) = candidates[attempt as usize % candidates.len()];
                if attempt > 0 && machine != candidates[0].0 {
                    self.counters.failovers += 1;
                    #[cfg(feature = "telemetry")]
                    naming_telemetry::counter!("failover.attempts").bump();
                }
                let id = self.next_id;
                self.next_id += 1;
                let server = self.service.server_on(machine);
                // With the `batch-wire` feature, iterative single resolves
                // ride the batch frames as a batch of one — same exchanges,
                // same answers, one wire format. Recursive mode keeps the
                // scalar frames (servers forward those on the client's
                // behalf).
                #[cfg(feature = "batch-wire")]
                let frame = if mode == Mode::Iterative {
                    let (trie, _) = NameTrie::build(std::slice::from_ref(&current_name));
                    BatchRequest {
                        id,
                        start: req_start,
                        trie,
                    }
                    .encode()
                } else {
                    Request {
                        id,
                        start: req_start,
                        name: current_name.clone(),
                        mode,
                    }
                    .encode()
                };
                #[cfg(not(feature = "batch-wire"))]
                let frame = Request {
                    id,
                    start: req_start,
                    name: current_name.clone(),
                    mode,
                }
                .encode();
                world.send(client, server, vec![Payload::Bytes(frame)]);
                if let Some(pol) = self.retry {
                    let after = Duration::from_ticks(pol.timeout_ticks(id, attempt));
                    world.schedule_wake(client, after, id);
                }

                // Pump until the client hears back about this id, or its
                // deadline fires.
                let mut steps = 0usize;
                loop {
                    if let Some(r) = self.take_client_answer(world, client, id) {
                        world.cancel_wake(id);
                        #[cfg(feature = "telemetry")]
                        if self.retry.is_some() {
                            naming_telemetry::histogram!("retry.attempts")
                                .record(u64::from(attempt) + 1);
                        }
                        break 'hop r;
                    }
                    if let Some(pol) = self.retry {
                        let mut fired = false;
                        while let Some(token) = world.take_wake(client) {
                            fired |= token == id;
                        }
                        if fired {
                            // Deadline expired: the outstanding attempt is
                            // superseded — its reply, if it ever lands, is a
                            // late reply, not an answer.
                            self.superseded.insert(id);
                            attempt += 1;
                            if attempt >= pol.max_attempts {
                                self.counters.exhausted += 1;
                                break 'hop (Outcome::Unreachable { attempts: attempt }, 0);
                            }
                            self.counters.retransmissions += 1;
                            #[cfg(feature = "telemetry")]
                            naming_telemetry::counter!("retry.retransmissions").bump();
                            continue 'hop;
                        }
                    }
                    if steps >= self.max_steps || !world.step() {
                        // Dead protocol (e.g. all messages lost, no
                        // deadline scheduled to force a retry).
                        break 'hop (
                            Outcome::Unreachable {
                                attempts: attempt + 1,
                            },
                            0,
                        );
                    }
                    steps += 1;
                    self.drain_servers(world);
                }
            };

            servers_touched += touched;
            match outcome {
                Outcome::Resolved(e) => {
                    break (
                        ResolveStats {
                            entity: e,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                            unreachable: false,
                        },
                        hops,
                    );
                }
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                } => {
                    // Iterative mode: the client chases the referral.
                    hops.push(ReferralHop {
                        consumed: name.len().saturating_sub(remaining.len()),
                        machine: next_machine,
                        ctx: next_ctx,
                    });
                    target_machine = next_machine;
                    current_start = next_ctx;
                    current_name = remaining;
                }
                Outcome::NotFound | Outcome::WrongServer => {
                    break (
                        ResolveStats {
                            entity: Entity::Undefined,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                            unreachable: false,
                        },
                        hops,
                    );
                }
                Outcome::Unreachable { .. } => {
                    break (
                        ResolveStats {
                            entity: Entity::Undefined,
                            messages: world.trace().counter("sent") - sent0,
                            servers_touched,
                            latency: world.now() - t0,
                            unreachable: true,
                        },
                        hops,
                    );
                }
            }
        }
    }

    /// Resolves many names from one start context in coalesced, batched
    /// wire exchanges: per protocol round, all names still in flight that
    /// continue from the same context object share a single
    /// [`BatchRequest`] (shared-prefix compressed), and duplicate
    /// `(context, suffix)` pairs ride one exchange. Answers match
    /// [`ProtocolEngine::resolve`] in iterative mode, name by name.
    pub fn resolve_batch(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> BatchResolveStats {
        let stats = self.resolve_batch_impl(world, client, start, names);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("protocol.batch_resolves").bump();
            naming_telemetry::counter!("protocol.hops_saved").add(stats.hops_saved);
            naming_telemetry::counter!("protocol.coalesced").add(stats.coalesced);
            naming_telemetry::histogram!("protocol.batch_size").record(names.len() as u64);
            naming_telemetry::histogram!("protocol.batch_messages").record(stats.messages);
        }
        stats
    }

    fn resolve_batch_impl(
        &mut self,
        world: &mut World,
        client: ActivityId,
        start: ObjectId,
        names: &[CompoundName],
    ) -> BatchResolveStats {
        let t0 = world.now();
        let sent0 = world.trace().counter("sent");
        let mut entities = vec![Entity::Undefined; names.len()];
        let mut unreachable = vec![false; names.len()];
        let mut referrals = Vec::new();
        let mut servers_touched = 0u32;
        let mut hops_saved = 0u64;
        let mut coalesced = 0u64;
        let mut rounds = 0u32;

        // In-flight work, grouped two levels deep: context to continue
        // from → remaining suffix → the input slots riding that suffix
        // (slot index, components of the slot's original name already
        // consumed). The suffix level is what single-flight coalescing
        // collapses; the context level is what shares a wire exchange.
        type Slots = Vec<(usize, usize)>;
        let mut pending: BTreeMap<ObjectId, BTreeMap<CompoundName, Slots>> = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            pending
                .entry(start)
                .or_default()
                .entry(n.clone())
                .or_default()
                .push((i, 0));
        }
        // Every referral consumes at least one component, so the round
        // count is bounded by the deepest name (+1 slack for the final
        // answer round).
        let max_rounds = names.iter().map(|n| n.len() as u32).max().unwrap_or(0) + 1;

        while !pending.is_empty() && rounds < max_rounds {
            rounds += 1;
            let round = std::mem::take(&mut pending);
            // One BatchRequest per continue-from context; all requests of
            // the round go out before any reply is awaited.
            struct Awaiting {
                entries: Vec<(CompoundName, Vec<(usize, usize)>)>,
                mapping: Vec<u32>,
                /// Failover order: addressed authority first, then the
                /// other replicas of the context's group.
                candidates: Vec<(MachineId, ObjectId)>,
                /// Send attempts made so far (0-based next index into the
                /// candidate rotation).
                attempt: u32,
            }
            let mut awaiting: BTreeMap<u64, Awaiting> = BTreeMap::new();
            for (ctx, group) in round {
                let Some(machine) = self.service.machine_of_object(ctx) else {
                    // Nobody can be addressed: a transport verdict, not ⊥.
                    for (_, slots) in group {
                        for (slot, _) in slots {
                            unreachable[slot] = true;
                        }
                    }
                    continue;
                };
                let entries: Vec<(CompoundName, Slots)> = group.into_iter().collect();
                for (_, slots) in &entries {
                    coalesced += slots.len() as u64 - 1;
                }
                let group_names: Vec<CompoundName> =
                    entries.iter().map(|(n, _)| n.clone()).collect();
                let (trie, mapping) = NameTrie::build(&group_names);
                let mut candidates: Vec<(MachineId, ObjectId)> = vec![(machine, ctx)];
                if self.retry.is_some() {
                    for (m, fctx) in self.service.failover_targets(ctx) {
                        if !candidates.iter().any(|&(cm, _)| cm == m) {
                            candidates.push((m, fctx));
                        }
                    }
                }
                let id = self.next_id;
                self.next_id += 1;
                let req = BatchRequest {
                    id,
                    start: ctx,
                    trie,
                };
                let server = self.service.server_on(machine);
                world.send(client, server, vec![Payload::Bytes(req.encode())]);
                if let Some(pol) = self.retry {
                    let after = Duration::from_ticks(pol.timeout_ticks(id, 0));
                    world.schedule_wake(client, after, id);
                }
                awaiting.insert(
                    id,
                    Awaiting {
                        entries,
                        mapping,
                        candidates,
                        attempt: 0,
                    },
                );
            }

            // Pump until every request of the round is answered (or the
            // protocol is dead). Retransmissions happen *inside* this
            // pump: they repeat a round's exchange and must not consume a
            // referral-progress round, or deep names would time out
            // spuriously under loss (`rounds` is bounded by name depth).
            let mut got: BTreeMap<u64, BatchReply> = BTreeMap::new();
            let mut steps = 0usize;
            loop {
                while let Some(msg) = world.receive(client) {
                    for part in &msg.parts {
                        let Payload::Bytes(b) = part else { continue };
                        if let Some(rep) = BatchReply::decode(b.clone()) {
                            if awaiting.contains_key(&rep.id) {
                                world.cancel_wake(rep.id);
                                got.insert(rep.id, rep);
                            } else {
                                self.note_stale_reply(rep.id);
                            }
                        }
                    }
                }
                if got.len() == awaiting.len() {
                    break;
                }
                if let Some(pol) = self.retry {
                    let mut fired = Vec::new();
                    while let Some(token) = world.take_wake(client) {
                        fired.push(token);
                    }
                    for token in fired {
                        if got.contains_key(&token) {
                            continue; // answered on the same step it expired
                        }
                        let Some(mut aw) = awaiting.remove(&token) else {
                            continue;
                        };
                        self.superseded.insert(token);
                        aw.attempt += 1;
                        if aw.attempt >= pol.max_attempts {
                            self.counters.exhausted += 1;
                            for (_, slots) in &aw.entries {
                                for &(slot, _) in slots {
                                    unreachable[slot] = true;
                                }
                            }
                            continue; // give the request up; round completes without it
                        }
                        self.counters.retransmissions += 1;
                        #[cfg(feature = "telemetry")]
                        naming_telemetry::counter!("retry.retransmissions").bump();
                        let (machine, ctx) =
                            aw.candidates[aw.attempt as usize % aw.candidates.len()];
                        if machine != aw.candidates[0].0 {
                            self.counters.failovers += 1;
                            #[cfg(feature = "telemetry")]
                            naming_telemetry::counter!("failover.attempts").bump();
                        }
                        let group_names: Vec<CompoundName> =
                            aw.entries.iter().map(|(n, _)| n.clone()).collect();
                        let (trie, mapping) = NameTrie::build(&group_names);
                        aw.mapping = mapping;
                        let id = self.next_id;
                        self.next_id += 1;
                        let req = BatchRequest {
                            id,
                            start: ctx,
                            trie,
                        };
                        let server = self.service.server_on(machine);
                        world.send(client, server, vec![Payload::Bytes(req.encode())]);
                        let after = Duration::from_ticks(pol.timeout_ticks(id, aw.attempt));
                        world.schedule_wake(client, after, id);
                        awaiting.insert(id, aw);
                    }
                    if got.len() == awaiting.len() {
                        break; // every surviving request answered
                    }
                }
                if steps >= self.max_steps || !world.step() {
                    // Dead protocol: unanswered slots are unreachable, not ⊥.
                    for (id, aw) in &awaiting {
                        if !got.contains_key(id) {
                            for (_, slots) in &aw.entries {
                                for &(slot, _) in slots {
                                    unreachable[slot] = true;
                                }
                            }
                        }
                    }
                    break;
                }
                steps += 1;
                self.drain_servers(world);
            }

            for (id, aw) in awaiting {
                let Awaiting {
                    entries, mapping, ..
                } = aw;
                let Some(rep) = got.remove(&id) else { continue };
                servers_touched += rep.servers_touched;
                hops_saved += u64::from(rep.lookups_saved);
                for (k, (sent_name, slots)) in entries.into_iter().enumerate() {
                    let outcome = mapping.get(k).and_then(|&q| rep.outcomes.get(q as usize));
                    match outcome {
                        Some(Outcome::Resolved(e)) => {
                            for (slot, _) in slots {
                                entities[slot] = *e;
                            }
                        }
                        Some(Outcome::Referral {
                            next_machine,
                            next_ctx,
                            remaining,
                        }) => {
                            let step = sent_name.len().saturating_sub(remaining.len());
                            let next = pending.entry(*next_ctx).or_default();
                            let riders = next.entry(remaining.clone()).or_default();
                            for (slot, consumed) in slots {
                                let consumed = (consumed + step).min(names[slot].len());
                                if consumed > 0 {
                                    if let Ok(prefix) = CompoundName::new(
                                        names[slot].components()[..consumed].iter().copied(),
                                    ) {
                                        referrals.push((prefix, *next_machine, *next_ctx));
                                    }
                                }
                                riders.push((slot, consumed));
                            }
                        }
                        Some(Outcome::Unreachable { .. }) => {
                            // The server could not hand resolution onward
                            // (e.g. the next authority is unplaced): a
                            // transport verdict for these slots.
                            for (slot, _) in slots {
                                unreachable[slot] = true;
                            }
                        }
                        // NotFound / WrongServer / malformed reply: ⊥.
                        _ => {}
                    }
                }
            }
        }

        referrals.sort();
        referrals.dedup();
        BatchResolveStats {
            entities,
            messages: world.trace().counter("sent") - sent0,
            latency: world.now() - t0,
            rounds,
            servers_touched,
            coalesced,
            hops_saved,
            referrals,
            unreachable,
        }
    }

    /// Publishes a replicated zone's current bindings: the primary's
    /// server sends a [`ZoneUpdate`] frame to every secondary. The copies
    /// converge when the frames arrive (after network latency) — drive the
    /// queue with [`ProtocolEngine::pump_idle`] or any `resolve`.
    ///
    /// Returns the number of updates sent.
    pub fn publish_zone(&mut self, world: &mut World, zone: ObjectId) -> usize {
        let servers = self.service.zone_servers(zone);
        let Some((&primary, secondaries)) = servers.split_first() else {
            return 0;
        };
        let Some(ctx) = world.state().context(zone) else {
            return 0;
        };
        let update = ZoneUpdate {
            zone,
            bindings: ctx.iter().collect(),
        };
        let from = self.service.server_on(primary);
        let mut sent = 0;
        for &m in secondaries {
            let to = self.service.server_on(m);
            world.send(from, to, vec![Payload::Bytes(update.encode())]);
            sent += 1;
        }
        sent
    }

    /// Commits one naming write — `Some(entity)` binds, `None` unbinds —
    /// and journals it at the zone serial the write advanced to, so
    /// anti-entropy pulls can replay it incrementally. This is the
    /// publication path of lease coherence: writes that bypass it (raw
    /// `state_mut()` mutation) still advance the serial, but the journal
    /// detects the gap and falls back to full transfers rather than
    /// serving a diff with holes.
    ///
    /// Returns the zone serial after the write, or `None` when the write
    /// was refused (e.g. `ctx` is not a context).
    pub fn publish_binding(
        &mut self,
        world: &mut World,
        ctx: ObjectId,
        name: Name,
        entity: Option<Entity>,
    ) -> Option<ZoneSerial> {
        let shard = SystemState::shard_of_id(ctx);
        let committed = match entity {
            Some(e) => world.state_mut().bind(ctx, name, e).is_ok(),
            None => world.state_mut().unbind(ctx, name).is_ok(),
        };
        if !committed {
            return None;
        }
        let serial = world.state().shard_serial(shard);
        self.journal.record(
            shard,
            serial,
            ZoneChange {
                ctx,
                name,
                entity: entity.unwrap_or(Entity::Undefined),
            },
        );
        Some(serial)
    }

    /// Pulls zone deltas from the authority on `machine`: sends a
    /// [`ZoneDeltaRequest`] carrying `since` (the serials the caller
    /// already holds) and pumps the queue until the matching
    /// [`ZoneDelta`] arrives. Returns the delta plus the wire bytes the
    /// exchange cost (request + reply frames), or `None` when the
    /// exchange was lost (no retry: anti-entropy is periodic, the next
    /// pull catches up).
    pub fn pull_zone_deltas(
        &mut self,
        world: &mut World,
        client: ActivityId,
        machine: MachineId,
        since: Vec<(usize, ZoneSerial)>,
    ) -> Option<(ZoneDelta, u64)> {
        let id = self.alloc_id();
        let req = ZoneDeltaRequest { id, since };
        let req_bytes = req.wire_len() as u64;
        let server = self.service.server_on(machine);
        world.send(client, server, vec![Payload::Bytes(req.encode())]);
        let mut steps = 0usize;
        loop {
            while let Some(msg) = world.receive(client) {
                for part in &msg.parts {
                    let Payload::Bytes(b) = part else { continue };
                    if let Some(rep) = ZoneDelta::decode(b.clone()) {
                        if rep.id == id {
                            let bytes = req_bytes + rep.wire_len() as u64;
                            return Some((rep, bytes));
                        }
                        self.note_stale_reply(rep.id);
                    }
                }
            }
            if steps >= self.max_steps || !world.step() {
                return None;
            }
            steps += 1;
            self.drain_servers(world);
        }
    }

    /// Drains the event queue, letting servers process whatever is in
    /// flight (replica updates, stray replies). Returns the number of
    /// events processed.
    pub fn pump_idle(&mut self, world: &mut World) -> usize {
        let mut n = 0;
        while world.step() {
            n += 1;
            self.drain_servers(world);
        }
        n
    }

    /// Pops the client's answer for `id`, if one is waiting — a scalar
    /// [`Reply`] or a batch-of-one [`BatchReply`], whichever frame the
    /// server answered with.
    fn take_client_answer(
        &mut self,
        world: &mut World,
        client: ActivityId,
        id: u64,
    ) -> Option<(Outcome, u32)> {
        // Handle every waiting message; replies for other ids are either
        // late answers to superseded attempts (counted) or stray frames
        // (dropped — single-outstanding-request client).
        while let Some(msg) = world.receive(client) {
            for part in &msg.parts {
                if let Payload::Bytes(b) = part {
                    if let Some(r) = Reply::decode(b.clone()) {
                        if r.id == id {
                            return Some((r.outcome, r.servers_touched));
                        }
                        self.note_stale_reply(r.id);
                    } else if let Some(r) = BatchReply::decode(b.clone()) {
                        if r.id == id {
                            // An empty outcome list means the transport
                            // delivered a frame carrying no verdict. That
                            // says nothing about the binding, so it must
                            // never surface as ⊥ (`NotFound`).
                            let outcome = r
                                .outcomes
                                .into_iter()
                                .next()
                                .unwrap_or(Outcome::Unreachable { attempts: 1 });
                            return Some((outcome, r.servers_touched));
                        }
                        self.note_stale_reply(r.id);
                    }
                }
            }
        }
        None
    }

    /// Records a reply that arrived after its attempt was superseded by a
    /// retransmission. Stale replies are counted — losing them silently
    /// would hide how often the deadline fired early — but never acted on.
    pub(crate) fn note_stale_reply(&mut self, id: u64) {
        if self.superseded.remove(&id) {
            self.counters.late_replies += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("retry.late_reply").bump();
        }
    }

    /// Processes every message waiting in any server's mailbox.
    pub(crate) fn drain_servers(&mut self, world: &mut World) {
        let servers: Vec<(naming_sim::topology::MachineId, ActivityId)> =
            self.service.servers().collect();
        for (machine, server) in servers {
            while let Some(msg) = world.receive(server) {
                for part in &msg.parts {
                    let Payload::Bytes(b) = part else { continue };
                    if let Some(req) = Request::decode(b.clone()) {
                        self.handle_request(world, machine, server, msg.from, req);
                    } else if let Some(req) = BatchRequest::decode(b.clone()) {
                        self.handle_batch_request(world, machine, server, msg.from, req);
                    } else if let Some(rep) = Reply::decode(b.clone()) {
                        self.handle_forwarded_reply(world, server, rep);
                    } else if let Some(update) = ZoneUpdate::decode(b.clone()) {
                        self.handle_zone_update(world, machine, update);
                    } else if let Some(req) = ZoneDeltaRequest::decode(b.clone()) {
                        self.handle_zone_delta_request(world, server, msg.from, req);
                    }
                }
            }
        }
    }

    fn handle_request(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        server: ActivityId,
        requester: ActivityId,
        req: Request,
    ) {
        let outcome = self
            .service
            .local_resolve(world, machine, req.start, &req.name);
        match (&outcome, req.mode) {
            (
                Outcome::Referral {
                    next_machine,
                    next_ctx,
                    remaining,
                },
                Mode::Recursive,
            ) => {
                // Chase the referral on the requester's behalf.
                let next_server = self.service.server_on(*next_machine);
                let fwd = Request {
                    id: req.id,
                    start: *next_ctx,
                    name: remaining.clone(),
                    mode: Mode::Recursive,
                };
                self.server_state
                    .entry(server)
                    .or_default()
                    .pending
                    .insert(req.id, (requester, 1));
                world.send(server, next_server, vec![Payload::Bytes(fwd.encode())]);
            }
            _ => {
                let reply = Reply {
                    id: req.id,
                    outcome,
                    servers_touched: 1,
                };
                world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
            }
        }
    }

    /// Answers a [`BatchRequest`]: one trie walk, one [`BatchReply`].
    /// Batches are always client-driven; there is no recursive variant to
    /// forward.
    fn handle_batch_request(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        server: ActivityId,
        requester: ActivityId,
        req: BatchRequest,
    ) {
        let (outcomes, lookups_saved) = self
            .service
            .local_resolve_batch(world, machine, req.start, &req.trie);
        let reply = BatchReply {
            id: req.id,
            outcomes,
            servers_touched: 1,
            lookups_saved,
        };
        world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
    }

    fn handle_zone_update(
        &mut self,
        world: &mut World,
        machine: naming_sim::topology::MachineId,
        update: ZoneUpdate,
    ) {
        let Some(copy) = self.service.zone_copy_on(update.zone, machine) else {
            return;
        };
        if copy == update.zone {
            return; // the primary ignores its own echo
        }
        if let Some(ctx) = world.state_mut().context_mut(copy) {
            let fresh: naming_core::context::Context = update.bindings.iter().copied().collect();
            *ctx = fresh;
        }
    }

    /// Answers an anti-entropy pull. Per requested shard: equal serials
    /// yield an empty incremental slice (a pure heartbeat), a journal
    /// window that still covers `since` yields the diff, and anything
    /// else — window evicted, authority restarted behind the puller, or
    /// an unjournaled-write gap — degrades to a full dump of the shard's
    /// live bindings (the AXFR fallback).
    fn handle_zone_delta_request(
        &mut self,
        world: &mut World,
        server: ActivityId,
        requester: ActivityId,
        req: ZoneDeltaRequest,
    ) {
        let mut shards = Vec::with_capacity(req.since.len());
        for &(shard, since) in &req.since {
            if shard >= world.state().shard_count() {
                continue;
            }
            let current = world.state().shard_serial(shard);
            let slice = if since == current {
                ShardDelta {
                    shard,
                    serial: current,
                    full: false,
                    changes: Vec::new(),
                }
            } else if let Some(changes) = self.journal.delta_since(shard, since, current) {
                ShardDelta {
                    shard,
                    serial: current,
                    full: false,
                    changes,
                }
            } else {
                let state = world.state();
                let changes = state
                    .objects()
                    .filter(|&o| SystemState::shard_of_id(o) == shard)
                    .filter_map(|o| state.context(o).map(|ctx| (o, ctx)))
                    .flat_map(|(o, ctx)| {
                        ctx.iter().map(move |(name, entity)| ZoneChange {
                            ctx: o,
                            name,
                            entity,
                        })
                    })
                    .collect();
                ShardDelta {
                    shard,
                    serial: current,
                    full: true,
                    changes,
                }
            };
            shards.push(slice);
        }
        let reply = ZoneDelta { id: req.id, shards };
        world.send(server, requester, vec![Payload::Bytes(reply.encode())]);
    }

    fn handle_forwarded_reply(&mut self, world: &mut World, server: ActivityId, rep: Reply) {
        let Some(state) = self.server_state.get_mut(&server) else {
            return;
        };
        let Some((requester, own_work)) = state.pending.remove(&rep.id) else {
            return;
        };
        let forwarded = Reply {
            id: rep.id,
            outcome: rep.outcome,
            servers_touched: rep.servers_touched + own_work,
        };
        world.send(server, requester, vec![Payload::Bytes(forwarded.encode())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_sim::store;
    use naming_sim::topology::MachineId;

    /// A chain of three machines: m0 hosts the root, each subsequent hop's
    /// subtree lives on the next machine. Resolving `/hop1/hop2/leaf`
    /// crosses all three.
    fn chain_world() -> (World, NameService, Vec<MachineId>, ObjectId, Entity) {
        let mut w = World::new(71);
        let net = w.add_network("n");
        let machines: Vec<MachineId> = (0..3)
            .map(|i| w.add_machine(format!("m{i}"), net))
            .collect();
        // Build: root(m0) -> hop1(m1) -> hop2(m2) -> leaf
        let root = w.machine_root(machines[0]);
        let root1 = w.machine_root(machines[1]);
        let root2 = w.machine_root(machines[2]);
        let hop1 = store::ensure_dir(w.state_mut(), root1, "self1");
        let hop2 = store::ensure_dir(w.state_mut(), root2, "self2");
        store::attach(w.state_mut(), root, "hop1", hop1, false);
        store::attach(w.state_mut(), hop1, "hop2", hop2, false);
        let leaf = store::create_file(w.state_mut(), hop2, "leaf", vec![]);
        let mut svc = NameService::install(&mut w, &machines);
        // Place each machine's own tree before any tree that grafts it:
        // first-placement-wins means graft sources must claim their objects
        // first.
        for &m in machines.iter().rev() {
            let r = w.machine_root(m);
            svc.place_subtree(&w, r, m);
        }
        // Placement sanity: hop1 on m1, hop2 on m2.
        assert_eq!(svc.machine_of_object(hop1), Some(machines[1]));
        assert_eq!(svc.machine_of_object(hop2), Some(machines[2]));
        (w, svc, machines, root, Entity::Object(leaf))
    }

    #[test]
    fn iterative_resolution_crosses_machines() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Iterative: 3 request/reply pairs.
        assert_eq!(stats.messages, 6);
        assert!(stats.latency.ticks() > 0);
    }

    #[test]
    fn recursive_resolution_returns_one_answer() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(stats.entity, leaf);
        assert_eq!(stats.servers_touched, 3);
        // Recursive: req m0->srv0->srv1->srv2, replies back up: 6 messages,
        // but only ONE client round-trip.
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn single_machine_resolution_is_one_round_trip() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert!(stats.entity.is_defined());
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.servers_touched, 1);
    }

    #[test]
    fn missing_names_resolve_to_bottom() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/nope").unwrap();
        for mode in [Mode::Iterative, Mode::Recursive] {
            let stats = engine.resolve(&mut w, client, root, &name, mode);
            assert_eq!(stats.entity, Entity::Undefined);
        }
    }

    #[test]
    fn unplaced_start_fails_cleanly() {
        let (mut w, svc, machines, _, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let orphan = w.state_mut().add_context_object("orphan");
        let name = CompoundName::parse_path("/x").unwrap();
        let stats = engine.resolve(&mut w, client, orphan, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert_eq!(stats.messages, 0);
        assert!(stats.unreachable, "no authority addressable ≠ unbound");
    }

    #[test]
    fn zone_delta_pull_round_trips_incrementally() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let shard = SystemState::shard_of_id(root);
        let before = w.state().shard_serial(shard);
        let tgt = Entity::Object(root);
        let s1 = engine
            .publish_binding(&mut w, root, Name::new("alpha"), Some(tgt))
            .expect("bind commits");
        let s2 = engine
            .publish_binding(&mut w, root, Name::new("alpha"), None)
            .expect("unbind commits");
        assert!(s2.is_newer_than(s1) && s1.is_newer_than(before));
        let (delta, bytes) = engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, before)])
            .expect("pull completes");
        assert!(bytes > 0);
        assert_eq!(delta.shards.len(), 1);
        let slice = &delta.shards[0];
        assert!(
            !slice.full,
            "journal window covers the gap — IXFR, not AXFR"
        );
        assert_eq!(slice.serial, s2);
        assert_eq!(slice.changes.len(), 2);
        assert_eq!(slice.changes[0].entity, tgt);
        assert_eq!(slice.changes[1].entity, Entity::Undefined);
    }

    #[test]
    fn zone_delta_equal_serials_are_a_heartbeat() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let shard = SystemState::shard_of_id(root);
        let current = w.state().shard_serial(shard);
        let (delta, _) = engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, current)])
            .expect("pull completes");
        assert_eq!(delta.shards.len(), 1);
        assert!(!delta.shards[0].full);
        assert!(delta.shards[0].changes.is_empty());
        assert_eq!(delta.shards[0].serial, current);
    }

    #[test]
    fn zone_delta_falls_back_to_full_when_window_evicted() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_journal_window(2);
        let shard = SystemState::shard_of_id(root);
        let before = w.state().shard_serial(shard);
        for i in 0..5 {
            engine
                .publish_binding(
                    &mut w,
                    root,
                    Name::new(&format!("k{i}")),
                    Some(Entity::Object(root)),
                )
                .expect("bind commits");
        }
        let (delta, _) = engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, before)])
            .expect("pull completes");
        let slice = &delta.shards[0];
        assert!(slice.full, "evicted window must force a full transfer");
        assert_eq!(slice.serial, w.state().shard_serial(shard));
        // The dump carries the live bindings, including the five new keys.
        for i in 0..5 {
            assert!(slice
                .changes
                .iter()
                .any(|c| c.ctx == root && c.name == Name::new(&format!("k{i}"))));
        }
        // A pull from within the retained window still gets an IXFR.
        let mid = slice.serial;
        engine
            .publish_binding(&mut w, root, Name::new("k0"), None)
            .expect("unbind commits");
        let (delta2, _) = engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, mid)])
            .expect("pull completes");
        assert!(!delta2.shards[0].full);
        assert_eq!(delta2.shards[0].changes.len(), 1);
    }

    #[test]
    fn zone_delta_pull_over_dead_links_returns_none() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let shard = SystemState::shard_of_id(root);
        let before = w.state().shard_serial(shard);
        w.set_message_drop_rate(1.0);
        assert!(engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, before)])
            .is_none());
    }

    #[test]
    fn unjournaled_writes_poison_the_diff_window() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let shard = SystemState::shard_of_id(root);
        let before = w.state().shard_serial(shard);
        engine
            .publish_binding(&mut w, root, Name::new("seen"), Some(Entity::Object(root)))
            .expect("bind commits");
        // A write that bypasses publish_binding advances the serial behind
        // the journal's back; the next journaled write detects the gap.
        w.state_mut()
            .bind(root, Name::new("ghost"), Entity::Object(root))
            .expect("raw bind commits");
        engine
            .publish_binding(&mut w, root, Name::new("after"), Some(Entity::Object(root)))
            .expect("bind commits");
        let (delta, _) = engine
            .pull_zone_deltas(&mut w, client, machines[0], vec![(shard, before)])
            .expect("pull completes");
        let slice = &delta.shards[0];
        assert!(slice.full, "a serial gap must not be served as a diff");
        assert!(slice.changes.iter().any(|c| c.name == Name::new("ghost")));
    }

    #[test]
    fn lost_messages_end_in_bottom_not_hang() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        w.set_message_drop_rate(1.0);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert!(
            stats.unreachable,
            "a lost exchange is a transport verdict, not ⊥"
        );
    }

    #[test]
    fn authoritative_bottom_is_not_flagged_unreachable() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/nope").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert!(!stats.unreachable, "the server answered: genuinely unbound");
    }

    #[test]
    fn empty_batch_reply_is_unreachable_not_bottom() {
        // The regression at the heart of this PR: a BatchReply frame with
        // an empty outcome list used to surface as NotFound (⊥).
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let server = svc.server_on(machines[0]);
        let mut engine = ProtocolEngine::new(svc);
        let empty = BatchReply {
            id: 1,
            outcomes: Vec::new(),
            servers_touched: 1,
            lookups_saved: 0,
        };
        w.send(server, client, vec![Payload::Bytes(empty.encode())]);
        w.run();
        let got = engine.take_client_answer(&mut w, client, 1);
        assert_eq!(got, Some((Outcome::Unreachable { attempts: 1 }, 1)));
        let _ = root;
    }

    #[test]
    fn retries_recover_from_message_loss() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        }));
        w.set_message_drop_rate(0.3);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        // Resolve repeatedly: under p=0.3 with 64 attempts per hop the
        // probability of an Unreachable answer is negligible, and any ⊥
        // here would be a false ⊥.
        for _ in 0..20 {
            let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
            assert_eq!(stats.entity, leaf);
            assert!(!stats.unreachable);
        }
        w.set_message_drop_rate(0.0);
        // Batch path under the same loss.
        w.set_message_drop_rate(0.3);
        let names = vec![
            name.clone(),
            CompoundName::parse_path("/hop1/hop2").unwrap(),
            CompoundName::parse_path("/hop1/nope").unwrap(),
        ];
        for _ in 0..10 {
            let batch = engine.resolve_batch(&mut w, client, root, &names);
            assert_eq!(batch.entities[0], leaf);
            assert!(batch.entities[1].is_defined());
            assert_eq!(batch.entities[2], Entity::Undefined);
            assert!(!batch.unreachable[2], "authoritative ⊥ stays authoritative");
            // Retransmissions never consume referral-progress rounds.
            assert!(batch.rounds <= name.len() as u32 + 1);
        }
        assert!(
            engine.retry_counters().retransmissions > 0,
            "p=0.3 over many exchanges must have lost something"
        );
    }

    #[test]
    fn exhausted_deadlines_end_unreachable() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        }));
        w.set_message_drop_rate(1.0);
        let name = CompoundName::parse_path("/hop1").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, Entity::Undefined);
        assert!(stats.unreachable);
        let c = engine.retry_counters();
        assert_eq!(c.retransmissions, 2, "attempts 2 and 3");
        assert_eq!(c.exhausted, 1);
        // Batch path gives up the same way and flags every slot.
        let batch = engine.resolve_batch(&mut w, client, root, std::slice::from_ref(&name));
        assert_eq!(batch.entities, vec![Entity::Undefined]);
        assert_eq!(batch.unreachable, vec![true]);
    }

    #[test]
    fn late_replies_are_counted_not_answered() {
        // A deadline far below the round-trip time forces every first
        // answer to arrive late; the retransmitted attempt's answer wins
        // and the stragglers are tallied.
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy {
            base_timeout_ticks: 10, // RTT on the chain is ≥ 20 ticks
            max_attempts: 16,
            backoff_cap: 6,
        }));
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf, "late replies must not break the walk");
        let c = engine.retry_counters();
        assert!(c.retransmissions >= 1);
        assert!(
            c.late_replies >= 1,
            "superseded attempts answered eventually: {c:?}"
        );
    }

    #[test]
    fn lossless_runs_are_identical_with_and_without_retry() {
        // The retry layer must be invisible when nothing is lost: same
        // entities, same message counts, same virtual-time latency.
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let names = vec![
            name.clone(),
            CompoundName::parse_path("/hop1").unwrap(),
            CompoundName::parse_path("/hop1/nope").unwrap(),
        ];
        let run = |retry: bool| {
            let (mut w, svc, machines, root, _) = chain_world();
            let client = w.spawn(machines[0], "client", None);
            let mut engine = ProtocolEngine::new(svc);
            if retry {
                engine.set_retry_policy(Some(RetryPolicy::default()));
            }
            let single = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
            let batch = engine.resolve_batch(&mut w, client, root, &names);
            (single, batch.entities, batch.messages, batch.latency)
        };
        let plain = run(false);
        let retried = run(true);
        assert_eq!(plain, retried);
    }

    #[test]
    fn failover_answers_from_replica_when_primary_dies() {
        // Replicate hop2's zone onto a standby machine, kill the primary,
        // and watch a deadline redirect the walk to the replica.
        let (mut w, mut svc, machines, root, leaf) = chain_world();
        let net = w.topology().machine_network(machines[0]);
        let standby = w.add_machine("standby", net);
        svc.add_server(&mut w, standby);
        let lookup = |w: &World, ctx: ObjectId, n: &str| match w
            .state()
            .lookup(ctx, naming_core::name::Name::new(n))
        {
            Entity::Object(o) => o,
            other => panic!("{n} missing: {other:?}"),
        };
        let hop1 = lookup(&w, root, "hop1");
        let hop2 = lookup(&w, hop1, "hop2");
        svc.replicate_zone(&mut w, hop2, standby);
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        engine.set_retry_policy(Some(RetryPolicy::default()));
        let dead = engine.service().server_on(machines[2]);
        w.kill(dead);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let stats = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(
            stats.entity, leaf,
            "replica must answer for the dead primary"
        );
        assert!(engine.retry_counters().failovers >= 1);
        // Restart the primary and republish: the direct route works again.
        let republished = engine.restart_server(&mut w, machines[2]);
        assert!(republished >= 1);
        engine.pump_idle(&mut w);
        let again = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(again.entity, leaf);
    }

    #[test]
    fn zone_updates_propagate_with_latency() {
        use naming_core::name::Name;
        // Primary on m2 (owns `rem`), replica on m1.
        let mut w = World::new(72);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let m2 = w.add_machine("m2", net);
        let root1 = w.machine_root(m1);
        let root2 = w.machine_root(m2);
        let zone = store::ensure_dir(w.state_mut(), root2, "zone");
        let _old = store::create_file(w.state_mut(), zone, "rec", vec![1]);
        store::attach(w.state_mut(), root1, "far", zone, false);
        let mut svc = NameService::install(&mut w, &[m1, m2]);
        svc.place_subtree(&w, root2, m2);
        svc.place_subtree(&w, root1, m1);
        let copy = svc.replicate_zone(&mut w, zone, m1);
        let mut engine = ProtocolEngine::new(svc);

        // Primary rebinding opens the window.
        let fresh = w.state_mut().add_data_object("rec-v2", vec![2]);
        w.state_mut().bind(zone, Name::new("rec"), fresh).unwrap();
        assert_eq!(
            engine.service().replica_divergence(&w, zone).len(),
            1,
            "window open"
        );
        // Publish; before pumping, the copy is still stale.
        let sent = engine.publish_zone(&mut w, zone);
        assert_eq!(sent, 1);
        assert!(!engine.service().replica_divergence(&w, zone).is_empty());
        let t0 = w.now();
        let events = engine.pump_idle(&mut w);
        assert!(events >= 1);
        // Window length equals the network latency between the servers.
        let window = (w.now() - t0).ticks();
        assert_eq!(window, w.topology().latency_model().same_network);
        assert!(engine.service().replica_divergence(&w, zone).is_empty());
        // And the copy answers the new binding.
        assert_eq!(
            w.state().lookup(copy, Name::new("rec")),
            naming_core::entity::Entity::Object(fresh)
        );
    }

    #[test]
    fn publish_without_replicas_is_a_no_op() {
        let (mut w, svc, machines, root, _) = chain_world();
        let mut engine = ProtocolEngine::new(svc);
        assert_eq!(engine.publish_zone(&mut w, root), 0);
        assert_eq!(engine.pump_idle(&mut w), 0);
        let _ = machines;
    }

    #[test]
    fn batch_resolution_matches_singles_with_fewer_messages() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let names: Vec<CompoundName> = [
            "/hop1/hop2/leaf",
            "/hop1/hop2",
            "/hop1",
            "/hop1/nope",
            "/hop1/hop2/leaf", // duplicate: coalesces
        ]
        .iter()
        .map(|p| CompoundName::parse_path(p).unwrap())
        .collect();

        // Ground truth: each name alone.
        let mut single_msgs = 0u64;
        let singles: Vec<Entity> = names
            .iter()
            .map(|n| {
                let s = engine.resolve(&mut w, client, root, n, Mode::Iterative);
                single_msgs += s.messages;
                s.entity
            })
            .collect();
        assert_eq!(singles[0], leaf);

        let batch = engine.resolve_batch(&mut w, client, root, &names);
        assert_eq!(batch.entities, singles, "batch must agree name-by-name");
        // Three rounds (one per machine crossed), two messages each.
        assert_eq!(batch.rounds, 3);
        assert_eq!(batch.messages, 6);
        assert!(
            batch.messages * 3 <= single_msgs,
            "batched {} vs singles {}",
            batch.messages,
            single_msgs
        );
        // The duplicate name coalesced in every one of the three rounds
        // (one avoided exchange per round).
        assert_eq!(batch.coalesced, 3);
        assert!(batch.hops_saved > 0, "shared prefixes saved server work");
        // The deepest referral the batch followed is recordable: the
        // prefix "/hop1/hop2" handed authority to machine 2.
        assert!(batch
            .referrals
            .iter()
            .any(|(p, m, _)| p.to_string() == "/hop1/hop2" && *m == machines[2]));
    }

    #[test]
    fn batch_of_one_matches_single_resolve() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let single = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        let batch = engine.resolve_batch(&mut w, client, root, std::slice::from_ref(&name));
        assert_eq!(batch.entities, vec![leaf]);
        assert_eq!(batch.messages, single.messages);
        assert_eq!(batch.latency, single.latency);
        assert_eq!(batch.servers_touched, single.servers_touched);
    }

    #[test]
    fn batch_with_lost_messages_ends_in_bottom_not_hang() {
        let (mut w, svc, machines, root, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        w.set_message_drop_rate(1.0);
        let names = vec![
            CompoundName::parse_path("/hop1/hop2/leaf").unwrap(),
            CompoundName::parse_path("/hop1").unwrap(),
        ];
        let batch = engine.resolve_batch(&mut w, client, root, &names);
        assert_eq!(batch.entities, vec![Entity::Undefined, Entity::Undefined]);
        assert_eq!(
            batch.unreachable,
            vec![true, true],
            "lost batch exchanges are transport verdicts"
        );
    }

    #[test]
    fn batch_from_unplaced_start_is_all_bottom() {
        let (mut w, svc, machines, _, _) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let orphan = w.state_mut().add_context_object("orphan");
        let names = vec![CompoundName::parse_path("/x").unwrap()];
        let batch = engine.resolve_batch(&mut w, client, orphan, &names);
        assert_eq!(batch.entities, vec![Entity::Undefined]);
        assert_eq!(batch.messages, 0);
        assert_eq!(batch.unreachable, vec![true]);
    }

    #[test]
    fn traced_resolve_reports_the_referral_chain() {
        let (mut w, svc, machines, root, leaf) = chain_world();
        let client = w.spawn(machines[0], "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let (stats, hops) = engine.resolve_traced(&mut w, client, root, &name, Mode::Iterative);
        assert_eq!(stats.entity, leaf);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].consumed, 2); // "/", "hop1" consumed
        assert_eq!(hops[0].machine, machines[1]);
        assert_eq!(hops[1].consumed, 3);
        assert_eq!(hops[1].machine, machines[2]);
        // Recursive mode: the client never sees referrals.
        let (_, rhops) = engine.resolve_traced(&mut w, client, root, &name, Mode::Recursive);
        assert!(rhops.is_empty());
    }

    #[test]
    fn recursive_latency_beats_iterative_for_remote_clients() {
        // A client far from the chain benefits from recursion: referral
        // chasing pays the client<->server distance each hop.
        let (mut w, svc, machines, root, leaf) = chain_world();
        // Client on a separate network, far from everything.
        let far_net = w.add_network("far");
        let far_machine = w.add_machine("far-host", far_net);
        let client = w.spawn(far_machine, "client", None);
        let mut engine = ProtocolEngine::new(svc);
        let name = CompoundName::parse_path("/hop1/hop2/leaf").unwrap();
        let it = engine.resolve(&mut w, client, root, &name, Mode::Iterative);
        let rec = engine.resolve(&mut w, client, root, &name, Mode::Recursive);
        assert_eq!(it.entity, leaf);
        assert_eq!(rec.entity, leaf);
        assert!(
            rec.latency < it.latency,
            "recursive {:?} should beat iterative {:?}",
            rec.latency,
            it.latency
        );
        let _ = machines;
    }
}
