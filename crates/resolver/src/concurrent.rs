//! Concurrent snapshot serving: a multi-worker resolution front end.
//!
//! The paper's resolution rule only *consults* σ, so serving reads is
//! embarrassingly parallel between mutations. [`ConcurrentService`] splits
//! the two roles explicitly:
//!
//! * **Readers** — a fixed pool of worker threads consuming
//!   [`BatchRequest`] frames from an MPMC channel (`crossbeam::channel`).
//!   Each worker resolves against an immutable [`StateSnapshot`] carried by
//!   the job and keeps a private [`SnapshotMemo`] shard — no locks, no
//!   atomics, no validation on the read path.
//! * **The writer** — mutations apply to a private *staging* state
//!   ([`ConcurrentService::update`]); nothing a worker can observe changes
//!   until [`ConcurrentService::publish`] clones the staging state into a
//!   fresh `Arc`-shared snapshot and swaps it in (copy-on-publish). The
//!   generation stamp on the new snapshot makes every worker's memo shard
//!   self-invalidate on first contact.
//!
//! Answers are collected by submission order, so a drain is deterministic
//! regardless of worker count or scheduling — the property the CI
//! determinism leg and `bench_concurrent` assert byte-for-byte.

use std::collections::BTreeMap;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{self, Receiver, Sender};
use naming_core::entity::Entity;
use naming_core::resolve::Resolver;
use naming_core::snapshot::{SnapshotMemo, SnapshotMemoStats, StateSnapshot};
use naming_core::state::SystemState;
use naming_telemetry::metrics::MetricsRegistry;
// Re-exported so downstream crates can consume [`ServiceReport`] fields
// without depending on naming-telemetry themselves.
pub use naming_telemetry::flight::{FlightLog, FlightRecorder, SharedFlightRecorder};
pub use naming_telemetry::metrics::HistogramSnapshot;

use crate::wire::{BatchReply, BatchRequest, Outcome};

/// A unit of work: one batch frame plus the snapshot it resolves against.
struct Job {
    seq: u64,
    req: BatchRequest,
    snap: StateSnapshot,
    /// Wall-clock submission time, for queue-wait measurement. Purely
    /// observational — it feeds the worker's latency histograms and
    /// never touches an answer.
    submitted: Instant,
}

/// A completed batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchAnswer {
    /// Echoes [`BatchRequest::id`].
    pub id: u64,
    /// One entity per query id, total-function semantics (`⊥` =
    /// [`Entity::Undefined`]).
    pub entities: Vec<Entity>,
    /// The worker that served the batch (scheduling detail; varies run to
    /// run — everything else in the answer is deterministic).
    pub worker: usize,
}

impl BatchAnswer {
    /// The answer as wire outcomes: defined entities are
    /// [`Outcome::Resolved`], `⊥` is [`Outcome::NotFound`]. A snapshot
    /// worker resolves in-process against state it already holds — no
    /// transport is involved, so [`Outcome::Unreachable`] cannot arise
    /// here and every ⊥ is authoritative for the snapshot's generation.
    pub fn outcomes(&self) -> Vec<Outcome> {
        self.entities
            .iter()
            .map(|&e| {
                if e.is_defined() {
                    Outcome::Resolved(e)
                } else {
                    Outcome::NotFound
                }
            })
            .collect()
    }

    /// Packages the answer as the [`BatchReply`] frame a wire front end
    /// would send back for the originating [`BatchRequest`].
    pub fn to_reply(&self) -> BatchReply {
        BatchReply {
            id: self.id,
            outcomes: self.outcomes(),
            servers_touched: 1,
            lookups_saved: 0,
        }
    }
}

struct Done {
    seq: u64,
    answer: BatchAnswer,
}

/// What one worker did over its lifetime.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Batches served.
    pub batches: u64,
    /// Individual queries answered.
    pub queries: u64,
    /// The worker's private memo-shard counters.
    pub memo: SnapshotMemoStats,
    /// Wall-clock nanoseconds each batch waited in the queue before this
    /// worker dequeued it. Observational (wall clock, not VirtualTime):
    /// it varies run to run and never feeds an answer.
    pub queue_wait: HistogramSnapshot,
    /// Wall-clock nanoseconds this worker spent serving each batch
    /// (dequeue → answer sent). Same caveat as `queue_wait`.
    pub service_time: HistogramSnapshot,
}

/// Aggregated lifetime report, returned by [`ConcurrentService::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct ServiceReport {
    /// Per-worker reports, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Snapshots published.
    pub publishes: u64,
    /// Publish calls skipped because the staged delta was empty.
    pub noop_publishes: u64,
    /// Highest number of batches simultaneously in flight (queued or
    /// being served) over the service's lifetime.
    pub queue_depth_hwm: u64,
    /// The merged flight log (empty unless the service was built with
    /// [`ConcurrentService::with_sampling`]). Entries are ordered by
    /// `(request id, query index)` — identical for every worker count.
    pub flight: FlightLog,
}

impl ServiceReport {
    /// Total batches served across workers.
    pub fn batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Total queries answered across workers.
    pub fn queries(&self) -> u64 {
        self.workers.iter().map(|w| w.queries).sum()
    }
}

/// A multi-worker name service over immutable snapshots.
///
/// Single-writer, many-reader: `&mut self` serializes every mutation and
/// publish, while submitted batches resolve concurrently on the pool.
/// Workers always answer from the snapshot that was current at submission
/// time, so a client never observes a half-applied update.
///
/// # Examples
///
/// ```
/// use naming_core::prelude::*;
/// use naming_resolver::concurrent::ConcurrentService;
/// use naming_resolver::wire::{BatchRequest, NameTrie};
///
/// let mut sys = SystemState::new();
/// let root = sys.add_context_object("root");
/// let f = sys.add_data_object("f", vec![]);
/// sys.bind(root, Name::new("f"), f).unwrap();
///
/// let mut svc = ConcurrentService::new(sys, 4);
/// let (trie, _) = NameTrie::build(&[CompoundName::atom(Name::new("f"))]);
/// svc.submit(BatchRequest { id: 7, start: root, trie });
/// let answers = svc.drain();
/// assert_eq!(answers[0].entities, vec![Entity::Object(f)]);
/// svc.shutdown();
/// ```
#[derive(Debug)]
pub struct ConcurrentService {
    staging: SystemState,
    current: StateSnapshot,
    jobs: Option<Sender<Job>>,
    results: Receiver<Done>,
    workers: Vec<JoinHandle<WorkerReport>>,
    /// Per-worker flight recorders (worker-index order), shared with the
    /// pool; empty when the service was built without sampling.
    flights: Vec<SharedFlightRecorder>,
    next_seq: u64,
    pending: u64,
    queue_depth_hwm: u64,
    publishes: u64,
    /// Staging revision captured by the last publish; equality means the
    /// staged delta is empty and a publish can reuse the current snapshot.
    published_revision: u64,
    noop_publishes: u64,
}

impl ConcurrentService {
    /// Starts `workers` worker threads serving snapshots of `initial`
    /// (which is published immediately), with no flight sampling.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(initial: SystemState, workers: usize) -> ConcurrentService {
        ConcurrentService::with_sampling(initial, workers, 0)
    }

    /// Starts the pool with a per-worker flight recorder sampling one
    /// query in `sample_every` (0 disables sampling; 1 records every
    /// query). Admission is a hash of `(request id, name)` — never a
    /// clock or an RNG draw — so which queries get sampled, and the
    /// resulting [`FlightLog`], are identical across runs and worker
    /// counts. Answers are never affected.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_sampling(
        initial: SystemState,
        workers: usize,
        sample_every: u64,
    ) -> ConcurrentService {
        assert!(workers > 0, "worker pool must be nonempty");
        let (jobs_tx, jobs_rx) = channel::unbounded::<Job>();
        let (results_tx, results_rx) = channel::unbounded::<Done>();
        let flights: Vec<SharedFlightRecorder> = if sample_every == 0 {
            Vec::new()
        } else {
            (0..workers)
                .map(|idx| FlightRecorder::new(idx as u32, sample_every).into_shared())
                .collect()
        };
        let handles = (0..workers)
            .map(|idx| {
                let rx = jobs_rx.clone();
                let tx = results_tx.clone();
                let flight = flights.get(idx).cloned();
                std::thread::spawn(move || worker_loop(idx, rx, tx, flight))
            })
            .collect();
        let current = StateSnapshot::capture(&initial);
        let published_revision = initial.revision();
        ConcurrentService {
            staging: initial,
            current,
            jobs: Some(jobs_tx),
            results: results_rx,
            workers: handles,
            flights,
            next_seq: 0,
            pending: 0,
            queue_depth_hwm: 0,
            publishes: 1,
            published_revision,
            noop_publishes: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The currently published snapshot (what submitted batches see).
    pub fn snapshot(&self) -> StateSnapshot {
        self.current.clone()
    }

    /// The staging state — mutations made here are invisible to workers
    /// until [`ConcurrentService::publish`].
    pub fn staging(&self) -> &SystemState {
        &self.staging
    }

    /// Applies a mutation to the staging state. Readers are unaffected;
    /// `&mut self` is the write serialization point.
    pub fn update<R>(&mut self, f: impl FnOnce(&mut SystemState) -> R) -> R {
        f(&mut self.staging)
    }

    /// Publishes the staging state: clones it into a fresh `Arc`-shared
    /// snapshot and swaps it in. Batches submitted from now on resolve
    /// against the new state; in-flight batches keep the snapshot they
    /// were submitted with. Returns the new snapshot's stamp.
    ///
    /// The clone is per-shard copy-on-publish — only shards written since
    /// the last publish are copied; untouched shards are `Arc`-shared
    /// between the snapshot and staging. If *nothing* was staged since the
    /// last publish, this is a complete no-op: the current snapshot (and
    /// its `Arc`) is reused, no clone happens, and the publish counter
    /// does not move.
    pub fn publish(&mut self) -> (u64, u64) {
        if self.staging.revision() == self.published_revision {
            self.noop_publishes += 1;
            return self.current.stamp();
        }
        self.current = StateSnapshot::capture(&self.staging);
        self.published_revision = self.staging.revision();
        self.publishes += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::counter!("service.concurrent.publishes").bump();
        self.current.stamp()
    }

    /// How many [`ConcurrentService::publish`] calls found an empty staged
    /// delta and reused the current snapshot.
    pub fn noop_publishes(&self) -> u64 {
        self.noop_publishes
    }

    /// Queues a batch for resolution against the current snapshot.
    /// Answers are retrieved with [`ConcurrentService::drain`], in
    /// submission order.
    pub fn submit(&mut self, req: BatchRequest) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.queue_depth_hwm = self.queue_depth_hwm.max(self.pending);
        let job = Job {
            seq,
            req,
            snap: self.current.clone(),
            submitted: Instant::now(),
        };
        self.jobs
            .as_ref()
            .expect("service not shut down")
            .send(job)
            .expect("worker pool alive");
    }

    /// Decodes and queues an encoded [`BatchRequest`] frame. Returns
    /// `false` (submitting nothing) on a malformed frame.
    pub fn submit_frame(&mut self, frame: bytes::Bytes) -> bool {
        match BatchRequest::decode(frame) {
            Some(req) => {
                self.submit(req);
                true
            }
            None => false,
        }
    }

    /// Blocks until every submitted batch has been answered and returns
    /// the answers **in submission order** — deterministic for any worker
    /// count.
    pub fn drain(&mut self) -> Vec<BatchAnswer> {
        let mut by_seq: BTreeMap<u64, BatchAnswer> = BTreeMap::new();
        while self.pending > 0 {
            let done = self.results.recv().expect("workers alive while draining");
            by_seq.insert(done.seq, done.answer);
            self.pending -= 1;
        }
        by_seq.into_values().collect()
    }

    /// The merged flight log so far: every worker's sampled entries,
    /// ordered by `(request id, query index)`. Which entries appear is a
    /// pure function of the submitted workload and the sampling rate —
    /// identical across runs and worker counts. Empty unless the service
    /// was built with [`ConcurrentService::with_sampling`].
    ///
    /// Safe to call while workers are busy, but for a stable log drain
    /// first so no batch is mid-service.
    pub fn flight_log(&self) -> FlightLog {
        let guards: Vec<_> = self.flights.iter().map(|f| f.lock()).collect();
        FlightLog::merge(guards.iter().map(|g| &**g))
    }

    /// Stops the pool (after completing queued work) and returns the
    /// aggregated lifetime report.
    pub fn shutdown(mut self) -> ServiceReport {
        // Closing the job channel ends every worker's `iter()` loop.
        self.jobs = None;
        let workers = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        // Merge after the join so queued-but-undrained work is included.
        let flight = self.flight_log();
        ServiceReport {
            workers,
            publishes: self.publishes,
            noop_publishes: self.noop_publishes,
            queue_depth_hwm: self.queue_depth_hwm,
            flight,
        }
    }
}

impl Drop for ConcurrentService {
    fn drop(&mut self) {
        self.jobs = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// The worker body: resolve every query of every received batch against
/// the job's snapshot, memoizing in a private shard.
fn worker_loop(
    idx: usize,
    jobs: Receiver<Job>,
    results: Sender<Done>,
    flight: Option<SharedFlightRecorder>,
) -> WorkerReport {
    let resolver = Resolver::new();
    let mut memo = SnapshotMemo::new();
    let mut report = WorkerReport::default();
    // Worker-private latency histograms (wall clock, observational only).
    // `Histogram` is only constructible through a registry, so keep a
    // local one rather than polluting the global namespace per worker.
    let local = MetricsRegistry::new();
    let queue_wait = local.histogram("worker.queue_wait_ns");
    let service_time = local.histogram("worker.service_ns");
    // The `counter!` macro caches per call site, which would conflate
    // workers; resolve this worker's handles from the registry once. The
    // names come from the interner, so every worker index — not just the
    // first eight — gets its own counters.
    #[cfg(feature = "telemetry")]
    let (worker_batches, worker_queries) = {
        let (batches, queries) =
            crate::worker_metrics::batch_query_names(crate::worker_metrics::Family::Service, idx);
        let reg = naming_telemetry::metrics::global();
        (reg.counter(batches), reg.counter(queries))
    };
    for job in jobs.iter() {
        let started = Instant::now();
        queue_wait.record(started.duration_since(job.submitted).as_nanos() as u64);
        let names = job.req.trie.names();
        let mut entities = Vec::with_capacity(names.len());
        for (query, name) in names.iter().enumerate() {
            let entity =
                resolver.resolve_entity_snapshot_memo(&job.snap, job.req.start, name, &mut memo);
            if let Some(flight) = &flight {
                // Admission hashes (request id, name) — deterministic, so
                // the merged log is the same for any worker count. The
                // outcome string renders only for admitted entries.
                flight
                    .lock()
                    .observe(job.req.id, query as u32, &name.to_string(), job.seq, || {
                        format!("{entity}")
                    });
            }
            entities.push(entity);
        }
        service_time.record(started.elapsed().as_nanos() as u64);
        report.batches += 1;
        report.queries += names.len() as u64;
        #[cfg(feature = "telemetry")]
        {
            worker_batches.bump();
            worker_queries.add(names.len() as u64);
            naming_telemetry::counter!("service.concurrent.batches").bump();
            naming_telemetry::counter!("service.concurrent.queries").add(names.len() as u64);
        }
        let done = Done {
            seq: job.seq,
            answer: BatchAnswer {
                id: job.req.id,
                entities,
                worker: idx,
            },
        };
        if results.send(done).is_err() {
            // Service dropped mid-flight; nothing left to report to.
            break;
        }
    }
    report.memo = memo.stats();
    report.queue_wait = queue_wait.snapshot();
    report.service_time = service_time.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NameTrie;
    use naming_core::name::{CompoundName, Name};
    use naming_core::prelude::ObjectId;

    /// root -> {etc -> passwd, usr -> bin -> cc}.
    fn tree() -> (SystemState, ObjectId) {
        let mut s = SystemState::new();
        let root = s.add_context_object("root");
        let etc = s.add_context_object("etc");
        let usr = s.add_context_object("usr");
        let bin = s.add_context_object("bin");
        let passwd = s.add_data_object("passwd", vec![]);
        let cc = s.add_data_object("cc", vec![]);
        s.bind(root, Name::root(), root).unwrap();
        s.bind(root, Name::new("etc"), etc).unwrap();
        s.bind(root, Name::new("usr"), usr).unwrap();
        s.bind(etc, Name::new("passwd"), passwd).unwrap();
        s.bind(usr, Name::new("bin"), bin).unwrap();
        s.bind(bin, Name::new("cc"), cc).unwrap();
        (s, root)
    }

    fn batch(id: u64, start: ObjectId, paths: &[&str]) -> (BatchRequest, Vec<CompoundName>) {
        let names: Vec<CompoundName> = paths
            .iter()
            .map(|p| CompoundName::parse_path(p).unwrap())
            .collect();
        let (trie, _) = NameTrie::build(&names);
        (BatchRequest { id, start, trie }, names)
    }

    #[test]
    fn answers_match_serial_resolution_for_any_worker_count() {
        let (s, root) = tree();
        let paths = ["/etc/passwd", "/usr/bin/cc", "/nope", "/etc", "/usr/bin"];
        let serial: Vec<Entity> = {
            let r = Resolver::new();
            let (req, _) = batch(0, root, &paths);
            req.trie
                .names()
                .iter()
                .map(|n| r.resolve_entity(&s, root, n))
                .collect()
        };
        for workers in [1, 2, 4] {
            let mut svc = ConcurrentService::new(s.clone(), workers);
            let (req, _) = batch(42, root, &paths);
            svc.submit(req);
            let answers = svc.drain();
            assert_eq!(answers.len(), 1);
            assert_eq!(answers[0].id, 42);
            assert_eq!(answers[0].entities, serial, "{workers} workers");
            let report = svc.shutdown();
            assert_eq!(report.batches(), 1);
            assert_eq!(report.queries(), serial.len() as u64);
        }
    }

    #[test]
    fn drain_orders_by_submission_not_completion() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 4);
        for id in 0..32u64 {
            let (req, _) = batch(id, root, &["/etc/passwd", "/usr/bin/cc"]);
            svc.submit(req);
        }
        let answers = svc.drain();
        let ids: Vec<u64> = answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
        svc.shutdown();
    }

    #[test]
    fn staged_writes_invisible_until_publish() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 2);
        let n = ["/etc/shadow"];

        // Bind into staging; workers still see the published snapshot.
        let shadow = svc.update(|sys| {
            let etc = match sys.lookup(root, Name::new("etc")) {
                Entity::Object(o) => o,
                other => panic!("etc is {other:?}"),
            };
            let shadow = sys.add_data_object("shadow", vec![]);
            sys.bind(etc, Name::new("shadow"), shadow).unwrap();
            shadow
        });
        let (req, _) = batch(1, root, &n);
        svc.submit(req);
        assert_eq!(svc.drain()[0].entities, vec![Entity::Undefined]);

        // Publish; the same batch now resolves.
        let before = svc.snapshot().stamp();
        let after = svc.publish();
        assert_ne!(before, after);
        let (req, _) = batch(2, root, &n);
        svc.submit(req);
        assert_eq!(svc.drain()[0].entities, vec![Entity::Object(shadow)]);
        let report = svc.shutdown();
        assert_eq!(report.publishes, 2);
    }

    #[test]
    fn in_flight_batches_keep_their_snapshot() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 1);
        let (req, _) = batch(1, root, &["/etc/passwd"]);
        svc.submit(req);
        // Unbind and publish immediately after submission: the submitted
        // batch must still answer from the snapshot it was paired with.
        svc.update(|sys| {
            let etc = match sys.lookup(root, Name::new("etc")) {
                Entity::Object(o) => o,
                other => panic!("etc is {other:?}"),
            };
            sys.unbind(etc, Name::new("passwd")).unwrap();
        });
        svc.publish();
        let first = svc.drain();
        assert!(first[0].entities[0].is_defined());
        let (req, _) = batch(2, root, &["/etc/passwd"]);
        svc.submit(req);
        assert_eq!(svc.drain()[0].entities, vec![Entity::Undefined]);
        svc.shutdown();
    }

    #[test]
    fn submit_frame_round_trips_and_rejects_garbage() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 2);
        let (req, _) = batch(9, root, &["/usr/bin/cc"]);
        assert!(svc.submit_frame(req.encode()));
        assert!(!svc.submit_frame(bytes::Bytes::from_static(b"\xffgarbage")));
        let answers = svc.drain();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].id, 9);
        assert!(answers[0].entities[0].is_defined());
        svc.shutdown();
    }

    #[test]
    fn worker_memo_shards_reset_across_publishes() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 1);
        for round in 0..3u64 {
            let (req, _) = batch(round, root, &["/etc/passwd", "/etc/passwd"]);
            svc.submit(req);
            svc.drain();
            svc.update(|sys| {
                // Any naming change: rebind root's self-binding.
                sys.bind(root, Name::root(), root).unwrap();
            });
            svc.publish();
        }
        let report = svc.shutdown();
        // Each publish carried a new stamp, so the single worker's shard
        // reset between rounds.
        assert!(
            report.workers[0].memo.resets >= 2,
            "{:?}",
            report.workers[0]
        );
    }

    #[test]
    fn empty_delta_publish_is_a_noop_reusing_the_snapshot_arc() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 2);
        let before = svc.snapshot();

        // Nothing staged: publish must not clone, not bump the counter,
        // and hand back the very same snapshot allocation.
        let stamp = svc.publish();
        assert_eq!(stamp, before.stamp());
        assert!(svc.snapshot().ptr_eq(&before));
        assert_eq!(svc.noop_publishes(), 1);

        // Reads only (even through drain) still leave the delta empty.
        let (req, _) = batch(1, root, &["/etc/passwd"]);
        svc.submit(req);
        svc.drain();
        svc.publish();
        assert!(svc.snapshot().ptr_eq(&before));

        // A real write makes the next publish produce a fresh snapshot.
        svc.update(|sys| {
            sys.bind(root, Name::root(), root).unwrap();
        });
        svc.publish();
        assert!(!svc.snapshot().ptr_eq(&before));
        let report = svc.shutdown();
        assert_eq!(report.publishes, 2);
        assert_eq!(report.noop_publishes, 2);
    }

    #[test]
    fn publish_copies_only_written_shards() {
        // Two zones, two shards: a publish after writing zone A must keep
        // sharing zone B's shard with staging.
        let mut s = SystemState::with_shards(2);
        let root = s.add_context_object_in(0, "root");
        let za = s.add_context_object_in(0, "za");
        let zb = s.add_context_object_in(1, "zb");
        s.bind(root, Name::root(), root).unwrap();
        s.bind(root, Name::new("za"), za).unwrap();
        s.bind(root, Name::new("zb"), zb).unwrap();

        let mut svc = ConcurrentService::new(s, 1);
        assert_eq!(svc.snapshot().state().shards_shared_with(svc.staging()), 2);

        svc.update(|sys| {
            let f = sys.add_data_object_in(0, "f", vec![]);
            sys.bind(za, Name::new("f"), f).unwrap();
        });
        svc.publish();
        // The fresh snapshot shares the untouched shard 1 with staging.
        assert_eq!(svc.snapshot().state().shards_shared_with(svc.staging()), 2);
        svc.update(|sys| {
            let g = sys.add_data_object_in(0, "g", vec![]);
            sys.bind(za, Name::new("g"), g).unwrap();
        });
        // After more zone-A staging, shard 0 diverges but shard 1 is
        // still physically shared with the published snapshot.
        assert_eq!(svc.snapshot().state().shards_shared_with(svc.staging()), 1);
        svc.shutdown();
    }

    /// Runs the same 24-batch workload under sampling and returns the
    /// merged flight log.
    fn sampled_run(workers: usize, every: u64) -> (FlightLog, ServiceReport) {
        let (s, root) = tree();
        let mut svc = ConcurrentService::with_sampling(s, workers, every);
        for id in 0..24u64 {
            let (req, _) = batch(id, root, &["/etc/passwd", "/usr/bin/cc", "/nope"]);
            svc.submit(req);
        }
        svc.drain();
        let live = svc.flight_log();
        (live, svc.shutdown())
    }

    #[test]
    fn flight_log_is_deterministic_across_runs_and_worker_counts() {
        let (base_live, base) = sampled_run(1, 2);
        assert!(!base.flight.entries.is_empty(), "sampling admitted nothing");
        assert!(
            base.flight.sampled < base.flight.seen,
            "1-in-2 skipped none"
        );
        // The live (pre-shutdown) merge already equals the final one here
        // because the workload was drained first.
        assert_eq!(base_live.keys(), base.flight.keys());
        for workers in [1, 2, 4] {
            let (_, run) = sampled_run(workers, 2);
            assert_eq!(run.flight.entries, base.flight.entries, "{workers} workers");
            assert_eq!(run.flight.seen, base.flight.seen);
            assert_eq!(run.flight.sampled, base.flight.sampled);
        }
        // Entries arrive ordered by (request, query).
        let order: Vec<(u64, u32)> = base
            .flight
            .entries
            .iter()
            .map(|e| (e.request, e.query))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn sampling_never_changes_answers_and_default_service_logs_nothing() {
        let (s, root) = tree();
        let paths = ["/etc/passwd", "/usr/bin/cc", "/nope"];
        let mut plain = ConcurrentService::new(s.clone(), 2);
        let mut sampled = ConcurrentService::with_sampling(s, 2, 1);
        for id in 0..8u64 {
            let (req, _) = batch(id, root, &paths);
            plain.submit(req);
            let (req, _) = batch(id, root, &paths);
            sampled.submit(req);
        }
        let a: Vec<Vec<Entity>> = plain.drain().into_iter().map(|b| b.entities).collect();
        let b: Vec<Vec<Entity>> = sampled.drain().into_iter().map(|b| b.entities).collect();
        assert_eq!(a, b);
        let plain_report = plain.shutdown();
        let sampled_report = sampled.shutdown();
        assert!(plain_report.flight.entries.is_empty());
        assert_eq!(plain_report.flight.seen, 0);
        // every=1 admits every query.
        assert_eq!(sampled_report.flight.sampled, sampled_report.flight.seen);
        assert_eq!(sampled_report.flight.seen, 8 * paths.len() as u64);
    }

    #[test]
    fn report_tracks_queue_depth_hwm_and_latency_histograms() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 2);
        for id in 0..16u64 {
            let (req, _) = batch(id, root, &["/etc/passwd"]);
            svc.submit(req);
        }
        svc.drain();
        let report = svc.shutdown();
        // 16 batches were submitted before any drain; the high-water mark
        // saw at least the full backlog at some point (workers may have
        // started, so only a lower bound of 1 is exact — but submission
        // happens before any recv can be observed by `pending`, so the
        // mark is exactly 16 here).
        assert_eq!(report.queue_depth_hwm, 16);
        let served: u64 = report.workers.iter().map(|w| w.service_time.count).sum();
        let waited: u64 = report.workers.iter().map(|w| w.queue_wait.count).sum();
        assert_eq!(served, 16);
        assert_eq!(waited, 16);
        assert!(report
            .workers
            .iter()
            .all(|w| w.queue_wait.count == w.batches));
    }

    #[test]
    fn answers_convert_to_wire_replies_without_unreachable() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 2);
        let (req, _) = batch(9, root, &["/etc/passwd", "/nope"]);
        svc.submit(req);
        let answers = svc.drain();
        assert_eq!(answers.len(), 1);
        let reply = answers[0].to_reply();
        assert_eq!(reply.id, 9);
        assert_eq!(reply.outcomes.len(), 2);
        // Defined answers resolve; in-process ⊥ is authoritative NotFound,
        // never a transport verdict.
        assert!(matches!(reply.outcomes[0], Outcome::Resolved(_)));
        assert_eq!(reply.outcomes[1], Outcome::NotFound);
        assert!(!reply
            .outcomes
            .iter()
            .any(|o| matches!(o, Outcome::Unreachable { .. })));
        // The frame round-trips through the wire codec.
        let decoded = BatchReply::decode(reply.encode()).unwrap();
        assert_eq!(decoded, reply);
        svc.shutdown();
    }

    /// Regression: the old fixed 8-slot name tables aliased every worker
    /// past index 7 onto `service.worker7.*`. A pool wider than eight
    /// workers must register a distinct counter pair per worker.
    #[cfg(feature = "telemetry")]
    #[test]
    fn wide_pool_registers_distinct_per_worker_counters() {
        let (s, root) = tree();
        let mut svc = ConcurrentService::new(s, 10);
        for id in 0..32u64 {
            let (req, _) = batch(id, root, &["/etc/passwd"]);
            svc.submit(req);
        }
        svc.drain();
        svc.shutdown();
        // Every worker resolves its handles at thread start, so all ten
        // names exist in the global registry regardless of job placement.
        let snap = naming_telemetry::metrics::global().snapshot();
        for i in 0..10 {
            for kind in ["batches", "queries"] {
                let name = format!("service.worker{i}.{kind}");
                assert!(
                    snap.counters.contains_key(&name),
                    "missing per-worker counter {name}"
                );
            }
        }
    }
}
