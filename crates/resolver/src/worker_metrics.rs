//! Interned per-worker metric names.
//!
//! The global metrics registry keys metrics by `&'static str`, which a
//! fixed `const` table can only supply for a fixed worker count — the old
//! 8-slot tables silently aliased every worker past index 7 onto
//! `"…worker7.*"`, conflating their counts. Instead, names are formatted
//! once per worker index and leaked: the leak is bounded by the largest
//! worker index ever used in the process (a handful of short strings),
//! and every pool size gets distinct counters.

use std::sync::{Mutex, OnceLock};

/// Which serving runtime the worker belongs to; each family gets its own
/// metric namespace so a thread pool and a reactor running in the same
/// process never share counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Family {
    /// `ConcurrentService` thread-pool workers: `service.worker{i}.*`.
    Service,
    /// Pipelined-runtime reactor workers: `pipeline.worker{i}.*`.
    Pipeline,
}

/// Returns the interned `("{family}.worker{idx}.batches",
/// "{family}.worker{idx}.queries")` pair for any worker index.
pub(crate) fn batch_query_names(family: Family, idx: usize) -> (&'static str, &'static str) {
    static SERVICE: OnceLock<Mutex<Vec<(&'static str, &'static str)>>> = OnceLock::new();
    static PIPELINE: OnceLock<Mutex<Vec<(&'static str, &'static str)>>> = OnceLock::new();
    let (cell, prefix) = match family {
        Family::Service => (&SERVICE, "service"),
        Family::Pipeline => (&PIPELINE, "pipeline"),
    };
    let mut table = cell.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    while table.len() <= idx {
        let i = table.len();
        let batches: &'static str =
            Box::leak(format!("{prefix}.worker{i}.batches").into_boxed_str());
        let queries: &'static str =
            Box::leak(format!("{prefix}.worker{i}.queries").into_boxed_str());
        table.push((batches, queries));
    }
    table[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_at_any_index() {
        // Past the old 8-slot table: worker 9 and worker 23 must not alias.
        let (b9, q9) = batch_query_names(Family::Service, 9);
        let (b23, q23) = batch_query_names(Family::Service, 23);
        assert_eq!(b9, "service.worker9.batches");
        assert_eq!(q23, "service.worker23.queries");
        assert_ne!(b9, b23);
        assert_ne!(q9, q23);
        // Stable across calls (same leaked allocation).
        assert!(std::ptr::eq(b9, batch_query_names(Family::Service, 9).0));
        // Families do not share a namespace.
        assert_eq!(
            batch_query_names(Family::Pipeline, 9).0,
            "pipeline.worker9.batches"
        );
    }
}
