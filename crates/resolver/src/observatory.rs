//! The coherence-SLO observatory: continuous measurement of staleness,
//! false-⊥, unreachability, and publish-latency burn against declared
//! service-level objectives.
//!
//! The paper's §5 weak-coherence argument is temporal — incoherence is
//! tolerable *because it is bounded in time* — but nothing in the stack
//! measured that bound while a system runs. A [`StalenessObservatory`]
//! rides the existing machinery ([`naming_core::monitor::CoherenceMonitor`]
//! for audited incoherence windows, [`crate::engine::ResolveStats`] for
//! transport-vs-naming verdicts, the publish pipeline for propagation
//! latency) and grades what it sees against [`SloThresholds`]:
//!
//! * **staleness** — how long participants were observed to disagree
//!   (the monitor's degraded windows, fed via
//!   [`StalenessObservatory::note_staleness_window`]);
//! * **false ⊥** — resolutions that answered "unbound" where the oracle
//!   says the name is bound: the §2 contract violated;
//! * **unreachable** — transport verdicts, which the SLO separates from
//!   ⊥ exactly as PR 5 separated them in the protocol;
//! * **publish burn** — publish latency quantiles against the declared
//!   budget, as a burn ratio (>1 = over budget).
//!
//! Every measured quantity lives on the VirtualTime axis in windowed
//! histograms, so the observatory is deterministic: the same workload
//! produces byte-identical [`SloReport`]s whether or not the `telemetry`
//! feature is compiled in. The feature only adds side channels — `slo.*`
//! counters/histograms in the global registry and breach instants on the
//! trace timeline.

use naming_core::monitor::CoherenceMonitor;
use naming_telemetry::metrics::HistogramSnapshot;
use naming_telemetry::window::WindowedHistogram;

use crate::engine::ResolveStats;

/// Declared service-level objectives the observatory grades against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloThresholds {
    /// Longest tolerable observed staleness window, in ticks (§5's
    /// temporal bound on weak coherence).
    pub staleness_ticks: u64,
    /// Highest tolerable false-⊥ rate (fraction of resolves).
    pub false_bottom_rate: f64,
    /// Highest tolerable unreachable rate (fraction of resolves).
    pub unreachable_rate: f64,
    /// Publish-latency budget in ticks, graded at p99.
    pub publish_p99_ticks: u64,
}

impl Default for SloThresholds {
    fn default() -> SloThresholds {
        SloThresholds {
            staleness_ticks: 2_000,
            false_bottom_rate: 0.0,
            unreachable_rate: 0.01,
            publish_p99_ticks: 1_000,
        }
    }
}

/// One threshold violation, as seen at note time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloBreach {
    /// Tick at which the breach was observed.
    pub ticks: u64,
    /// Which objective was violated (`staleness`, `false-bottom`, …).
    pub objective: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// The observatory: see the module docs.
///
/// Construction declares the thresholds and the windowing of the rolling
/// histograms; `note_*` calls feed it as the system runs; [`Self::report`]
/// grades the accumulated evidence.
#[derive(Debug)]
pub struct StalenessObservatory {
    thresholds: SloThresholds,
    resolve_latency: WindowedHistogram,
    publish_latency: WindowedHistogram,
    staleness: WindowedHistogram,
    resolves: u64,
    bottoms: u64,
    false_bottoms: u64,
    unreachables: u64,
    publishes: u64,
    staleness_windows: u64,
    breaches: Vec<SloBreach>,
}

impl StalenessObservatory {
    /// An observatory with rolling windows of `window_ticks` ×
    /// `max_windows` on every measured axis.
    pub fn new(thresholds: SloThresholds, window_ticks: u64, max_windows: usize) -> Self {
        StalenessObservatory {
            thresholds,
            resolve_latency: WindowedHistogram::new(window_ticks, max_windows),
            publish_latency: WindowedHistogram::new(window_ticks, max_windows),
            staleness: WindowedHistogram::new(window_ticks, max_windows),
            resolves: 0,
            bottoms: 0,
            false_bottoms: 0,
            unreachables: 0,
            publishes: 0,
            staleness_windows: 0,
            breaches: Vec::new(),
        }
    }

    /// The declared thresholds.
    pub fn thresholds(&self) -> SloThresholds {
        self.thresholds
    }

    /// Feeds one protocol resolution. `expected_defined` is the oracle's
    /// verdict on whether the name is bound (from the workload's own
    /// bookkeeping); `Some(true)` + an authoritative ⊥ answer is a false
    /// ⊥ — the §2 contract violated — and breaches immediately when the
    /// threshold is zero.
    pub fn note_resolve(&mut self, now: u64, stats: &ResolveStats, expected_defined: Option<bool>) {
        self.resolves += 1;
        self.resolve_latency.record(now, stats.latency.ticks());
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("slo.resolves").bump();
            naming_telemetry::histogram!("slo.resolve.latency").record(stats.latency.ticks());
        }
        if stats.unreachable {
            self.unreachables += 1;
            #[cfg(feature = "telemetry")]
            naming_telemetry::counter!("slo.unreachable").bump();
            return;
        }
        if !stats.entity.is_defined() {
            self.bottoms += 1;
            if expected_defined == Some(true) {
                self.false_bottoms += 1;
                #[cfg(feature = "telemetry")]
                naming_telemetry::counter!("slo.false_bottom").bump();
                if self.false_bottom_rate() > self.thresholds.false_bottom_rate {
                    self.breach(
                        now,
                        "false-bottom",
                        format!(
                            "false-⊥ rate {:.4} exceeds {:.4}",
                            self.false_bottom_rate(),
                            self.thresholds.false_bottom_rate
                        ),
                    );
                }
            }
        }
    }

    /// Feeds one snapshot publish and its propagation latency.
    pub fn note_publish(&mut self, now: u64, latency_ticks: u64) {
        self.publishes += 1;
        self.publish_latency.record(now, latency_ticks);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("slo.publishes").bump();
            naming_telemetry::histogram!("slo.publish.latency").record(latency_ticks);
        }
        let p99 = self.publish_latency.p99();
        if p99 > self.thresholds.publish_p99_ticks {
            self.breach(
                now,
                "publish-latency",
                format!(
                    "publish p99 {p99} ticks over budget {}",
                    self.thresholds.publish_p99_ticks
                ),
            );
        }
    }

    /// Feeds one observed staleness window `[start, end]` in ticks —
    /// typically from
    /// [`CoherenceMonitor::degraded_windows`][naming_core::monitor::CoherenceMonitor::degraded_windows].
    pub fn note_staleness_window(&mut self, start: u64, end: u64) {
        let span = end.saturating_sub(start);
        self.staleness_windows += 1;
        self.staleness.record(end, span);
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("slo.staleness.windows").bump();
            naming_telemetry::histogram!("slo.staleness.window").record(span);
        }
        if span > self.thresholds.staleness_ticks {
            self.breach(
                end,
                "staleness",
                format!(
                    "staleness window {span} ticks exceeds {}",
                    self.thresholds.staleness_ticks
                ),
            );
        }
    }

    /// Feeds every degraded window a [`CoherenceMonitor`] observed below
    /// `coherence_threshold` (see
    /// [`CoherenceMonitor::degraded_windows`][naming_core::monitor::CoherenceMonitor::degraded_windows]).
    pub fn absorb_monitor(&mut self, monitor: &CoherenceMonitor, coherence_threshold: f64) {
        for (start, end) in monitor.degraded_windows(coherence_threshold) {
            self.note_staleness_window(start, end);
        }
    }

    fn breach(&mut self, ticks: u64, objective: &'static str, detail: String) {
        #[cfg(feature = "telemetry")]
        {
            naming_telemetry::counter!("slo.breaches").bump();
            naming_telemetry::recorder::instant(
                "slo",
                format!("breach:{objective}"),
                vec![("detail".into(), detail.clone())],
            );
        }
        self.breaches.push(SloBreach {
            ticks,
            objective,
            detail,
        });
    }

    /// Observed false-⊥ rate (fraction of all resolves so far).
    pub fn false_bottom_rate(&self) -> f64 {
        rate(self.false_bottoms, self.resolves)
    }

    /// Observed unreachable rate (fraction of all resolves so far).
    pub fn unreachable_rate(&self) -> f64 {
        rate(self.unreachables, self.resolves)
    }

    /// Every breach observed so far, in observation order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// Grades the evidence accumulated so far.
    pub fn report(&self) -> SloReport {
        let publish_p99 = self.publish_latency.p99();
        SloReport {
            thresholds: self.thresholds,
            resolves: self.resolves,
            bottoms: self.bottoms,
            false_bottoms: self.false_bottoms,
            unreachables: self.unreachables,
            publishes: self.publishes,
            false_bottom_rate: self.false_bottom_rate(),
            unreachable_rate: self.unreachable_rate(),
            resolve_latency: self.resolve_latency.snapshot(),
            publish_latency: self.publish_latency.snapshot(),
            staleness_windows: self.staleness_windows,
            staleness: self.staleness.snapshot(),
            publish_burn: if self.thresholds.publish_p99_ticks == 0 {
                0.0
            } else {
                publish_p99 as f64 / self.thresholds.publish_p99_ticks as f64
            },
            breaches: self.breaches.len() as u64,
        }
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// A graded summary of everything the observatory saw. All quantities
/// derive from VirtualTime and deterministic counters, so reports are
/// byte-identical across runs and feature sets.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// The thresholds the run was graded against.
    pub thresholds: SloThresholds,
    /// Resolutions observed.
    pub resolves: u64,
    /// Authoritative ⊥ answers observed.
    pub bottoms: u64,
    /// ⊥ answers contradicting the oracle.
    pub false_bottoms: u64,
    /// Transport (unreachable) verdicts observed.
    pub unreachables: u64,
    /// Publishes observed.
    pub publishes: u64,
    /// `false_bottoms / resolves`.
    pub false_bottom_rate: f64,
    /// `unreachables / resolves`.
    pub unreachable_rate: f64,
    /// Resolve-latency distribution over the retained horizon.
    pub resolve_latency: HistogramSnapshot,
    /// Publish-latency distribution over the retained horizon.
    pub publish_latency: HistogramSnapshot,
    /// Staleness windows observed.
    pub staleness_windows: u64,
    /// Staleness-window distribution (window lengths, ticks).
    pub staleness: HistogramSnapshot,
    /// Publish p99 ÷ budget (>1 = over budget).
    pub publish_burn: f64,
    /// Total threshold violations.
    pub breaches: u64,
}

impl SloReport {
    /// True when every objective held over the whole run.
    pub fn ok(&self) -> bool {
        self.breaches == 0
            && self.false_bottom_rate <= self.thresholds.false_bottom_rate
            && self.unreachable_rate <= self.thresholds.unreachable_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_core::entity::Entity;
    use naming_sim::time::Duration;

    fn resolved(latency: u64) -> ResolveStats {
        ResolveStats {
            entity: Entity::Object(naming_core::prelude::ObjectId::from_index(1)),
            messages: 2,
            servers_touched: 1,
            latency: Duration::from_ticks(latency),
            unreachable: false,
        }
    }

    fn bottom(latency: u64, unreachable: bool) -> ResolveStats {
        ResolveStats {
            entity: Entity::Undefined,
            messages: 2,
            servers_touched: 1,
            latency: Duration::from_ticks(latency),
            unreachable,
        }
    }

    #[test]
    fn clean_run_reports_ok() {
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        for i in 0..100u64 {
            obs.note_resolve(i * 10, &resolved(40 + i % 7), Some(true));
        }
        obs.note_publish(500, 200);
        let r = obs.report();
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.resolves, 100);
        assert_eq!(r.false_bottoms, 0);
        assert_eq!(r.publishes, 1);
        assert!(r.publish_burn <= 1.0);
        assert!(r.resolve_latency.quantile(0.99) >= 40);
    }

    #[test]
    fn false_bottom_breaches_a_zero_threshold() {
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        obs.note_resolve(10, &resolved(50), Some(true));
        // Authoritative ⊥ against a bound oracle: the §2 violation.
        obs.note_resolve(20, &bottom(50, false), Some(true));
        let r = obs.report();
        assert_eq!(r.false_bottoms, 1);
        assert!(!r.ok());
        assert_eq!(obs.breaches()[0].objective, "false-bottom");
        // An *expected* ⊥ (oracle agrees) is not a violation.
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        obs.note_resolve(10, &bottom(50, false), Some(false));
        obs.note_resolve(20, &bottom(50, false), None);
        assert!(obs.report().ok());
        assert_eq!(obs.report().bottoms, 2);
    }

    #[test]
    fn unreachable_is_rated_not_bottomed() {
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        for i in 0..99u64 {
            obs.note_resolve(i, &resolved(10), Some(true));
        }
        // One transport verdict against a bound name: counted as
        // unreachable, never as false ⊥.
        obs.note_resolve(99, &bottom(10, true), Some(true));
        let r = obs.report();
        assert_eq!(r.unreachables, 1);
        assert_eq!(r.false_bottoms, 0);
        assert!((r.unreachable_rate - 0.01).abs() < 1e-9);
        assert!(r.ok(), "1% is exactly at the default threshold");
    }

    #[test]
    fn staleness_windows_grade_against_threshold() {
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        obs.note_staleness_window(0, 500);
        assert!(obs.report().ok());
        obs.note_staleness_window(1_000, 4_000);
        let r = obs.report();
        assert_eq!(r.staleness_windows, 2);
        assert!(!r.ok());
        assert_eq!(obs.breaches()[0].objective, "staleness");
        assert!(r.staleness.quantile(1.0) >= 3_000);
    }

    #[test]
    fn publish_burn_over_budget_breaches() {
        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        obs.note_publish(100, 5_000);
        let r = obs.report();
        assert!(r.publish_burn > 1.0);
        assert_eq!(r.breaches, 1);
        assert_eq!(obs.breaches()[0].objective, "publish-latency");
    }

    #[test]
    fn absorbs_monitor_windows() {
        use naming_core::audit::AuditSpec;
        use naming_core::closure::{ContextRegistry, MetaContext, StandardRule};
        use naming_core::name::{CompoundName, Name};
        use naming_core::state::SystemState;

        // Two activities with diverging bindings for /x.
        let mut sys = SystemState::new();
        let mut reg = ContextRegistry::new();
        for i in 0..2 {
            let ctx = sys.add_context_object(format!("c{i}"));
            let f = sys.add_data_object(format!("f{i}"), vec![]);
            sys.bind(ctx, Name::new("x"), f).unwrap();
            let a = sys.add_activity(format!("a{i}"));
            reg.set_activity_context(a, ctx);
        }
        let metas: Vec<MetaContext> = sys.activities().map(MetaContext::internal).collect();
        let names = vec![CompoundName::atom(Name::new("x"))];
        let mut mon = CoherenceMonitor::new(AuditSpec::exhaustive(names, metas));
        mon.observe_at(
            100,
            "t100",
            &sys,
            &reg,
            &StandardRule::OfResolver,
            None,
            None,
        );
        mon.observe_at(
            5_000,
            "t5000",
            &sys,
            &reg,
            &StandardRule::OfResolver,
            None,
            None,
        );

        let mut obs = StalenessObservatory::new(SloThresholds::default(), 1_000, 8);
        obs.absorb_monitor(&mon, 0.99);
        let r = obs.report();
        assert_eq!(r.staleness_windows, 1);
        assert!(!r.ok(), "4900-tick window over the 2000-tick objective");
    }
}
