//! End-to-end lease-coherence tests: TTL boundary semantics, serial
//! regressions across restarts, IXFR→AXFR fallback, and a property test
//! driving random publish/sync/clock schedules.
//!
//! Everything here runs the full stack — client cache over the wire
//! protocol over the simulated network — and checks the paper's §5
//! bounded-staleness contract from the outside: the oracle
//! ([`Resolver::resolve_entity`]) is the *experimenter's* instrument;
//! the lease-mode resolver under test never touches it.

use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::lease::ZoneSerial;
use naming_core::name::{CompoundName, Name};
use naming_core::resolve::Resolver;
use naming_resolver::cache::{CachingResolver, DEFAULT_CACHE_CAPACITY};
use naming_resolver::coherence::CoherenceMode;
use naming_resolver::engine::ProtocolEngine;
use naming_resolver::service::NameService;
use naming_resolver::wire::Mode;
use naming_sim::store;
use naming_sim::time::Duration;
use naming_sim::topology::MachineId;
use naming_sim::world::World;
use proptest::prelude::*;

/// Two machines, one exported directory, one file: `/remote/data` on m1
/// refers through to m2's store. Returns the directory so tests can
/// republish bindings under it.
fn setup(
    mode: CoherenceMode,
) -> (
    World,
    CachingResolver,
    ActivityId,
    ObjectId,
    ObjectId,
    MachineId,
) {
    let mut w = World::new(81);
    let net = w.add_network("n");
    let m1 = w.add_machine("m1", net);
    let m2 = w.add_machine("m2", net);
    let root = w.machine_root(m1);
    let root2 = w.machine_root(m2);
    let sub = store::ensure_dir(w.state_mut(), root2, "export");
    store::create_file(w.state_mut(), sub, "data", vec![]);
    store::attach(w.state_mut(), root, "remote", sub, false);
    let mut svc = NameService::install(&mut w, &[m1, m2]);
    svc.place_subtree(&w, w.machine_root(m2), m2);
    svc.place_subtree(&w, root, m1);
    let client = w.spawn(m1, "client", None);
    let resolver =
        CachingResolver::with_mode(ProtocolEngine::new(svc), DEFAULT_CACHE_CAPACITY, mode);
    (w, resolver, client, root, sub, m1)
}

/// Pushes virtual time forward by exactly `ticks` (cache hits cost no
/// virtual time, so expiry only ever arrives through explicit pacing).
fn advance(w: &mut World, client: ActivityId, ticks: u64) {
    w.schedule_wake(client, Duration::from_ticks(ticks), u64::MAX);
    while w.step() {}
    w.drain_wakes(client);
}

/// Rebinds `data` under `sub` to a brand-new object through the
/// journaled publish path; returns the new object.
fn republish(w: &mut World, r: &mut CachingResolver, sub: ObjectId, tag: &str) -> ObjectId {
    let fresh = w.state_mut().add_data_object(format!("data-{tag}"), vec![]);
    r.engine_mut()
        .publish_binding(w, sub, Name::new("data"), Some(Entity::Object(fresh)))
        .expect("publish commits");
    fresh
}

/// A lease's validity interval is half-open: `[granted, granted + ttl)`.
/// A resolve landing *exactly* on the expiry tick must refetch; one tick
/// earlier must still be served from cache.
#[test]
fn lease_expiring_exactly_at_the_resolve_tick_misses() {
    const TTL: u64 = 500;
    let (mut w, mut r, client, root, _sub, _m1) = setup(CoherenceMode::Lease { ttl: Some(TTL) });
    let name = CompoundName::parse_path("/remote/data").unwrap();

    // Leases are stamped at the tick the resolve *starts* (the answer is
    // at best that old), so the expiry boundary counts from here — not
    // from when the wire round-trip completes.
    let granted = w.now().ticks();
    let (e1, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert!(e1.is_defined());
    assert!(!from_cache);
    let rtt = w.now().ticks() - granted;
    assert!(
        rtt > 0 && rtt < TTL - 1,
        "fetch cost {rtt}t must fit inside the ttl"
    );

    // One tick *before* expiry: still a hit.
    advance(&mut w, client, TTL - 1 - rtt);
    let (e2, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert_eq!(e2, e1);
    assert!(from_cache, "now = granted + ttl - 1 is inside the lease");

    // The boundary tick itself: `now == expires_at` is outside the
    // half-open interval, so this resolve pays the wire again.
    advance(&mut w, client, 1);
    let before = r.lease_stats().expired;
    let (e3, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert_eq!(e3, e1);
    assert!(!from_cache, "now = granted + ttl is already expired");
    assert!(r.lease_stats().expired > before);
}

/// A replica restart wipes the heard-serial table, so the next
/// anti-entropy pull cannot ask for a diff — every zone comes back as a
/// full (AXFR-style) transfer and the caches start cold but correct.
#[test]
fn replica_restart_resyncs_with_full_transfers() {
    let (mut w, mut r, client, root, sub, m1) = setup(CoherenceMode::Lease { ttl: None });
    let name = CompoundName::parse_path("/remote/data").unwrap();
    r.resolve(&mut w, client, root, &name, Mode::Iterative);
    let first = r.sync(&mut w, client, m1).expect("cold sync completes");
    assert!(first.shards_full >= 1, "a cold table pulls full zones");

    // Steady state: the next pull after one publish is incremental.
    let fresh = republish(&mut w, &mut r, sub, "v2");
    let steady = r.sync(&mut w, client, m1).expect("steady sync completes");
    assert_eq!(steady.shards_full, 0);
    assert!(steady.shards_incremental >= 1);

    // Crash-and-restart the replica: caches emptied, serial table reset.
    r.restart_replica();
    assert_eq!(r.len(), 0);
    assert_eq!(r.serial_table().known(0), ZoneSerial::ZERO);
    let resync = r.sync(&mut w, client, m1).expect("resync completes");
    assert!(
        resync.shards_full >= 1,
        "restart forgets serials → full again"
    );
    let (got, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert!(!from_cache);
    assert_eq!(
        got,
        Entity::Object(fresh),
        "restart never resurrects staleness"
    );
}

/// A replica that synced against an authority which later restarted from
/// an older snapshot holds serials *ahead* of the authority. The next
/// pull observes the regression, counts it, falls back to a full
/// transfer, and re-adopts the authority's (lower) serial.
#[test]
fn authority_serial_regression_forces_full_transfer_and_readoption() {
    let (mut w, mut r, client, root, _sub, m1) = setup(CoherenceMode::Lease { ttl: None });
    let name = CompoundName::parse_path("/remote/data").unwrap();
    let (old, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert!(old.is_defined());
    r.sync(&mut w, client, m1).expect("first sync completes");
    let truth = w.state().shard_serial(0);
    assert_eq!(r.serial_table().known(0), truth);

    // Stage the regression: the experimenter plays the role of the
    // pre-restart authority and feeds the replica a serial from a future
    // the authority no longer remembers.
    let ahead = ZoneSerial::new(truth.get() + 64);
    r.serial_table_mut().observe(0, ahead);
    assert_eq!(r.serial_table().known(0), ahead);

    let report = r.sync(&mut w, client, m1).expect("sync completes");
    assert!(
        report.regressions >= 1,
        "serial moved backwards at the authority"
    );
    assert!(
        report.shards_full >= 1,
        "no diff exists across a regression"
    );
    assert_eq!(
        r.serial_table().known(0),
        truth,
        "the heard serial is re-adopted even when it regresses"
    );
    // The zone's cached entries were stamped under the old serial and
    // must have been dropped: the next resolve refetches and is correct.
    let (got, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert!(!from_cache, "regression drops the zone's leases");
    assert_eq!(got, old);
}

/// IXFR window eviction: when more publishes land than the journal
/// retains, `delta_since` has a gap and the authority answers with a
/// full transfer instead — which still converges the replica.
#[test]
fn journal_window_eviction_falls_back_to_full_transfer() {
    let (mut w, mut r, client, root, sub, m1) = setup(CoherenceMode::Lease { ttl: None });
    r.engine_mut().set_journal_window(2);
    let name = CompoundName::parse_path("/remote/data").unwrap();
    r.resolve(&mut w, client, root, &name, Mode::Iterative);
    r.sync(&mut w, client, m1).expect("cold sync completes");

    // Five rebinds blow straight through a two-entry delta window.
    let mut latest = None;
    for k in 0..5 {
        latest = Some(republish(&mut w, &mut r, sub, &format!("v{k}")));
    }
    let report = r.sync(&mut w, client, m1).expect("sync completes");
    assert!(report.shards_full >= 1, "evicted window → AXFR fallback");
    let (got, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert_eq!(got, Entity::Object(latest.unwrap()));

    // One rebind fits the window: back to incremental service.
    let fresh = republish(&mut w, &mut r, sub, "v5");
    let report = r.sync(&mut w, client, m1).expect("sync completes");
    assert_eq!(report.shards_full, 0);
    assert!(report.shards_incremental >= 1);
    assert!(report.changes >= 1);
    let (got, _) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
    assert_eq!(got, Entity::Object(fresh));
}

/// One step of the random schedule the property test drives. Decoded
/// from a `(selector, amount)` pair: 0–3 resolve, 4 rebind, 5 unbind,
/// 6–7 sync, 8–10 advance the clock by `amount`.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Resolve `/remote/data` and check the staleness contract.
    Resolve,
    /// Rebind `data` to a fresh object (or to ⊥ when `false`).
    Publish(bool),
    /// Anti-entropy pull from the authority.
    Sync,
    /// Advance the virtual clock.
    Advance(u64),
}

fn decode(selector: u8, amount: u64) -> Op {
    match selector {
        0..=3 => Op::Resolve,
        4 => Op::Publish(true),
        5 => Op::Publish(false),
        6..=7 => Op::Sync,
        _ => Op::Advance(amount),
    }
}

proptest! {
    /// Under any interleaving of publishes, syncs, clock advances, and
    /// resolutions on a lossless network, a lease-mode answer is either
    /// the current truth, or a *previous* truth replaced strictly less
    /// than one TTL ago — and never an entity that was never bound.
    /// Immediately after a sync with no intervening publish, answers are
    /// exactly current.
    #[test]
    fn random_schedules_respect_the_lease_bound(
        raw in prop::collection::vec((0u8..11, 1u64..80), 1..48),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(|(s, t)| decode(s, t)).collect();
        const TTL: u64 = 100;
        let (mut w, mut r, client, root, sub, m1) = setup(CoherenceMode::Lease { ttl: Some(TTL) });
        let name = CompoundName::parse_path("/remote/data").unwrap();
        let oracle = Resolver::new();
        // Truths this name has held, with the tick each stopped being
        // current. The initial binding is recorded implicitly: anything
        // served must match either the live truth or this graveyard.
        let mut graveyard: Vec<(Entity, u64)> = Vec::new();
        let mut version = 0u32;
        let mut clean_since_sync = false;
        for op in ops {
            match op {
                Op::Resolve => {
                    let now = w.now().ticks();
                    let (got, from_cache) = r.resolve(&mut w, client, root, &name, Mode::Iterative);
                    let truth = oracle.resolve_entity(w.state(), root, &name);
                    if got == truth {
                        // Current — always fine.
                    } else {
                        prop_assert!(from_cache, "a fresh fetch on a lossless net is current");
                        let excused = graveyard
                            .iter()
                            .any(|&(e, died)| e == got && now.saturating_sub(died) < TTL);
                        prop_assert!(
                            excused,
                            "served {got} at t{now} but truth is {truth} and no prior \
                             binding excuses it within ttl {TTL}: {graveyard:?}"
                        );
                        prop_assert!(!clean_since_sync, "a post-sync answer must be current");
                    }
                }
                Op::Publish(bind) => {
                    let now = w.now().ticks();
                    let old = oracle.resolve_entity(w.state(), root, &name);
                    graveyard.push((old, now));
                    let entity = if bind {
                        version += 1;
                        let fresh = w
                            .state_mut()
                            .add_data_object(format!("data-p{version}"), vec![]);
                        Some(Entity::Object(fresh))
                    } else {
                        None
                    };
                    r.engine_mut()
                        .publish_binding(&mut w, sub, Name::new("data"), entity)
                        .expect("publish commits");
                    clean_since_sync = false;
                }
                Op::Sync => {
                    r.sync(&mut w, client, m1).expect("lossless sync completes");
                    clean_since_sync = true;
                }
                Op::Advance(t) => advance(&mut w, client, t),
            }
        }
    }
}
