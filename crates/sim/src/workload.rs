//! Seeded workload generation: synthetic file trees, process populations,
//! and name-usage patterns.
//!
//! Experiments need *populations* — many names, many activities, names
//! arriving from all three of the paper's sources — with reproducible
//! randomness. Everything here is driven by a [`SimRng`], so a seed fully
//! determines the workload.

use naming_core::closure::NameSource;
use naming_core::entity::{ActivityId, ObjectId};
use naming_core::name::{CompoundName, Name};
use naming_core::state::SystemState;

use crate::rng::SimRng;
use crate::store;

/// Shape of a generated directory tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeSpec {
    /// Depth of the tree (1 = files directly under the root).
    pub depth: usize,
    /// Subdirectories per directory.
    pub dirs_per_level: usize,
    /// Files per directory (at every level).
    pub files_per_dir: usize,
}

impl TreeSpec {
    /// A small tree for tests: depth 2, 2 dirs, 2 files.
    pub fn small() -> TreeSpec {
        TreeSpec {
            depth: 2,
            dirs_per_level: 2,
            files_per_dir: 2,
        }
    }
}

/// What [`grow_tree`] created: absolute paths (relative to the given root)
/// and the objects behind them.
#[derive(Clone, Debug, Default)]
pub struct TreeManifest {
    /// Directories created, as `(path, object)`.
    pub dirs: Vec<(CompoundName, ObjectId)>,
    /// Files created, as `(path, object)`.
    pub files: Vec<(CompoundName, ObjectId)>,
}

impl TreeManifest {
    /// All created paths (dirs then files).
    pub fn all_paths(&self) -> Vec<CompoundName> {
        self.dirs
            .iter()
            .chain(self.files.iter())
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Just the file paths.
    pub fn file_paths(&self) -> Vec<CompoundName> {
        self.files.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// Grows a uniform directory tree under `root`, labelling entries
/// `d0, d1, …` and `f0.dat, f1.dat, …` prefixed by `tag` so that trees
/// grown on different machines have *the same names* (which is exactly what
/// makes coherence questions interesting) while holding distinct objects.
pub fn grow_tree(
    state: &mut SystemState,
    root: ObjectId,
    spec: TreeSpec,
    content_tag: &str,
    rng: &mut SimRng,
) -> TreeManifest {
    let mut manifest = TreeManifest::default();
    let root_path = CompoundName::atom(Name::root());
    grow_level(
        state,
        root,
        &root_path,
        spec,
        spec.depth,
        content_tag,
        rng,
        &mut manifest,
    );
    manifest
}

#[allow(clippy::too_many_arguments)]
fn grow_level(
    state: &mut SystemState,
    dir: ObjectId,
    dir_path: &CompoundName,
    spec: TreeSpec,
    levels_left: usize,
    content_tag: &str,
    rng: &mut SimRng,
    manifest: &mut TreeManifest,
) {
    if levels_left == 0 {
        return;
    }
    for f in 0..spec.files_per_dir {
        let fname = format!("f{f}.dat");
        let content = format!("{content_tag}:{}:{}", dir_path, rng.below(1 << 30));
        let obj = store::create_file(state, dir, &fname, content.into_bytes());
        manifest.files.push((dir_path.join(fname.as_str()), obj));
    }
    for d in 0..spec.dirs_per_level {
        let dname = format!("d{d}");
        let sub = store::ensure_dir(state, dir, &dname);
        let sub_path = dir_path.join(dname.as_str());
        manifest.dirs.push((sub_path.clone(), sub));
        grow_level(
            state,
            sub,
            &sub_path,
            spec,
            levels_left - 1,
            content_tag,
            rng,
            manifest,
        );
    }
}

/// One synthetic use of a name by an activity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameUse {
    /// The activity using (resolving) the name.
    pub user: ActivityId,
    /// The name used.
    pub name: CompoundName,
    /// How the activity obtained the name.
    pub source: NameSource,
}

/// Mix of name sources in a generated usage pattern. Weights need not sum
/// to 1; they are normalized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceMix {
    /// Weight of internally generated names.
    pub internal: f64,
    /// Weight of names received in messages.
    pub message: f64,
    /// Weight of names read from objects.
    pub object: f64,
}

impl SourceMix {
    /// Equal thirds.
    pub fn uniform() -> SourceMix {
        SourceMix {
            internal: 1.0,
            message: 1.0,
            object: 1.0,
        }
    }

    /// Internal names only.
    pub fn internal_only() -> SourceMix {
        SourceMix {
            internal: 1.0,
            message: 0.0,
            object: 0.0,
        }
    }
}

/// Generates `count` name uses: each picks a user, a name, and a source
/// per the mix. Message sources pick a sender distinct from the user when
/// possible; object sources pick a container from `containers`.
///
/// # Panics
///
/// Panics if `users` or `names` is empty, or if the mix requests object
/// sources with no `containers`.
pub fn generate_uses(
    users: &[ActivityId],
    names: &[CompoundName],
    containers: &[ObjectId],
    mix: SourceMix,
    count: usize,
    rng: &mut SimRng,
) -> Vec<NameUse> {
    assert!(!users.is_empty(), "need at least one user");
    assert!(!names.is_empty(), "need at least one name");
    let total = mix.internal + mix.message + mix.object;
    assert!(total > 0.0, "mix must have positive total weight");
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let user = *rng.pick(users);
        let name = rng.pick(names).clone();
        let roll = (rng.below(1_000_000) as f64 / 1_000_000.0) * total;
        let source = if roll < mix.internal {
            NameSource::Internal
        } else if roll < mix.internal + mix.message {
            let sender = if users.len() > 1 {
                loop {
                    let s = *rng.pick(users);
                    if s != user {
                        break s;
                    }
                }
            } else {
                user
            };
            NameSource::Message { sender }
        } else {
            assert!(
                !containers.is_empty(),
                "object-source uses require containers"
            );
            NameSource::Object {
                source: *rng.pick(containers),
            }
        };
        out.push(NameUse { user, name, source });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::resolve_path;
    use naming_core::entity::Entity;

    fn setup() -> (SystemState, ObjectId) {
        let mut s = SystemState::new();
        let r = s.add_context_object("root");
        s.bind(r, Name::root(), r).unwrap();
        (s, r)
    }

    #[test]
    fn grow_tree_counts() {
        let (mut s, r) = setup();
        let mut rng = SimRng::seeded(1);
        let spec = TreeSpec {
            depth: 2,
            dirs_per_level: 3,
            files_per_dir: 2,
        };
        let m = grow_tree(&mut s, r, spec, "m1", &mut rng);
        // dirs: 3 at level 1 + 9 at level 2 = 12; files: 2 * (1 + 3) = 8
        // (level-2 dirs get no files because levels_left hits 0 inside them).
        assert_eq!(m.dirs.len(), 12);
        assert_eq!(m.files.len(), 8);
        assert_eq!(m.all_paths().len(), 20);
        // Paths resolve to their objects.
        for (p, o) in m.dirs.iter().chain(m.files.iter()) {
            assert_eq!(
                resolve_path(&s, r, &p.to_string()),
                Entity::Object(*o),
                "path {p}"
            );
        }
    }

    #[test]
    fn same_seed_same_tree_different_seed_different_content() {
        let (mut s1, r1) = setup();
        let (mut s2, r2) = setup();
        let m1 = grow_tree(&mut s1, r1, TreeSpec::small(), "x", &mut SimRng::seeded(9));
        let m2 = grow_tree(&mut s2, r2, TreeSpec::small(), "x", &mut SimRng::seeded(9));
        assert_eq!(m1.file_paths(), m2.file_paths());
        let c1 = crate::store::read_file(&s1, m1.files[0].1).unwrap();
        let c2 = crate::store::read_file(&s2, m2.files[0].1).unwrap();
        assert_eq!(c1, c2, "same seed, same content");
        let (mut s3, r3) = setup();
        let m3 = grow_tree(&mut s3, r3, TreeSpec::small(), "x", &mut SimRng::seeded(10));
        let c3 = crate::store::read_file(&s3, m3.files[0].1).unwrap();
        assert_ne!(c1, c3, "different seed, different content");
    }

    #[test]
    fn uses_respect_source_mix() {
        let users: Vec<ActivityId> = (0..4).map(ActivityId::from_index).collect();
        let names = vec![CompoundName::parse_path("/a").unwrap()];
        let containers = vec![ObjectId::from_index(0)];
        let mut rng = SimRng::seeded(5);
        let uses = generate_uses(
            &users,
            &names,
            &containers,
            SourceMix::uniform(),
            300,
            &mut rng,
        );
        assert_eq!(uses.len(), 300);
        let internal = uses
            .iter()
            .filter(|u| u.source == NameSource::Internal)
            .count();
        let message = uses
            .iter()
            .filter(|u| matches!(u.source, NameSource::Message { .. }))
            .count();
        let object = uses
            .iter()
            .filter(|u| matches!(u.source, NameSource::Object { .. }))
            .count();
        assert_eq!(internal + message + object, 300);
        // Roughly a third each (loose bounds).
        for share in [internal, message, object] {
            assert!((40..=180).contains(&share), "share {share}");
        }
        // Senders differ from users.
        for u in &uses {
            if let NameSource::Message { sender } = u.source {
                assert_ne!(sender, u.user);
            }
        }
    }

    #[test]
    fn internal_only_mix() {
        let users = vec![ActivityId::from_index(0)];
        let names = vec![CompoundName::parse_path("/a").unwrap()];
        let mut rng = SimRng::seeded(6);
        let uses = generate_uses(
            &users,
            &names,
            &[],
            SourceMix::internal_only(),
            50,
            &mut rng,
        );
        assert!(uses.iter().all(|u| u.source == NameSource::Internal));
    }

    #[test]
    #[should_panic(expected = "need at least one user")]
    fn empty_users_panics() {
        let names = vec![CompoundName::parse_path("/a").unwrap()];
        generate_uses(
            &[],
            &names,
            &[],
            SourceMix::uniform(),
            1,
            &mut SimRng::seeded(0),
        );
    }

    #[test]
    fn single_user_message_source_falls_back_to_self() {
        let users = vec![ActivityId::from_index(0)];
        let names = vec![CompoundName::parse_path("/a").unwrap()];
        let mix = SourceMix {
            internal: 0.0,
            message: 1.0,
            object: 0.0,
        };
        let uses = generate_uses(&users, &names, &[], mix, 10, &mut SimRng::seeded(3));
        assert!(uses
            .iter()
            .all(|u| matches!(u.source, NameSource::Message { sender } if sender == u.user)));
    }
}
