//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in abstract ticks.
///
/// The simulator is untimed in the real-world sense; ticks order events and
/// model relative latencies (e.g. cross-network messages take longer than
/// local ones).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// Time zero.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Creates a time from raw ticks.
    pub fn from_ticks(ticks: u64) -> VirtualTime {
        VirtualTime(ticks)
    }

    /// The raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

/// A span of virtual time.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from raw ticks.
    pub fn from_ticks(ticks: u64) -> Duration {
        Duration(ticks)
    }

    /// The raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: Duration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for VirtualTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = Duration;
    fn sub(self, rhs: VirtualTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_ticks(10);
        let d = Duration::from_ticks(5);
        assert_eq!((t + d).ticks(), 15);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.ticks(), 15);
        assert_eq!((t2 - t).ticks(), 5);
        assert_eq!((t - t2).ticks(), 0, "saturating");
        assert_eq!((d + d).ticks(), 10);
    }

    #[test]
    fn ordering_and_display() {
        assert!(VirtualTime::ZERO < VirtualTime::from_ticks(1));
        assert_eq!(VirtualTime::from_ticks(3).to_string(), "t3");
        assert_eq!(Duration::from_ticks(7).to_string(), "7t");
    }

    #[test]
    fn saturation_at_max() {
        let t = VirtualTime::from_ticks(u64::MAX);
        assert_eq!((t + Duration::from_ticks(1)).ticks(), u64::MAX);
    }
}
