//! Directory-tree building utilities over a [`SystemState`].
//!
//! The naming schemes construct per-machine file trees, shared trees,
//! superroots, and structured objects; these helpers keep that code short
//! and uniform. Directories are ordinary context objects; every directory
//! created under a parent gets a `..` binding back to it (the paper's
//! Newcastle discussion relies on `..` being an ordinary binding, including
//! *above* machine roots).

use naming_core::entity::{Entity, ObjectId};
use naming_core::name::{CompoundName, Name};
use naming_core::resolve::Resolver;
use naming_core::state::{Document, ObjectState, SystemState};

/// Creates a directory named `name` under `parent`, with a `..` binding
/// back to `parent`. Returns the existing directory instead if `name` is
/// already bound to a context object in `parent`.
///
/// # Panics
///
/// Panics if `parent` is not a context object, or if `name` is bound to a
/// non-directory.
pub fn ensure_dir(state: &mut SystemState, parent: ObjectId, name: &str) -> ObjectId {
    let n = Name::new(name);
    match state.lookup(parent, n) {
        Entity::Object(o) if state.is_context_object(o) => o,
        Entity::Undefined => {
            let label = format!("{}/{}", state.object_label(parent), name);
            let dir = state.add_context_object(label);
            state.bind(parent, n, dir).expect("parent is a directory");
            state
                .bind(dir, Name::parent(), parent)
                .expect("fresh dir is a directory");
            dir
        }
        other => panic!("{name:?} is already bound to non-directory {other}"),
    }
}

/// Creates every directory along `path` (relative component names, no
/// leading `/`) under `root`, returning the last one.
///
/// # Panics
///
/// Panics if some component is bound to a non-directory.
pub fn mkdir_path(state: &mut SystemState, root: ObjectId, path: &str) -> ObjectId {
    let mut cur = root;
    for comp in path.split('/').filter(|c| !c.is_empty() && *c != ".") {
        cur = ensure_dir(state, cur, comp);
    }
    cur
}

/// Creates a data file named `name` in `dir` with the given content,
/// returning its object. Overwrites any existing binding.
///
/// # Panics
///
/// Panics if `dir` is not a context object.
pub fn create_file(
    state: &mut SystemState,
    dir: ObjectId,
    name: &str,
    data: impl Into<Vec<u8>>,
) -> ObjectId {
    let label = format!("{}/{}", state.object_label(dir), name);
    let file = state.add_data_object(label, data.into());
    state
        .bind(dir, Name::new(name), file)
        .expect("dir is a directory");
    file
}

/// Creates a structured (document) object named `name` in `dir`.
///
/// # Panics
///
/// Panics if `dir` is not a context object.
pub fn create_document(
    state: &mut SystemState,
    dir: ObjectId,
    name: &str,
    doc: Document,
) -> ObjectId {
    let label = format!("{}/{}", state.object_label(dir), name);
    let obj = state.add_document_object(label, doc);
    state
        .bind(dir, Name::new(name), obj)
        .expect("dir is a directory");
    obj
}

/// Attaches (mounts) `subtree` under `dir` as `name`.
///
/// If `reparent` is true, the subtree's `..` is rebound to `dir` (physical
/// move); if false the subtree keeps its original parent binding (a
/// Newcastle/Andrew-style graft that leaves the source tree intact).
///
/// # Panics
///
/// Panics if `dir` is not a context object.
pub fn attach(
    state: &mut SystemState,
    dir: ObjectId,
    name: &str,
    subtree: ObjectId,
    reparent: bool,
) {
    state
        .bind(dir, Name::new(name), subtree)
        .expect("dir is a directory");
    if reparent && state.is_context_object(subtree) {
        state
            .bind(subtree, Name::parent(), dir)
            .expect("subtree is a directory");
    }
}

/// Detaches the binding `name` from `dir`. Returns the entity it denoted.
///
/// # Panics
///
/// Panics if `dir` is not a context object.
pub fn detach(state: &mut SystemState, dir: ObjectId, name: &str) -> Option<Entity> {
    state
        .unbind(dir, Name::new(name))
        .expect("dir is a directory")
}

/// Moves the binding `name` from `src` to `dst` (rebinding `..` when the
/// target is a directory). Returns the moved entity, or `None` if `name`
/// was not bound in `src`.
///
/// # Panics
///
/// Panics if `src` or `dst` is not a context object.
pub fn move_entry(
    state: &mut SystemState,
    src: ObjectId,
    dst: ObjectId,
    name: &str,
) -> Option<Entity> {
    let e = detach(state, src, name)?;
    state
        .bind(dst, Name::new(name), e)
        .expect("dst is a directory");
    if let Entity::Object(o) = e {
        if state.is_context_object(o) {
            state.bind(o, Name::parent(), dst).expect("moved dir");
        }
    }
    Some(e)
}

/// Resolves a path string from `root` (convenience for tests and
/// experiments). Returns `⊥` on any failure.
pub fn resolve_path(state: &SystemState, root: ObjectId, path: &str) -> Entity {
    match CompoundName::parse_path(path) {
        Ok(name) => Resolver::new().resolve_entity(state, root, &name),
        Err(_) => Entity::Undefined,
    }
}

/// Lists the entries of a directory in name order (excluding `.` , `..`,
/// and `/` conventions).
///
/// Returns an empty list for non-directories.
pub fn list_dir(state: &SystemState, dir: ObjectId) -> Vec<(Name, Entity)> {
    match state.context(dir) {
        Some(c) => c
            .iter()
            .filter(|(n, _)| !n.is_dot() && !n.is_root())
            .collect(),
        None => Vec::new(),
    }
}

/// Reads a file's bytes, or `None` if the object is not a data file.
pub fn read_file(state: &SystemState, file: ObjectId) -> Option<&[u8]> {
    match state.object_state(file) {
        ObjectState::Data(d) => Some(d),
        _ => None,
    }
}

/// Reads a structured object, or `None` if it is not a document.
pub fn read_document(state: &SystemState, obj: ObjectId) -> Option<&Document> {
    match state.object_state(obj) {
        ObjectState::Document(d) => Some(d),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> (SystemState, ObjectId) {
        let mut s = SystemState::new();
        let r = s.add_context_object("root");
        s.bind(r, Name::root(), r).unwrap();
        (s, r)
    }

    #[test]
    fn ensure_dir_creates_once() {
        let (mut s, r) = root();
        let a = ensure_dir(&mut s, r, "a");
        let a2 = ensure_dir(&mut s, r, "a");
        assert_eq!(a, a2);
        assert_eq!(s.lookup(a, Name::parent()), Entity::Object(r));
    }

    #[test]
    #[should_panic(expected = "non-directory")]
    fn ensure_dir_over_file_panics() {
        let (mut s, r) = root();
        create_file(&mut s, r, "f", b"x".to_vec());
        ensure_dir(&mut s, r, "f");
    }

    #[test]
    fn mkdir_path_builds_chain() {
        let (mut s, r) = root();
        let c = mkdir_path(&mut s, r, "usr/local/bin");
        assert_eq!(resolve_path(&s, r, "/usr/local/bin"), Entity::Object(c));
        // Idempotent.
        let c2 = mkdir_path(&mut s, r, "usr/local/bin");
        assert_eq!(c, c2);
        // `..` chain back up.
        assert_eq!(
            resolve_path(&s, r, "/usr/local/bin/../../../usr"),
            resolve_path(&s, r, "/usr")
        );
    }

    #[test]
    fn files_and_documents() {
        let (mut s, r) = root();
        let etc = ensure_dir(&mut s, r, "etc");
        let f = create_file(&mut s, etc, "passwd", b"root".to_vec());
        assert_eq!(read_file(&s, f), Some(&b"root"[..]));
        assert_eq!(resolve_path(&s, r, "/etc/passwd"), Entity::Object(f));

        let mut doc = Document::new();
        doc.push_text("hello");
        let d = create_document(&mut s, etc, "motd.doc", doc.clone());
        assert_eq!(read_document(&s, d), Some(&doc));
        assert!(read_file(&s, d).is_none());
        assert!(read_document(&s, f).is_none());
    }

    #[test]
    fn attach_and_detach() {
        let (mut s, r) = root();
        let shared = s.add_context_object("shared");
        let data = create_file(&mut s, shared, "lib.a", b"".to_vec());
        attach(&mut s, r, "vice", shared, false);
        assert_eq!(resolve_path(&s, r, "/vice/lib.a"), Entity::Object(data));
        // Graft without reparenting left `..` unset.
        assert_eq!(s.lookup(shared, Name::parent()), Entity::Undefined);
        // Reparenting graft sets `..`.
        attach(&mut s, r, "vice2", shared, true);
        assert_eq!(s.lookup(shared, Name::parent()), Entity::Object(r));
        assert_eq!(detach(&mut s, r, "vice"), Some(Entity::Object(shared)));
        assert_eq!(resolve_path(&s, r, "/vice/lib.a"), Entity::Undefined);
        assert_eq!(detach(&mut s, r, "vice"), None);
    }

    #[test]
    fn move_entry_rebinds_parent() {
        let (mut s, r) = root();
        let a = ensure_dir(&mut s, r, "a");
        let b = ensure_dir(&mut s, r, "b");
        let sub = ensure_dir(&mut s, a, "sub");
        assert_eq!(move_entry(&mut s, a, b, "sub"), Some(Entity::Object(sub)));
        assert_eq!(resolve_path(&s, r, "/a/sub"), Entity::Undefined);
        assert_eq!(resolve_path(&s, r, "/b/sub"), Entity::Object(sub));
        assert_eq!(s.lookup(sub, Name::parent()), Entity::Object(b));
        assert_eq!(move_entry(&mut s, a, b, "nothing"), None);
    }

    #[test]
    fn list_dir_filters_conventions() {
        let (mut s, r) = root();
        ensure_dir(&mut s, r, "a");
        create_file(&mut s, r, "f", vec![]);
        let entries = list_dir(&s, r);
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "f"]);
        // Non-directory lists empty.
        let f = resolve_path(&s, r, "/f").as_object().unwrap();
        assert!(list_dir(&s, f).is_empty());
    }

    #[test]
    fn resolve_path_handles_bad_input() {
        let (s, r) = root();
        assert_eq!(resolve_path(&s, r, ""), Entity::Undefined);
        assert_eq!(resolve_path(&s, r, "/nope"), Entity::Undefined);
    }
}
