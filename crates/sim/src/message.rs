//! Messages exchanged between activities.
//!
//! Names are "frequently exchanged between activities in computer systems:
//! between parent and child activities, and between client and server
//! activities" (§4). A [`Message`] carries a mix of opaque bytes and
//! *names*; the naming scheme in force decides what happens to the names at
//! the send/receive boundary (identity for `R(receiver)` schemes, mapping
//! for `R(sender)` schemes such as PQIDs).

use bytes::Bytes;
use naming_core::entity::ActivityId;
use naming_core::name::CompoundName;

use crate::time::VirtualTime;

/// One part of a message payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Opaque bytes; naming schemes never touch these.
    Bytes(Bytes),
    /// A name, exchanged across the context boundary.
    Name(CompoundName),
}

impl Payload {
    /// Creates an opaque payload from bytes.
    pub fn bytes(data: impl Into<Bytes>) -> Payload {
        Payload::Bytes(data.into())
    }

    /// Creates a name payload.
    pub fn name(name: CompoundName) -> Payload {
        Payload::Name(name)
    }

    /// The name, if this part is a name.
    pub fn as_name(&self) -> Option<&CompoundName> {
        match self {
            Payload::Name(n) => Some(n),
            Payload::Bytes(_) => None,
        }
    }
}

/// A message in flight or delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The sending activity.
    pub from: ActivityId,
    /// The receiving activity.
    pub to: ActivityId,
    /// Payload parts in order.
    pub parts: Vec<Payload>,
    /// When the message was sent.
    pub sent_at: VirtualTime,
}

impl Message {
    /// Creates a message; `sent_at` is stamped by the world on send.
    pub fn new(from: ActivityId, to: ActivityId, parts: Vec<Payload>) -> Message {
        Message {
            from,
            to,
            parts,
            sent_at: VirtualTime::ZERO,
        }
    }

    /// Iterates over the names carried by the message.
    pub fn names(&self) -> impl Iterator<Item = &CompoundName> {
        self.parts.iter().filter_map(Payload::as_name)
    }

    /// Number of name parts.
    pub fn name_count(&self) -> usize {
        self.names().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(i: u32) -> ActivityId {
        ActivityId::from_index(i)
    }

    #[test]
    fn payload_kinds() {
        let b = Payload::bytes(&b"hello"[..]);
        assert!(b.as_name().is_none());
        let n = Payload::name(CompoundName::parse_path("/etc/passwd").unwrap());
        assert_eq!(n.as_name().unwrap().to_string(), "/etc/passwd");
    }

    #[test]
    fn message_names() {
        let m = Message::new(
            aid(0),
            aid(1),
            vec![
                Payload::bytes(&b"run"[..]),
                Payload::name(CompoundName::parse_path("/bin/cc").unwrap()),
                Payload::name(CompoundName::parse_path("main.c").unwrap()),
            ],
        );
        assert_eq!(m.name_count(), 2);
        let names: Vec<String> = m.names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["/bin/cc", "main.c"]);
    }
}
