//! Networks, machines and their addresses.
//!
//! The partially-qualified-identifier scheme (§6 Example 1 of the paper)
//! hinges on machine and network addresses *changing*: "when the address of
//! a machine or a network is changed as part of relocation or
//! reconfiguration, pids of local processes within the renamed machine or
//! network remain valid". The topology therefore separates stable
//! identities ([`MachineId`], [`NetworkId`]) from current addresses
//! ([`MachineAddr`], [`NetAddr`]) and supports renumbering both.
//!
//! Addresses are always nonzero: the PQID scheme uses `0` as the
//! "unqualified" wildcard.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Stable identity of a network (never changes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(pub usize);

/// Stable identity of a machine (never changes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub usize);

/// The current address of a network; may be renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetAddr(u32);

impl NetAddr {
    /// Creates a network address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is zero (reserved as the PQID wildcard).
    pub fn new(addr: u32) -> NetAddr {
        assert!(addr != 0, "network address 0 is reserved");
        NetAddr(addr)
    }

    /// The raw address value.
    pub fn value(self) -> u32 {
        self.0
    }
}

/// The current address of a machine within its network; may be renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineAddr(u32);

impl MachineAddr {
    /// Creates a machine address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is zero (reserved as the PQID wildcard).
    pub fn new(addr: u32) -> MachineAddr {
        assert!(addr != 0, "machine address 0 is reserved");
        MachineAddr(addr)
    }

    /// The raw address value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for MachineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct NetworkRecord {
    name: String,
    addr: NetAddr,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct MachineRecord {
    name: String,
    network: NetworkId,
    addr: MachineAddr,
}

/// Message latencies between machines, in virtual ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Latency between processes on the same machine.
    pub local: u64,
    /// Latency between machines on the same network.
    pub same_network: u64,
    /// Latency between machines on different networks.
    pub cross_network: u64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            local: 1,
            same_network: 10,
            cross_network: 100,
        }
    }
}

/// The physical layout: networks, machines, current addresses.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    networks: Vec<NetworkRecord>,
    machines: Vec<MachineRecord>,
    next_net_addr: u32,
    next_machine_addr: u32,
    #[serde(default)]
    latency: Option<LatencyModel>,
}

impl Topology {
    /// Creates an empty topology with the default latency model.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Replaces the latency model.
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = Some(model);
    }

    /// The current latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency.unwrap_or_default()
    }

    /// Adds a network; its address is assigned automatically.
    pub fn add_network(&mut self, name: impl Into<String>) -> NetworkId {
        self.next_net_addr += 1;
        let id = NetworkId(self.networks.len());
        self.networks.push(NetworkRecord {
            name: name.into(),
            addr: NetAddr::new(self.next_net_addr),
        });
        id
    }

    /// Adds a machine on `network`; its address is assigned automatically
    /// (unique across the whole topology for simplicity).
    ///
    /// # Panics
    ///
    /// Panics if `network` does not exist.
    pub fn add_machine(&mut self, name: impl Into<String>, network: NetworkId) -> MachineId {
        assert!(network.0 < self.networks.len(), "unknown network");
        self.next_machine_addr += 1;
        let id = MachineId(self.machines.len());
        self.machines.push(MachineRecord {
            name: name.into(),
            network,
            addr: MachineAddr::new(self.next_machine_addr),
        });
        id
    }

    /// Number of networks.
    pub fn network_count(&self) -> usize {
        self.networks.len()
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The name a network was created with.
    pub fn network_name(&self, n: NetworkId) -> &str {
        &self.networks[n.0].name
    }

    /// The name a machine was created with.
    pub fn machine_name(&self, m: MachineId) -> &str {
        &self.machines[m.0].name
    }

    /// The network a machine is attached to.
    pub fn machine_network(&self, m: MachineId) -> NetworkId {
        self.machines[m.0].network
    }

    /// The current address of a network.
    pub fn net_addr(&self, n: NetworkId) -> NetAddr {
        self.networks[n.0].addr
    }

    /// The current address of a machine.
    pub fn machine_addr(&self, m: MachineId) -> MachineAddr {
        self.machines[m.0].addr
    }

    /// The machines on a network, in creation order.
    pub fn machines_on(&self, n: NetworkId) -> Vec<MachineId> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, r)| r.network == n)
            .map(|(i, _)| MachineId(i))
            .collect()
    }

    /// All machines, in creation order.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.machines.len()).map(MachineId)
    }

    /// All networks, in creation order.
    pub fn networks(&self) -> impl Iterator<Item = NetworkId> + '_ {
        (0..self.networks.len()).map(NetworkId)
    }

    /// Renumbers a network: every machine on it keeps its machine address
    /// but is now reached via the new network address.
    ///
    /// Returns the previous address.
    pub fn renumber_network(&mut self, n: NetworkId, new: NetAddr) -> NetAddr {
        std::mem::replace(&mut self.networks[n.0].addr, new)
    }

    /// Renumbers a machine. Returns the previous address.
    pub fn renumber_machine(&mut self, m: MachineId, new: MachineAddr) -> MachineAddr {
        std::mem::replace(&mut self.machines[m.0].addr, new)
    }

    /// Allocates a fresh, never-used network address (for renumbering).
    pub fn fresh_net_addr(&mut self) -> NetAddr {
        self.next_net_addr += 1;
        NetAddr::new(self.next_net_addr)
    }

    /// Allocates a fresh, never-used machine address (for renumbering).
    pub fn fresh_machine_addr(&mut self) -> MachineAddr {
        self.next_machine_addr += 1;
        MachineAddr::new(self.next_machine_addr)
    }

    /// Finds the machine currently reachable at `(net, machine)` addresses,
    /// if any. This is how the wire locates a fully qualified destination —
    /// stale addresses find nothing (or, after reuse, the wrong machine).
    pub fn locate(&self, net: NetAddr, machine: MachineAddr) -> Option<MachineId> {
        self.machines
            .iter()
            .enumerate()
            .find(|(_, r)| r.addr == machine && self.networks[r.network.0].addr == net)
            .map(|(i, _)| MachineId(i))
    }

    /// Message latency between two machines under the current model.
    pub fn latency(&self, from: MachineId, to: MachineId) -> Duration {
        let model = self.latency_model();
        let ticks = if from == to {
            model.local
        } else if self.machine_network(from) == self.machine_network(to) {
            model.same_network
        } else {
            model.cross_network
        };
        Duration::from_ticks(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo2() -> (
        Topology,
        NetworkId,
        NetworkId,
        MachineId,
        MachineId,
        MachineId,
    ) {
        let mut t = Topology::new();
        let n1 = t.add_network("lab");
        let n2 = t.add_network("office");
        let m1 = t.add_machine("host-a", n1);
        let m2 = t.add_machine("host-b", n1);
        let m3 = t.add_machine("host-c", n2);
        (t, n1, n2, m1, m2, m3)
    }

    #[test]
    fn construction_and_queries() {
        let (t, n1, n2, m1, m2, m3) = topo2();
        assert_eq!(t.network_count(), 2);
        assert_eq!(t.machine_count(), 3);
        assert_eq!(t.network_name(n1), "lab");
        assert_eq!(t.machine_name(m3), "host-c");
        assert_eq!(t.machine_network(m1), n1);
        assert_eq!(t.machines_on(n1), vec![m1, m2]);
        assert_eq!(t.machines_on(n2), vec![m3]);
        assert_eq!(t.machines().count(), 3);
        assert_eq!(t.networks().count(), 2);
    }

    #[test]
    fn addresses_are_unique_and_nonzero() {
        let (t, n1, n2, m1, m2, m3) = topo2();
        assert_ne!(t.net_addr(n1), t.net_addr(n2));
        assert_ne!(t.machine_addr(m1), t.machine_addr(m2));
        assert_ne!(t.machine_addr(m2), t.machine_addr(m3));
        assert!(t.net_addr(n1).value() != 0);
        assert!(t.machine_addr(m1).value() != 0);
    }

    #[test]
    fn locate_by_current_address() {
        let (mut t, n1, _, m1, _, _) = topo2();
        let na = t.net_addr(n1);
        let ma = t.machine_addr(m1);
        assert_eq!(t.locate(na, ma), Some(m1));
        // After renumbering the machine, the old address finds nothing.
        let fresh = t.fresh_machine_addr();
        t.renumber_machine(m1, fresh);
        assert_eq!(t.locate(na, ma), None);
        assert_eq!(t.locate(na, fresh), Some(m1));
    }

    #[test]
    fn renumber_network_invalidates_old_route() {
        let (mut t, n1, _, m1, _, _) = topo2();
        let old_net = t.net_addr(n1);
        let ma = t.machine_addr(m1);
        let fresh = t.fresh_net_addr();
        let prev = t.renumber_network(n1, fresh);
        assert_eq!(prev, old_net);
        assert_eq!(t.locate(old_net, ma), None);
        assert_eq!(t.locate(fresh, ma), Some(m1));
    }

    #[test]
    fn latency_tiers() {
        let (t, _, _, m1, m2, m3) = topo2();
        let model = t.latency_model();
        assert_eq!(t.latency(m1, m1).ticks(), model.local);
        assert_eq!(t.latency(m1, m2).ticks(), model.same_network);
        assert_eq!(t.latency(m1, m3).ticks(), model.cross_network);
    }

    #[test]
    fn custom_latency_model() {
        let (mut t, _, _, m1, m2, _) = topo2();
        t.set_latency_model(LatencyModel {
            local: 2,
            same_network: 20,
            cross_network: 200,
        });
        assert_eq!(t.latency(m1, m2).ticks(), 20);
    }

    #[test]
    #[should_panic(expected = "network address 0 is reserved")]
    fn zero_net_addr_panics() {
        let _ = NetAddr::new(0);
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn machine_on_unknown_network_panics() {
        let mut t = Topology::new();
        t.add_machine("x", NetworkId(3));
    }
}
