//! # naming-sim
//!
//! A deterministic discrete-event simulator of a distributed computing
//! environment — the substrate on which the naming schemes of Radia &
//! Pachl's *Coherence in Naming in Distributed Computing Environments*
//! (ICDCS '93) are built and measured.
//!
//! The simulator provides exactly the behaviours coherence questions are
//! about, and nothing more:
//!
//! * [`topology`]: networks and machines with *renumberable* addresses
//!   (exercised by the partially-qualified-identifier experiments);
//! * [`world::World`]: processes with per-activity contexts (inherited on
//!   spawn, as in Unix), per-machine directory trees, message passing with
//!   latency, deterministic event ordering;
//! * [`store`]: directory-tree building (mounts, grafts, moves, structured
//!   objects with embedded names);
//! * [`workload`]: seeded generation of trees, and of name-usage patterns
//!   spanning the paper's three name sources.
//!
//! Determinism: all randomness flows through [`rng::SimRng`] and event ties
//! break by schedule order, so a seed reproduces a run bit-for-bit.
//!
//! ```
//! use naming_sim::world::World;
//! use naming_sim::store;
//! use naming_core::entity::Entity;
//!
//! let mut w = World::new(7);
//! let net = w.add_network("lab");
//! let host = w.add_machine("alpha", net);
//! let root = w.machine_root(host);
//! let etc = store::ensure_dir(w.state_mut(), root, "etc");
//! let passwd = store::create_file(w.state_mut(), etc, "passwd", b"root".to_vec());
//! assert_eq!(
//!     store::resolve_path(w.state(), root, "/etc/passwd"),
//!     Entity::Object(passwd),
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod message;
pub mod pool;
pub mod rng;
pub mod store;
pub mod time;
pub mod topology;
pub mod trace;
pub mod workload;
pub mod world;

pub use world::World;
