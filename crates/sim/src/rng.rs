//! Deterministic randomness for the simulator.
//!
//! All randomness in experiments flows through [`SimRng`], a seeded PRNG
//! with a few convenience methods. Reusing a seed reproduces a scenario
//! bit-for-bit; see the `simulator_determinism` integration test.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.random::<f64>() < p
    }

    /// Picks a uniformly random element of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len())]
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Derives an independent child generator; deterministic given the
    /// parent's state.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.random::<u64>();
        SimRng::seeded(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        let xs: Vec<usize> = (0..32).map(|_| a.below(1000)).collect();
        let ys: Vec<usize> = (0..32).map(|_| b.below(1000)).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let xs: Vec<usize> = (0..32).map(|_| a.below(1_000_000)).collect();
        let ys: Vec<usize> = (0..32).map(|_| b.below(1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn range_and_chance() {
        let mut r = SimRng::seeded(3);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seeded(4);
        let items = [1, 2, 3];
        for _ in 0..10 {
            assert!(items.contains(r.pick(&items)));
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seeded(5);
        let mut b = SimRng::seeded(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.below(100), fb.below(100));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seeded(0).below(0);
    }

    #[test]
    #[should_panic(expected = "cannot pick from an empty slice")]
    fn empty_pick_panics() {
        let empty: [u8; 0] = [];
        SimRng::seeded(0).pick(&empty);
    }
}
