//! Deterministic worker-pool scheduling under virtual time.
//!
//! A real worker pool interleaves jobs nondeterministically; measuring its
//! scaling on whatever hardware happens to run the benchmark is not
//! reproducible. [`VirtualPool`] models the same FIFO work-sharing
//! discipline — each job goes to the worker that frees up first — in
//! [`VirtualTime`], so a given job sequence produces the exact same
//! schedule, makespan, and per-worker utilization on every machine. The
//! concurrent-serving benchmark uses it to report worker-scaling numbers
//! that CI can compare byte-for-byte.

use crate::time::{Duration, VirtualTime};

/// One scheduled job: which worker ran it and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Sequence number of the job (submission order).
    pub job: u64,
    /// The worker that served it.
    pub worker: usize,
    /// When the worker picked the job up.
    pub start: VirtualTime,
    /// When the worker finished it.
    pub end: VirtualTime,
}

/// A deterministic model of a fixed FIFO worker pool.
///
/// Jobs are assigned in submission order to the earliest-available worker;
/// ties break toward the lowest worker index. This is exactly the schedule
/// an MPMC job channel converges to when every worker pulls its next job
/// the moment it finishes the previous one.
///
/// # Examples
///
/// ```
/// use naming_sim::pool::VirtualPool;
/// use naming_sim::time::Duration;
///
/// let mut pool = VirtualPool::new(2);
/// for _ in 0..4 {
///     pool.assign(Duration::from_ticks(10));
/// }
/// // Two workers halve the serial makespan of four equal jobs.
/// assert_eq!(pool.makespan(), Duration::from_ticks(20));
/// ```
#[derive(Clone, Debug)]
pub struct VirtualPool {
    /// When each worker next becomes free.
    free_at: Vec<VirtualTime>,
    schedule: Vec<Assignment>,
    busy: u64,
}

impl VirtualPool {
    /// Creates a pool of `workers` idle workers at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> VirtualPool {
        assert!(workers > 0, "worker pool must be nonempty");
        VirtualPool {
            free_at: vec![VirtualTime::ZERO; workers],
            schedule: Vec::new(),
            busy: 0,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules the next job, costing `cost` ticks of worker time, onto
    /// the earliest-available worker (lowest index on ties). Returns the
    /// resulting assignment.
    pub fn assign(&mut self, cost: Duration) -> Assignment {
        let (worker, &start) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("pool is nonempty");
        let end = start + cost;
        self.free_at[worker] = end;
        self.busy += cost.ticks();
        let a = Assignment {
            job: self.schedule.len() as u64,
            worker,
            start,
            end,
        };
        self.schedule.push(a);
        a
    }

    /// The full schedule so far, in submission order.
    pub fn schedule(&self) -> &[Assignment] {
        &self.schedule
    }

    /// Virtual time at which the last worker finishes — the pool's
    /// end-to-end completion time for everything assigned so far.
    pub fn makespan(&self) -> Duration {
        self.free_at
            .iter()
            .max()
            .map(|t| *t - VirtualTime::ZERO)
            .unwrap_or(Duration::ZERO)
    }

    /// Total worker-ticks spent on jobs (the serial cost of the work).
    pub fn busy_ticks(&self) -> u64 {
        self.busy
    }

    /// Fraction of worker capacity used up to the makespan: 1.0 means
    /// perfectly balanced, no idle gaps.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan().ticks();
        if span == 0 {
            return 1.0;
        }
        self.busy as f64 / (span as f64 * self.workers() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(n: u64) -> Duration {
        Duration::from_ticks(n)
    }

    #[test]
    fn single_worker_serializes() {
        let mut p = VirtualPool::new(1);
        for c in [3, 5, 7] {
            p.assign(ticks(c));
        }
        assert_eq!(p.makespan(), ticks(15));
        assert_eq!(p.busy_ticks(), 15);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        // Jobs run back to back in submission order.
        let s = p.schedule();
        assert_eq!(s[1].start, VirtualTime::from_ticks(3));
        assert_eq!(s[2].start, VirtualTime::from_ticks(8));
    }

    #[test]
    fn equal_jobs_scale_linearly() {
        for workers in [1usize, 2, 4, 8] {
            let mut p = VirtualPool::new(workers);
            for _ in 0..64 {
                p.assign(ticks(100));
            }
            assert_eq!(p.makespan().ticks(), 6400 / workers as u64);
            assert!((p.utilization() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ties_break_toward_lowest_worker_index() {
        let mut p = VirtualPool::new(3);
        let a = p.assign(ticks(10));
        let b = p.assign(ticks(10));
        let c = p.assign(ticks(10));
        assert_eq!((a.worker, b.worker, c.worker), (0, 1, 2));
        // All free again at t=10; the next job goes back to worker 0.
        let d = p.assign(ticks(10));
        assert_eq!(d.worker, 0);
        assert_eq!(d.start, VirtualTime::from_ticks(10));
    }

    #[test]
    fn uneven_jobs_fill_the_least_loaded_worker() {
        let mut p = VirtualPool::new(2);
        p.assign(ticks(100)); // worker 0 busy until 100
        p.assign(ticks(10)); // worker 1 busy until 10
        let third = p.assign(ticks(10)); // worker 1 again at t=10
        assert_eq!(third.worker, 1);
        assert_eq!(third.start, VirtualTime::from_ticks(10));
        assert_eq!(p.makespan(), ticks(100));
        assert!(p.utilization() < 1.0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut p = VirtualPool::new(4);
            for j in 0..100u64 {
                p.assign(ticks(1 + j % 17));
            }
            p.schedule().to_vec()
        };
        assert_eq!(run(), run());
    }
}
