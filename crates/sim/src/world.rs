//! The simulated distributed system: machines, processes, messages, and
//! the naming state they share.
//!
//! [`World`] owns a [`SystemState`] (the σ function), a [`ContextRegistry`]
//! (the `R(a)`/`R(o)` associations), a [`Topology`] (machines, networks,
//! addresses), the process table, and a deterministic event queue for
//! message delivery. Naming schemes (crate `naming-schemes`) configure the
//! world — build directory trees, assign per-process contexts — and
//! experiments drive it.

use std::collections::{BTreeMap, VecDeque};

use naming_core::closure::{ContextRegistry, MetaContext, NameSource, ResolutionRule};
use naming_core::context::Context;
use naming_core::entity::{ActivityId, Entity, ObjectId};
use naming_core::name::{CompoundName, Name};
use naming_core::replica::ReplicaRegistry;
use naming_core::resolve::Resolver;
use naming_core::state::{ObjectState, SystemState};

use crate::event::EventQueue;
use crate::message::{Message, Payload};
use crate::rng::SimRng;
use crate::time::VirtualTime;
use crate::topology::{MachineId, NetworkId, Topology};
use crate::trace::{TraceEvent, TraceLog};

/// A process's stable address local to its machine (nonzero; `0` is the
/// PQID wildcard).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalAddr(u32);

impl LocalAddr {
    /// The raw value.
    pub fn value(self) -> u32 {
        self.0
    }
}

#[derive(Clone, Debug)]
struct ProcessInfo {
    machine: MachineId,
    parent: Option<ActivityId>,
    ctx: ObjectId,
    local_addr: LocalAddr,
    mailbox: VecDeque<Message>,
    /// Timer tokens whose wake events have fired, awaiting
    /// [`World::take_wake`].
    wakes: VecDeque<u64>,
    alive: bool,
}

#[derive(Clone, Debug)]
struct MachineState {
    root: ObjectId,
    next_local_addr: u32,
}

#[derive(Clone, Debug)]
enum SimEvent {
    Deliver(Message),
    /// A deadline timer: at its scheduled time, `token` lands in `pid`'s
    /// wake queue (unless cancelled first).
    Wake {
        pid: ActivityId,
        token: u64,
    },
}

/// Fault-injection configuration: lossy delivery and severed links.
///
/// The paper's schemes must keep names meaningful across an unreliable
/// substrate; fault injection lets tests exercise retry/re-registration
/// paths (e.g. the PQID registry test re-registering after loss).
#[derive(Clone, Debug, Default)]
struct FaultPlan {
    /// Probability that a message is lost in transit.
    drop_rate: f64,
    /// Severed machine pairs (stored with the smaller id first).
    down_links: std::collections::BTreeSet<(MachineId, MachineId)>,
}

impl FaultPlan {
    fn link_key(a: MachineId, b: MachineId) -> (MachineId, MachineId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// The simulated world.
///
/// # Examples
///
/// ```
/// use naming_sim::world::World;
///
/// let mut world = World::new(42);
/// let net = world.add_network("lab");
/// let host = world.add_machine("host-a", net);
/// let shell = world.spawn(host, "shell", None);
/// assert_eq!(world.machine_of(shell), host);
/// ```
#[derive(Clone, Debug)]
pub struct World {
    state: SystemState,
    registry: ContextRegistry,
    replicas: ReplicaRegistry,
    topology: Topology,
    machines: Vec<MachineState>,
    processes: BTreeMap<ActivityId, ProcessInfo>,
    clock: VirtualTime,
    queue: EventQueue<SimEvent>,
    rng: SimRng,
    trace: TraceLog,
    faults: FaultPlan,
    /// Tokens of scheduled wakes that were cancelled before firing. A
    /// cancelled wake is skipped *silently* when its event is reached —
    /// no clock advance, no step — so timers that never fire leave the
    /// timeline byte-identical to a world that never scheduled them.
    cancelled_wakes: std::collections::BTreeSet<u64>,
}

impl World {
    /// Creates an empty world with the given random seed (single-shard
    /// naming state).
    pub fn new(seed: u64) -> World {
        World::with_shards(seed, 1)
    }

    /// Creates an empty world whose naming state is split into `shards`
    /// independently versioned shards (see
    /// [`SystemState::with_shards`]). Use
    /// [`SystemState::set_default_shard`] via [`World::state_mut`] to
    /// route each zone's objects to its own shard.
    ///
    /// # Panics
    ///
    /// Panics like [`SystemState::with_shards`].
    pub fn with_shards(seed: u64, shards: usize) -> World {
        World {
            state: SystemState::with_shards(shards),
            registry: ContextRegistry::new(),
            replicas: ReplicaRegistry::new(),
            topology: Topology::new(),
            machines: Vec::new(),
            processes: BTreeMap::new(),
            clock: VirtualTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::seeded(seed),
            trace: TraceLog::counters_only(),
            faults: FaultPlan::default(),
            cancelled_wakes: std::collections::BTreeSet::new(),
        }
    }

    // --- telemetry ---------------------------------------------------------

    /// Keeps an installed recorder's virtual clock in step with the
    /// world's, so resolutions and simulator events land on one timeline.
    #[cfg(feature = "telemetry")]
    fn sync_clock(&self) {
        naming_telemetry::recorder::set_clock(self.clock.ticks());
    }

    /// Emits a `message` span covering the virtual-time transit of a
    /// delivered message.
    #[cfg(feature = "telemetry")]
    fn observe_delivery(&self, msg: &Message) {
        let fm = self.processes[&msg.from].machine;
        let tm = self.processes[&msg.to].machine;
        naming_telemetry::recorder::span(
            "message",
            format!(
                "{} -> {}",
                self.state.activity_label(msg.from),
                self.state.activity_label(msg.to)
            ),
            msg.sent_at.ticks(),
            self.clock.ticks(),
            vec![
                (
                    "from_machine".into(),
                    self.topology.machine_name(fm).to_string(),
                ),
                (
                    "to_machine".into(),
                    self.topology.machine_name(tm).to_string(),
                ),
                ("names".into(), msg.name_count().to_string()),
            ],
        );
    }

    /// Emits a `message` instant for a message that never reached its
    /// receiver (`why` is `"lost"`, `"unroutable"`, or `"dropped"`).
    #[cfg(feature = "telemetry")]
    fn observe_undelivered(&self, why: &str, from: ActivityId, to: ActivityId) {
        if naming_telemetry::recorder::is_active() {
            self.sync_clock();
            naming_telemetry::recorder::instant(
                "message",
                format!(
                    "{why}: {} -> {}",
                    self.state.activity_label(from),
                    self.state.activity_label(to)
                ),
                Vec::new(),
            );
        }
    }

    // --- fault injection ---------------------------------------------------

    /// Sets the probability that any message is lost in transit
    /// (clamped to `[0, 1]`; default 0). Losses bump the `lost` trace
    /// counter.
    ///
    /// `NaN` normalizes to 0: `f64::clamp` propagates NaN, and a NaN
    /// drop rate would silently disable fault injection (every
    /// `chance(NaN)` comparison is false) while *looking* configured.
    pub fn set_message_drop_rate(&mut self, p: f64) {
        self.faults.drop_rate = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    }

    /// Severs or restores the (symmetric) link between two machines.
    /// Messages sent while the link is down are counted as `unroutable`
    /// and never delivered. Intra-machine messages cannot be severed.
    pub fn set_link_up(&mut self, a: MachineId, b: MachineId, up: bool) {
        let key = FaultPlan::link_key(a, b);
        if up {
            self.faults.down_links.remove(&key);
        } else if a != b {
            self.faults.down_links.insert(key);
        }
    }

    /// True if the link between the two machines is currently usable.
    pub fn link_up(&self, a: MachineId, b: MachineId) -> bool {
        a == b || !self.faults.down_links.contains(&FaultPlan::link_key(a, b))
    }

    // --- raw access for schemes and experiments ---------------------------

    /// The naming state (σ).
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Mutable naming state.
    pub fn state_mut(&mut self) -> &mut SystemState {
        &mut self.state
    }

    /// The context registry (the stored `R(a)` / `R(o)` maps).
    pub fn registry(&self) -> &ContextRegistry {
        &self.registry
    }

    /// Mutable context registry.
    pub fn registry_mut(&mut self) -> &mut ContextRegistry {
        &mut self.registry
    }

    /// The replica registry for weak coherence.
    pub fn replicas(&self) -> &ReplicaRegistry {
        &self.replicas
    }

    /// Mutable replica registry.
    pub fn replicas_mut(&mut self) -> &mut ReplicaRegistry {
        &mut self.replicas
    }

    /// The physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology (renumbering experiments).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable trace log.
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// The world's RNG.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.clock
    }

    // --- topology ----------------------------------------------------------

    /// Adds a network.
    pub fn add_network(&mut self, name: impl Into<String>) -> NetworkId {
        self.topology.add_network(name)
    }

    /// Renumbers a machine to a fresh address (relocation /
    /// reconfiguration), tracing the event. Returns the new address.
    pub fn renumber_machine(&mut self, m: MachineId) -> crate::topology::MachineAddr {
        let fresh = self.topology.fresh_machine_addr();
        let old = self.topology.renumber_machine(m, fresh);
        let what = format!(
            "machine {} {} -> {}",
            self.topology.machine_name(m),
            old,
            fresh
        );
        #[cfg(feature = "telemetry")]
        if naming_telemetry::recorder::is_active() {
            self.sync_clock();
            naming_telemetry::recorder::instant("sim", format!("renumber {what}"), Vec::new());
        }
        self.trace
            .record(self.clock, TraceEvent::Renumbered { what });
        fresh
    }

    /// Renumbers a network to a fresh address, tracing the event. Returns
    /// the new address.
    pub fn renumber_network(&mut self, n: NetworkId) -> crate::topology::NetAddr {
        let fresh = self.topology.fresh_net_addr();
        let old = self.topology.renumber_network(n, fresh);
        let what = format!(
            "network {} {} -> {}",
            self.topology.network_name(n),
            old,
            fresh
        );
        #[cfg(feature = "telemetry")]
        if naming_telemetry::recorder::is_active() {
            self.sync_clock();
            naming_telemetry::recorder::instant("sim", format!("renumber {what}"), Vec::new());
        }
        self.trace
            .record(self.clock, TraceEvent::Renumbered { what });
        fresh
    }

    /// Adds a machine on `network`, creating its root directory (a context
    /// object with a self-binding for `/`).
    pub fn add_machine(&mut self, name: impl Into<String>, network: NetworkId) -> MachineId {
        let name = name.into();
        let id = self.topology.add_machine(name.clone(), network);
        let root = self.state.add_context_object(format!("{name}:/"));
        self.state
            .bind(root, Name::root(), root)
            .expect("fresh root is a context");
        self.machines.push(MachineState {
            root,
            next_local_addr: 0,
        });
        id
    }

    /// The root directory object of a machine.
    pub fn machine_root(&self, m: MachineId) -> ObjectId {
        self.machines[m.0].root
    }

    /// Replaces the root directory object of a machine (used by schemes
    /// that graft machine trees under a superroot).
    pub fn set_machine_root(&mut self, m: MachineId, root: ObjectId) {
        self.machines[m.0].root = root;
    }

    // --- processes ---------------------------------------------------------

    /// Spawns a process on `machine`.
    ///
    /// With a parent, the child *inherits a copy* of the parent's context —
    /// "a child inherits the context of its parent. A parent and a child
    /// have coherence for all names until one of them modifies its context"
    /// (§5.1). Without a parent, the context starts with `/` and `.` bound
    /// to the machine root.
    pub fn spawn(
        &mut self,
        machine: MachineId,
        label: impl Into<String>,
        parent: Option<ActivityId>,
    ) -> ActivityId {
        let pid = self.state.add_activity(label);
        let ctx_contents: Context = match parent {
            Some(p) => {
                let pctx = self.processes[&p].ctx;
                self.state
                    .context(pctx)
                    .expect("parent context object")
                    .inherit()
            }
            None => {
                let root = self.machines[machine.0].root;
                Context::from_bindings([
                    (Name::root(), Entity::Object(root)),
                    (Name::self_(), Entity::Object(root)),
                ])
            }
        };
        let ctx = self.state.add_object(
            format!("ctx:{}", self.state.activity_label(pid)),
            ObjectState::Context(ctx_contents),
        );
        self.registry.set_activity_context(pid, ctx);
        let m = &mut self.machines[machine.0];
        m.next_local_addr += 1;
        let local_addr = LocalAddr(m.next_local_addr);
        self.processes.insert(
            pid,
            ProcessInfo {
                machine,
                parent,
                ctx,
                local_addr,
                mailbox: VecDeque::new(),
                wakes: VecDeque::new(),
                alive: true,
            },
        );
        self.state.activity_state_mut(pid).tag = machine.0 as u64;
        self.trace
            .record(self.clock, TraceEvent::Spawned { pid, parent });
        #[cfg(feature = "telemetry")]
        if naming_telemetry::recorder::is_active() {
            self.sync_clock();
            naming_telemetry::recorder::instant(
                "sim",
                format!("spawn {}", self.state.activity_label(pid)),
                vec![(
                    "machine".into(),
                    self.topology.machine_name(machine).to_string(),
                )],
            );
        }
        pid
    }

    /// Terminates a process (it keeps its ids but stops receiving).
    pub fn kill(&mut self, pid: ActivityId) {
        if let Some(p) = self.processes.get_mut(&pid) {
            p.alive = false;
        }
        self.state.activity_state_mut(pid).alive = false;
    }

    /// Restarts a killed process: it receives messages again, with an
    /// empty mailbox and no pending wakes — a crash loses everything that
    /// was queued, exactly like a real restart. The process keeps its
    /// ids, context, and local address. Reviving a live process is a
    /// no-op.
    pub fn revive(&mut self, pid: ActivityId) {
        if let Some(p) = self.processes.get_mut(&pid) {
            if !p.alive {
                p.alive = true;
                p.mailbox.clear();
                p.wakes.clear();
                self.state.activity_state_mut(pid).alive = true;
                self.trace.bump("revived");
            }
        }
    }

    /// True if the process is alive.
    pub fn is_alive(&self, pid: ActivityId) -> bool {
        self.processes.get(&pid).map(|p| p.alive).unwrap_or(false)
    }

    /// The machine hosting a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned in this world.
    pub fn machine_of(&self, pid: ActivityId) -> MachineId {
        self.processes[&pid].machine
    }

    /// The parent of a process, if any.
    pub fn parent_of(&self, pid: ActivityId) -> Option<ActivityId> {
        self.processes[&pid].parent
    }

    /// The process's per-activity context object (`R(pid)`).
    pub fn context_of(&self, pid: ActivityId) -> ObjectId {
        self.processes[&pid].ctx
    }

    /// The process's stable machine-local address.
    pub fn local_addr(&self, pid: ActivityId) -> LocalAddr {
        self.processes[&pid].local_addr
    }

    /// Finds the live process with the given local address on a machine.
    pub fn find_process(&self, machine: MachineId, addr: LocalAddr) -> Option<ActivityId> {
        self.processes
            .iter()
            .find(|(_, p)| p.machine == machine && p.local_addr == addr && p.alive)
            .map(|(pid, _)| *pid)
    }

    /// All processes ever spawned, in pid order.
    pub fn processes(&self) -> impl Iterator<Item = ActivityId> + '_ {
        self.processes.keys().copied()
    }

    /// The live processes on a machine, in pid order.
    pub fn processes_on(&self, machine: MachineId) -> Vec<ActivityId> {
        self.processes
            .iter()
            .filter(|(_, p)| p.machine == machine && p.alive)
            .map(|(pid, _)| *pid)
            .collect()
    }

    /// Binds `name` in a process's per-activity context.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned in this world.
    pub fn bind_for(&mut self, pid: ActivityId, name: Name, entity: impl Into<Entity>) {
        let ctx = self.processes[&pid].ctx;
        self.state
            .bind(ctx, name, entity)
            .expect("process context is a context object");
    }

    /// Looks `name` up in a process's per-activity context (single step).
    pub fn binding_of(&self, pid: ActivityId, name: Name) -> Entity {
        self.state.lookup(self.processes[&pid].ctx, name)
    }

    // --- resolution --------------------------------------------------------

    /// Resolves a name for a process under a resolution rule, tracing the
    /// outcome.
    pub fn resolve_as(
        &mut self,
        pid: ActivityId,
        name: &CompoundName,
        source: NameSource,
        rule: &dyn ResolutionRule,
    ) -> Entity {
        let m = MetaContext {
            resolver: pid,
            source,
        };
        // Core traces the resolution itself; keep its timestamps on the
        // simulated timeline.
        #[cfg(feature = "telemetry")]
        self.sync_clock();
        let entity =
            naming_core::closure::resolve_with_rule(&self.state, &self.registry, rule, &m, name);
        self.trace.record(
            self.clock,
            TraceEvent::Resolved {
                pid,
                name: name.clone(),
                source,
                entity,
            },
        );
        entity
    }

    /// Resolves a name directly in a process's own context (the ubiquitous
    /// `R(activity)` special case), without rule indirection.
    pub fn resolve_in_own_context(&self, pid: ActivityId, name: &CompoundName) -> Entity {
        Resolver::new().resolve_entity(&self.state, self.processes[&pid].ctx, name)
    }

    // --- messaging ---------------------------------------------------------

    /// Sends a message; delivery is scheduled after the topology's latency
    /// for the machine pair.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was not spawned in this world.
    pub fn send(&mut self, from: ActivityId, to: ActivityId, parts: Vec<Payload>) {
        let mut msg = Message::new(from, to, parts);
        msg.sent_at = self.clock;
        let (fm, tm) = (self.processes[&from].machine, self.processes[&to].machine);
        self.trace.record(
            self.clock,
            TraceEvent::MessageSent {
                from,
                to,
                names: msg.name_count(),
            },
        );
        // Wire-size accounting: framed payload bytes attempted on the
        // wire (counted even when the link or fault plan eats the
        // message — the sender still paid for them).
        let frame_bytes: u64 = msg
            .parts
            .iter()
            .map(|p| match p {
                Payload::Bytes(b) => b.len() as u64,
                Payload::Name(_) => 0,
            })
            .sum();
        if frame_bytes > 0 {
            self.trace.add("wire_bytes", frame_bytes);
        }
        if !self.link_up(fm, tm) {
            self.trace.bump("unroutable");
            #[cfg(feature = "telemetry")]
            self.observe_undelivered("unroutable", from, to);
            return;
        }
        if self.faults.drop_rate > 0.0 && self.rng.chance(self.faults.drop_rate) {
            self.trace.bump("lost");
            #[cfg(feature = "telemetry")]
            self.observe_undelivered("lost", from, to);
            return;
        }
        let latency = self.topology.latency(fm, tm);
        self.queue
            .schedule(self.clock + latency, SimEvent::Deliver(msg));
    }

    /// Schedules a deadline timer: after `after` elapses, `token` becomes
    /// available from [`World::take_wake`] for `pid`. Cancelled or
    /// dead-process wakes are skipped silently (no clock advance), so a
    /// timer that never fires costs nothing on the timeline.
    pub fn schedule_wake(&mut self, pid: ActivityId, after: crate::time::Duration, token: u64) {
        self.cancelled_wakes.remove(&token);
        self.queue
            .schedule(self.clock + after, SimEvent::Wake { pid, token });
    }

    /// Cancels a scheduled wake by token. Idempotent; cancelling a token
    /// that was never scheduled (or already fired) only pins the token as
    /// cancelled for any still-queued event.
    pub fn cancel_wake(&mut self, token: u64) {
        self.cancelled_wakes.insert(token);
    }

    /// Takes the next fired-but-unconsumed wake token for a process.
    pub fn take_wake(&mut self, pid: ActivityId) -> Option<u64> {
        self.processes.get_mut(&pid)?.wakes.pop_front()
    }

    /// Takes *every* fired-but-unconsumed wake token for a process, in
    /// firing order. A reactor multiplexing many suspended resolutions on
    /// one process needs all deadline firings delivered so far, not just
    /// the front one — popping them one at a time interleaved with other
    /// bookkeeping risks missing tokens queued behind the first.
    pub fn drain_wakes(&mut self, pid: ActivityId) -> Vec<u64> {
        self.processes
            .get_mut(&pid)
            .map(|p| p.wakes.drain(..).collect())
            .unwrap_or_default()
    }

    /// Runs the next pending event, advancing the clock. Returns `false`
    /// when the queue is empty. Cancelled wake timers are skipped without
    /// advancing the clock or counting as a step, so a lossless run with
    /// timers (all cancelled by on-time replies) is byte-identical to one
    /// without them.
    pub fn step(&mut self) -> bool {
        loop {
            match self.queue.pop() {
                None => return false,
                Some((time, SimEvent::Deliver(msg))) => {
                    self.clock = time;
                    let (from, to) = (msg.from, msg.to);
                    #[cfg(feature = "telemetry")]
                    if naming_telemetry::recorder::is_active() {
                        self.sync_clock();
                        if self.processes.get(&to).map(|p| p.alive) == Some(true) {
                            self.observe_delivery(&msg);
                        }
                    }
                    if let Some(p) = self.processes.get_mut(&to) {
                        if p.alive {
                            p.mailbox.push_back(msg);
                            self.trace
                                .record(self.clock, TraceEvent::MessageDelivered { from, to });
                        } else {
                            self.trace.bump("dropped");
                            #[cfg(feature = "telemetry")]
                            self.observe_undelivered("dropped", from, to);
                        }
                    }
                    return true;
                }
                Some((time, SimEvent::Wake { pid, token })) => {
                    if self.cancelled_wakes.remove(&token) {
                        continue;
                    }
                    let Some(p) = self.processes.get_mut(&pid) else {
                        continue;
                    };
                    if !p.alive {
                        continue;
                    }
                    self.clock = time;
                    p.wakes.push_back(token);
                    self.trace.bump("wake");
                    return true;
                }
            }
        }
    }

    /// Runs until the event queue is drained.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Takes the next delivered message from a process's mailbox.
    pub fn receive(&mut self, pid: ActivityId) -> Option<Message> {
        self.processes.get_mut(&pid)?.mailbox.pop_front()
    }

    /// Number of messages waiting in a process's mailbox.
    pub fn mailbox_len(&self, pid: ActivityId) -> usize {
        self.processes
            .get(&pid)
            .map(|p| p.mailbox.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naming_core::closure::StandardRule;

    fn two_machine_world() -> (World, MachineId, MachineId) {
        let mut w = World::new(1);
        let net = w.add_network("lab");
        let m1 = w.add_machine("alpha", net);
        let m2 = w.add_machine("beta", net);
        (w, m1, m2)
    }

    #[test]
    fn machine_roots_are_self_bound() {
        let (w, m1, _) = two_machine_world();
        let root = w.machine_root(m1);
        assert_eq!(w.state().lookup(root, Name::root()), Entity::Object(root));
    }

    #[test]
    fn spawn_root_process_context() {
        let (mut w, m1, _) = two_machine_world();
        let p = w.spawn(m1, "init", None);
        assert_eq!(
            w.binding_of(p, Name::root()),
            Entity::Object(w.machine_root(m1))
        );
        assert_eq!(
            w.binding_of(p, Name::self_()),
            Entity::Object(w.machine_root(m1))
        );
        assert!(w.is_alive(p));
        assert_eq!(w.parent_of(p), None);
        assert_eq!(w.trace().counter("spawned"), 1);
    }

    #[test]
    fn child_inherits_parent_context() {
        let (mut w, m1, _) = two_machine_world();
        let parent = w.spawn(m1, "sh", None);
        let dir = w.state_mut().add_context_object("work");
        w.bind_for(parent, Name::new("work"), dir);
        let child = w.spawn(m1, "child", Some(parent));
        assert_eq!(w.binding_of(child, Name::new("work")), Entity::Object(dir));
        assert_eq!(w.parent_of(child), Some(parent));
        // Divergence after inheritance: rebinding in parent does not affect
        // the child.
        let dir2 = w.state_mut().add_context_object("work2");
        w.bind_for(parent, Name::new("work"), dir2);
        assert_eq!(w.binding_of(child, Name::new("work")), Entity::Object(dir));
    }

    #[test]
    fn local_addrs_are_per_machine_and_stable() {
        let (mut w, m1, m2) = two_machine_world();
        let p1 = w.spawn(m1, "a", None);
        let p2 = w.spawn(m1, "b", None);
        let q1 = w.spawn(m2, "c", None);
        assert_ne!(w.local_addr(p1), w.local_addr(p2));
        assert_eq!(w.local_addr(p1).value(), 1);
        assert_eq!(w.local_addr(q1).value(), 1); // per-machine counter
        assert_eq!(w.find_process(m1, w.local_addr(p2)), Some(p2));
        assert_eq!(w.find_process(m2, w.local_addr(q1)), Some(q1));
    }

    #[test]
    fn dead_processes_are_not_found() {
        let (mut w, m1, _) = two_machine_world();
        let p = w.spawn(m1, "a", None);
        let addr = w.local_addr(p);
        w.kill(p);
        assert!(!w.is_alive(p));
        assert_eq!(w.find_process(m1, addr), None);
        assert!(w.processes_on(m1).is_empty());
    }

    #[test]
    fn message_roundtrip_with_latency() {
        let (mut w, m1, m2) = two_machine_world();
        let a = w.spawn(m1, "client", None);
        let b = w.spawn(m2, "server", None);
        w.send(a, b, vec![Payload::bytes(&b"ping"[..])]);
        assert_eq!(w.mailbox_len(b), 0);
        assert!(w.step());
        assert_eq!(w.mailbox_len(b), 1);
        // Same-network latency applied.
        assert_eq!(w.now().ticks(), w.topology().latency_model().same_network);
        let msg = w.receive(b).unwrap();
        assert_eq!(msg.from, a);
        assert!(w.receive(b).is_none());
    }

    #[test]
    fn messages_to_dead_processes_are_dropped() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        w.send(a, b, vec![]);
        w.kill(b);
        w.run();
        assert_eq!(w.mailbox_len(b), 0);
        assert_eq!(w.trace().counter("dropped"), 1);
        assert_eq!(w.trace().counter("delivered"), 0);
    }

    #[test]
    fn wire_bytes_counts_framed_payloads_even_when_lost() {
        let mut w = World::new(7);
        let net = w.add_network("n");
        let m1 = w.add_machine("m1", net);
        let a = w.spawn(m1, "a", None);
        let b = w.spawn(m1, "b", None);
        w.send(a, b, vec![Payload::bytes(vec![0u8; 10])]);
        w.send(
            a,
            b,
            vec![
                Payload::bytes(vec![0u8; 3]),
                Payload::name(CompoundName::parse_path("/etc").unwrap()),
            ],
        );
        assert_eq!(w.trace().counter("wire_bytes"), 13, "names are not bytes");
        // The sender pays for frames the network then loses.
        w.set_message_drop_rate(1.0);
        w.send(a, b, vec![Payload::bytes(vec![0u8; 5])]);
        assert_eq!(w.trace().counter("wire_bytes"), 18);
        assert_eq!(w.trace().counter("lost"), 1);
    }

    #[test]
    fn resolve_as_traces() {
        let (mut w, m1, _) = two_machine_world();
        let p = w.spawn(m1, "init", None);
        let root = w.machine_root(m1);
        let etc = w.state_mut().add_context_object("etc");
        w.state_mut().bind(root, Name::new("etc"), etc).unwrap();
        let n = CompoundName::parse_path("/etc").unwrap();
        let e = w.resolve_as(p, &n, NameSource::Internal, &StandardRule::OfResolver);
        assert_eq!(e, Entity::Object(etc));
        assert_eq!(w.trace().counter("resolved"), 1);
        assert_eq!(w.resolve_in_own_context(p, &n), Entity::Object(etc));
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        w.set_message_drop_rate(1.0);
        for _ in 0..5 {
            w.send(a, b, vec![]);
        }
        w.run();
        assert_eq!(w.mailbox_len(b), 0);
        assert_eq!(w.trace().counter("lost"), 5);
        // Restoring reliability restores delivery.
        w.set_message_drop_rate(0.0);
        w.send(a, b, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 1);
    }

    #[test]
    fn partial_loss_is_deterministic() {
        let counts: Vec<u64> = (0..2)
            .map(|_| {
                let (mut w, m1, m2) = two_machine_world();
                let a = w.spawn(m1, "x", None);
                let b = w.spawn(m2, "y", None);
                w.set_message_drop_rate(0.5);
                for _ in 0..40 {
                    w.send(a, b, vec![]);
                }
                w.run();
                w.trace().counter("delivered")
            })
            .collect();
        assert_eq!(counts[0], counts[1], "same seed, same losses");
        assert!(
            counts[0] > 5 && counts[0] < 35,
            "roughly half: {}",
            counts[0]
        );
    }

    #[test]
    fn severed_links_make_messages_unroutable() {
        let (mut w, m1, m2) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m2, "y", None);
        let c = w.spawn(m1, "z", None);
        assert!(w.link_up(m1, m2));
        w.set_link_up(m1, m2, false);
        assert!(!w.link_up(m1, m2));
        assert!(!w.link_up(m2, m1), "links are symmetric");
        w.send(a, b, vec![]);
        // Intra-machine traffic is unaffected.
        w.send(a, c, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 0);
        assert_eq!(w.mailbox_len(c), 1);
        assert_eq!(w.trace().counter("unroutable"), 1);
        // Healing the partition restores routing.
        w.set_link_up(m1, m2, true);
        w.send(a, b, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 1);
    }

    #[test]
    fn intra_machine_links_cannot_be_severed() {
        let (mut w, m1, _) = two_machine_world();
        w.set_link_up(m1, m1, false);
        assert!(w.link_up(m1, m1));
    }

    #[test]
    fn traced_renumbering() {
        let (mut w, m1, _) = two_machine_world();
        let old = w.topology().machine_addr(m1);
        let new = w.renumber_machine(m1);
        assert_ne!(old, new);
        assert_eq!(w.topology().machine_addr(m1), new);
        let net = w.topology().machine_network(m1);
        let old_net = w.topology().net_addr(net);
        let new_net = w.renumber_network(net);
        assert_ne!(old_net, new_net);
        assert_eq!(w.trace().counter("renumbered"), 2);
    }

    #[test]
    fn cloned_worlds_branch_deterministically() {
        // A cloned world is an independent what-if branch: both branches
        // evolve identically under identical inputs, and divergent inputs
        // do not leak across.
        let (mut w, m1, m2) = two_machine_world();
        let a = w.spawn(m1, "a", None);
        let b = w.spawn(m2, "b", None);
        w.send(a, b, vec![Payload::bytes(&b"x"[..])]);
        let mut fork = w.clone();
        // Same inputs → same outcomes.
        w.run();
        fork.run();
        assert_eq!(w.now(), fork.now());
        assert_eq!(w.mailbox_len(b), fork.mailbox_len(b));
        // Divergence stays contained.
        let dir = w.state_mut().add_context_object("only-in-w");
        w.bind_for(a, Name::new("d"), dir);
        assert_eq!(w.binding_of(a, Name::new("d")), Entity::Object(dir));
        assert_eq!(fork.binding_of(a, Name::new("d")), Entity::Undefined);
        assert!(fork.state().object_count() < w.state().object_count());
    }

    #[test]
    fn run_drains_queue() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        for _ in 0..5 {
            w.send(a, b, vec![]);
        }
        w.run();
        assert_eq!(w.mailbox_len(b), 5);
        assert!(!w.step());
    }

    #[test]
    fn nan_drop_rate_is_normalized_to_zero() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        // NaN would pass straight through f64::clamp and make every
        // chance() comparison false, silently disabling fault injection
        // *and* making p=NaN behave like p=0 while reading like "drop
        // everything is broken". Normalize to 0.
        w.set_message_drop_rate(f64::NAN);
        w.set_message_drop_rate(-0.5);
        w.send(a, b, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 1);
        w.set_message_drop_rate(2.0); // clamps to 1.0: everything drops
        w.send(a, b, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 1);
    }

    #[test]
    fn wake_fires_after_duration() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        w.schedule_wake(a, crate::time::Duration::from_ticks(40), 7);
        assert_eq!(w.take_wake(a), None);
        assert!(w.step());
        assert_eq!(w.now(), VirtualTime::from_ticks(40));
        assert_eq!(w.take_wake(a), Some(7));
        assert_eq!(w.take_wake(a), None);
        assert!(!w.step());
    }

    #[test]
    fn drain_wakes_returns_all_fired_tokens_in_order() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        // Two timers at the same instant, one later: after two steps both
        // early tokens are queued and drain together, in firing order.
        w.schedule_wake(a, crate::time::Duration::from_ticks(10), 3);
        w.schedule_wake(a, crate::time::Duration::from_ticks(10), 5);
        w.schedule_wake(a, crate::time::Duration::from_ticks(20), 9);
        assert!(w.step());
        assert!(w.step());
        assert_eq!(w.drain_wakes(a), vec![3, 5]);
        assert!(w.drain_wakes(a).is_empty());
        assert!(w.step());
        assert_eq!(w.drain_wakes(a), vec![9]);
    }

    #[test]
    fn cancelled_wake_is_invisible_on_the_timeline() {
        // A lossless run that schedules timers and cancels them all must be
        // byte-identical to a run that never scheduled them: same clock,
        // same step count, same trace counters.
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        let mut plain = w.clone();

        w.send(a, b, vec![]);
        w.schedule_wake(a, crate::time::Duration::from_ticks(5000), 42);
        w.cancel_wake(42);
        let mut steps = 0;
        while w.step() {
            steps += 1;
        }

        plain.send(a, b, vec![]);
        let mut plain_steps = 0;
        while plain.step() {
            plain_steps += 1;
        }

        assert_eq!(steps, plain_steps);
        assert_eq!(w.now(), plain.now());
        assert_eq!(w.trace().counter("wake"), 0);
    }

    #[test]
    fn wake_for_dead_process_is_skipped() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        w.schedule_wake(a, crate::time::Duration::from_ticks(10), 1);
        w.kill(a);
        assert!(!w.step());
        assert_eq!(w.now(), VirtualTime::ZERO);
    }

    #[test]
    fn revive_restores_delivery_with_empty_mailbox() {
        let (mut w, m1, _) = two_machine_world();
        let a = w.spawn(m1, "x", None);
        let b = w.spawn(m1, "y", None);
        w.send(a, b, vec![]);
        w.kill(b);
        w.run(); // in-flight message dropped at the dead process
        assert_eq!(w.trace().counter("dropped"), 1);
        w.revive(b);
        assert_eq!(w.mailbox_len(b), 0);
        w.send(a, b, vec![]);
        w.run();
        assert_eq!(w.mailbox_len(b), 1);
        assert_eq!(w.trace().counter("revived"), 1);
    }
}
