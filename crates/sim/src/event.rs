//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties at the same virtual time
//! fire in scheduling order, which keeps the simulator deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::VirtualTime;

#[derive(Clone)]
struct Scheduled<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; reverse the ordering for earliest-first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// # Examples
///
/// ```
/// use naming_sim::event::EventQueue;
/// use naming_sim::time::VirtualTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(VirtualTime::from_ticks(5), "later");
/// q.schedule(VirtualTime::from_ticks(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t.ticks(), 1);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E: Clone> Clone for EventQueue<E> {
    fn clone(&self) -> Self {
        EventQueue {
            heap: self.heap.clone(),
            next_seq: self.next_seq,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: VirtualTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> VirtualTime {
        VirtualTime::from_ticks(n)
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "c");
        q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(drained, expected);
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(3), ());
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), "x");
        assert_eq!(q.pop().unwrap().1, "x");
        q.schedule(t(1), "y"); // same time as a popped event, later seq
        q.schedule(t(0), "z");
        assert_eq!(q.pop().unwrap().1, "z");
        assert_eq!(q.pop().unwrap().1, "y");
    }
}
