//! Execution tracing and counters for experiments.

use std::collections::BTreeMap;
use std::fmt;

use naming_core::closure::NameSource;
use naming_core::entity::{ActivityId, Entity};
use naming_core::name::CompoundName;

use crate::time::VirtualTime;

/// A traced simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An activity resolved a name.
    Resolved {
        /// The resolving activity.
        pid: ActivityId,
        /// The resolved name.
        name: CompoundName,
        /// How the activity obtained the name.
        source: NameSource,
        /// The entity obtained (possibly `⊥`).
        entity: Entity,
    },
    /// A message left its sender.
    MessageSent {
        /// Sender.
        from: ActivityId,
        /// Receiver.
        to: ActivityId,
        /// Number of names carried.
        names: usize,
    },
    /// A message reached its receiver's mailbox.
    MessageDelivered {
        /// Sender.
        from: ActivityId,
        /// Receiver.
        to: ActivityId,
    },
    /// A process was created.
    Spawned {
        /// The new process.
        pid: ActivityId,
        /// Its parent, if any.
        parent: Option<ActivityId>,
    },
    /// A machine or network address changed.
    Renumbered {
        /// Human-readable description of what changed.
        what: String,
    },
}

/// An append-only log of [`TraceEvent`]s with named counters.
///
/// Event recording can be disabled (counters stay on) to keep long
/// experiment runs cheap.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<(VirtualTime, TraceEvent)>,
    counters: BTreeMap<&'static str, u64>,
    record_events: bool,
}

impl TraceLog {
    /// Creates a log with event recording enabled.
    pub fn new() -> TraceLog {
        TraceLog {
            record_events: true,
            ..TraceLog::default()
        }
    }

    /// Creates a log that only keeps counters.
    pub fn counters_only() -> TraceLog {
        TraceLog::default()
    }

    /// Appends an event (if recording) and bumps its kind counter.
    pub fn record(&mut self, time: VirtualTime, event: TraceEvent) {
        let key = match &event {
            TraceEvent::Resolved { .. } => "resolved",
            TraceEvent::MessageSent { .. } => "sent",
            TraceEvent::MessageDelivered { .. } => "delivered",
            TraceEvent::Spawned { .. } => "spawned",
            TraceEvent::Renumbered { .. } => "renumbered",
        };
        self.bump(key);
        if self.record_events {
            self.events.push((time, event));
        }
    }

    /// Increments a named counter.
    ///
    /// With the `telemetry` feature the increment is mirrored into the
    /// process-wide [`naming_telemetry::metrics`] registry (under a
    /// `sim.`-prefixed name for the standard event counters), so metric
    /// snapshots aggregate across worlds. [`TraceLog::clear`] does not
    /// rewind the mirror: registry counters are monotone.
    pub fn bump(&mut self, key: &'static str) {
        *self.counters.entry(key).or_insert(0) += 1;
        #[cfg(feature = "telemetry")]
        naming_telemetry::metrics::global()
            .counter(mirror_name(key))
            .bump();
    }

    /// Adds `n` to a named counter in one step — for quantities that
    /// arrive in lumps, like a frame's bytes on the wire. Mirrored into
    /// the telemetry registry exactly like [`TraceLog::bump`].
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
        #[cfg(feature = "telemetry")]
        naming_telemetry::metrics::global()
            .counter(mirror_name(key))
            .add(n);
    }

    /// A counter's current value (0 if never bumped).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[(VirtualTime, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears recorded events and counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
    }
}

/// The global-metrics name a trace counter is mirrored under: the standard
/// event counters gain a `sim.` prefix; ad-hoc caller keys pass through.
#[cfg(feature = "telemetry")]
fn mirror_name(key: &'static str) -> &'static str {
    match key {
        "resolved" => "sim.resolved",
        "sent" => "sim.sent",
        "delivered" => "sim.delivered",
        "spawned" => "sim.spawned",
        "renumbered" => "sim.renumbered",
        "lost" => "sim.lost",
        "unroutable" => "sim.unroutable",
        "dropped" => "sim.dropped",
        other => other,
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace[")?;
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_events_and_counters() {
        let mut log = TraceLog::new();
        log.record(
            VirtualTime::from_ticks(1),
            TraceEvent::Spawned {
                pid: ActivityId::from_index(0),
                parent: None,
            },
        );
        log.record(
            VirtualTime::from_ticks(2),
            TraceEvent::MessageSent {
                from: ActivityId::from_index(0),
                to: ActivityId::from_index(1),
                names: 1,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.counter("spawned"), 1);
        assert_eq!(log.counter("sent"), 1);
        assert_eq!(log.counter("delivered"), 0);
        assert!(log.to_string().contains("spawned=1"));
    }

    #[test]
    fn counters_only_mode_skips_events() {
        let mut log = TraceLog::counters_only();
        log.record(
            VirtualTime::ZERO,
            TraceEvent::Renumbered { what: "net".into() },
        );
        assert!(log.is_empty());
        assert_eq!(log.counter("renumbered"), 1);
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new();
        log.bump("x");
        log.record(
            VirtualTime::ZERO,
            TraceEvent::MessageDelivered {
                from: ActivityId::from_index(0),
                to: ActivityId::from_index(1),
            },
        );
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.counter("x"), 0);
    }
}
