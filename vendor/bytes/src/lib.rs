//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `Bytes`/`BytesMut` and the `Buf`/`BufMut`
//! traits that the wire codecs in this workspace use: big-endian integer
//! gets/puts, slicing, freezing, and cheap clones via a shared backing
//! buffer.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (a view into shared storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copied; the stand-in does not track statics).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of this buffer sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "advance past end of buffer");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Read access to a byte buffer (big-endian integer decoding).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16;

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64;

    /// Reads `len` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        self.take(cnt);
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::from(self.take(len).to_vec())
    }
}

/// Write access to a byte buffer (big-endian integer encoding).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16);

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(300);
        b.put_u32(70_000);
        b.put_u64(u64::MAX - 1);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(&r.copy_to_bytes(2)[..], b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(..5);
        assert_eq!(&s[..], b"hello");
        let t = s.slice(1..3);
        assert_eq!(&t[..], b"el");
        assert_eq!(b.len(), 11);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u16();
    }
}
