//! Offline stand-in for `criterion`.
//!
//! A small wall-clock harness with criterion's calling conventions:
//! benchmark groups, `Bencher::iter`/`iter_with_setup`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark is
//! calibrated to a short target time, sampled, and reported as the median
//! ns/iteration on stdout. No statistics machinery, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Time budget per sample; keeps full bench runs fast while still giving
/// enough iterations to average out timer noise.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(4);

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 12,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group: an optional function name plus
/// a parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}/{}", self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by a plain string.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = run_samples(self.sample_size, |b| f(b));
        report(&label, &samples);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = run_samples(self.sample_size, |b| f(b, input));
        report(&label, &samples);
        self
    }

    /// Ends the group (separator line, matching criterion's API shape).
    pub fn finish(self) {
        println!();
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, run `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every invocation.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Calibrates the per-sample iteration count, then collects ns/iter samples.
fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, mut f: F) -> Vec<f64> {
    // Calibration pass: one iteration to estimate the routine's cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let est = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;

    (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect()
}

/// Prints the median sample, criterion-style.
fn report(label: &str, samples: &[f64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    println!("{label:<48} time: [{} /iter]", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); accepted
            // and ignored, like a real harness would.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("mode", "fast").to_string(), "mode/fast");
    }

    #[test]
    fn groups_measure_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter_with_setup(|| vec![0u8; n as usize], |v| v.len())
        });
        group.finish();
        assert!(runs > 0);
    }
}
