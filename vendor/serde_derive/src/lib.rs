//! Offline stand-in for `serde_derive`.
//!
//! The derives are accepted (including `#[serde(...)]` helper attributes)
//! but expand to nothing: this workspace only needs the derive annotations
//! to compile, not actual serialization codegen. Types that require real
//! serialization implement the traits by hand.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
