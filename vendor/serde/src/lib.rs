//! Offline stand-in for `serde`.
//!
//! Exposes the trait surface the workspace's manual impls rely on
//! (`Serialize`/`Serializer` with `serialize_str`, `Deserialize`/
//! `Deserializer` with `deserialize_str`, and `de::{Visitor, Error}`),
//! plus the no-op derives from the stand-in `serde_derive` when the
//! `derive` feature is enabled. There is no data format behind it; the
//! traits exist so annotated types compile unchanged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can describe itself to a [`Serializer`].
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format sink (string-only subset).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A type constructible from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format source (string-only subset).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Asks the format for a string and feeds it to `visitor`.
    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Serialization-side helper traits.
pub mod ser {
    use std::fmt;

    /// Errors a [`Serializer`](crate::Serializer) can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side helper traits.
pub mod de {
    use std::fmt;

    /// Errors a [`Deserializer`](crate::Deserializer) can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Drives construction of a value from format primitives.
    pub trait Visitor<'de>: Sized {
        /// The value being built.
        type Value;

        /// Describes what this visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits a borrowed string.
        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom(ExpectedDisplay(&self)))
        }
    }

    struct ExpectedDisplay<'a, V>(&'a V);

    impl<'de, V: Visitor<'de>> fmt::Display for ExpectedDisplay<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "invalid type: expected ")?;
            self.0.expecting(f)
        }
    }
}

/// A ready-made string serializer/deserializer pair so the trait surface
/// is exercisable in tests without an external data format.
pub mod strfmt {
    use super::{de, ser, Deserializer, Serializer};
    use std::fmt;

    /// Error type for [`StrSerializer`]/[`StrDeserializer`].
    #[derive(Debug)]
    pub struct StrError(pub String);

    impl fmt::Display for StrError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for StrError {}

    impl ser::Error for StrError {
        fn custom<T: fmt::Display>(msg: T) -> StrError {
            StrError(msg.to_string())
        }
    }

    impl de::Error for StrError {
        fn custom<T: fmt::Display>(msg: T) -> StrError {
            StrError(msg.to_string())
        }
    }

    /// Serializes a value to its string form (string-only formats).
    pub struct StrSerializer;

    impl Serializer for StrSerializer {
        type Ok = String;
        type Error = StrError;

        fn serialize_str(self, v: &str) -> Result<String, StrError> {
            Ok(v.to_string())
        }
    }

    /// Deserializes a value from a borrowed string.
    pub struct StrDeserializer<'de>(pub &'de str);

    impl<'de> Deserializer<'de> for StrDeserializer<'de> {
        type Error = StrError;

        fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, StrError> {
            visitor.visit_str(self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::strfmt::{StrDeserializer, StrSerializer};
    use super::*;

    struct Tag(String);

    impl Serialize for Tag {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(&self.0)
        }
    }

    impl<'de> Deserialize<'de> for Tag {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Tag, D::Error> {
            struct V;
            impl de::Visitor<'_> for V {
                type Value = Tag;
                fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("a tag string")
                }
                fn visit_str<E: de::Error>(self, v: &str) -> Result<Tag, E> {
                    Ok(Tag(v.to_string()))
                }
            }
            deserializer.deserialize_str(V)
        }
    }

    #[test]
    fn string_roundtrip() {
        let out = Tag("root".into()).serialize(StrSerializer).unwrap();
        assert_eq!(out, "root");
        let back = Tag::deserialize(StrDeserializer(&out)).unwrap();
        assert_eq!(back.0, "root");
    }
}
