//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! integer-range, tuple, `collection::vec`, `any::<T>()`, `prop::bool::ANY`,
//! and character-class string strategies, plus the `proptest!` /
//! `prop_assert*` macros. Cases are generated deterministically (seeded from
//! the test's module path), with no shrinking — a failing case panics with
//! the ordinary assert message.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases each `proptest!`-generated test runs.
pub const CASES: usize = 48;

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's fully qualified name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed workspace seed so the
        // stream is stable across runs and machines.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x1993_0601_c0fe_ee00,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A string-pattern strategy: `&str` patterns of the form `[class]{lo,hi}`
/// generate strings of `lo..=hi` characters drawn from the class (which may
/// contain `a-z`-style ranges and literal characters).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
///
/// # Panics
///
/// Panics on patterns outside this shape; the stand-in supports only the
/// character-class form used by this workspace's tests.
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string pattern: {pattern:?}"));
    let (class, rest) = inner;
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern: {pattern:?}"));
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "bad range {a}-{b} in pattern {pattern:?}");
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    (alphabet, lo, hi)
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for an unbiased boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s; see [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy for vectors whose length lies in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    /// Module-style access to strategy families (`prop::bool::ANY`, …).
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function runs [`CASES`] deterministic cases; a failing
/// `prop_assert*` panics with the ordinary assertion message (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..$crate::CASES {
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = __strategies;
                        ($($crate::Strategy::generate($arg, &mut __rng),)+)
                    };
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { assert!($cond, $($arg)+) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_eq!($left, $right, $($arg)+) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_ne!($left, $right, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = crate::TestRng::for_test("string_patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9_.-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let strat = (0u8..10, crate::collection::vec(0usize..5, 1..4));
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&strat, &mut a),
                Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        /// The macro itself: args bind, ranges hold, bools vary.
        #[test]
        fn macro_smoke(
            n in 3usize..9,
            flags in crate::collection::vec(prop::bool::ANY, 0..6),
            pair in (0u8..4, any::<bool>()),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(flags.len() < 6);
            prop_assert_ne!(pair.0, 9, "class bound");
            prop_assert_eq!(pair.0 < 4, true);
        }
    }
}
