//! The subset of `crossbeam::channel` this workspace consumes.
//!
//! [`unbounded`] creates a multi-producer multi-consumer FIFO: both ends
//! are cloneable, every message is delivered to exactly one receiver, and
//! receivers observe disconnection once all senders are dropped (and vice
//! versa). Built on `Mutex<VecDeque>` + `Condvar` — not lock-free like the
//! real crate, but API- and semantics-compatible for the call sites here,
//! and entirely offline.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Shared channel state: the queue plus live-endpoint counts.
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message arrives or the last sender disconnects.
    ready: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The error returned by [`Sender::send`] when every receiver has been
/// dropped; carries the undelivered message.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// The error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready (senders may still produce one).
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half; cloneable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one waiting receiver.
    ///
    /// # Errors
    ///
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.inner.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            // Wake every blocked receiver so they observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloneable for multiple consumers. Each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or all senders are gone.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).expect("channel lock");
        }
    }

    /// Pops a message if one is ready, without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued but senders remain;
    /// [`TryRecvError::Disconnected`] once the channel can never produce
    /// another message.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        match inner.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// A blocking iterator over received messages; ends at disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.inner.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("channel lock").receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = unbounded::<u64>();
        let n_workers = 4;
        let per_producer = 100u64;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                let rx = rx.clone();
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..per_producer {
                        tx.send(w * per_producer + i).unwrap();
                    }
                    drop(tx);
                    rx.iter().sum::<u64>()
                })
            })
            .collect();
        drop(tx);
        drop(rx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let n = n_workers * per_producer;
        assert_eq!(total, n * (n - 1) / 2);
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = unbounded::<()>();
        let h = thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_all_receivers_dropped() {
        let (tx, rx) = unbounded::<u8>();
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
