//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` with crossbeam's call shape (the spawn
//! closure receives a `&Scope` argument, `scope` returns a `Result`),
//! implemented on top of `std::thread::scope`, and the subset of
//! `crossbeam::channel` this workspace consumes (cloneable MPMC
//! [`channel::Sender`]/[`channel::Receiver`] from [`channel::unbounded`]),
//! implemented on `Mutex<VecDeque>` + `Condvar`.

pub mod channel;

use std::thread;

/// A scope handle passed to [`scope`]'s closure and to spawned closures.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, like
    /// crossbeam's API (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Handle to a scoped thread; join to retrieve its result.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// Always returns `Ok`: panics in scoped threads surface through
/// `ScopedJoinHandle::join` (or propagate when unjoined, per std
/// semantics), matching how this workspace consumes the API.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
