//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library locks behind `parking_lot`'s non-poisoning
//! API surface (the subset this workspace uses). Poisoned locks are
//! recovered by taking the inner guard, matching `parking_lot`'s behavior
//! of not propagating panics through lock acquisition.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::<u8>::new());
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![3]);
    }
}
