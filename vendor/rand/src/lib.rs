//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides a deterministic [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`Rng`]/[`SeedableRng`] traits with the 0.9-style
//! `random`/`random_range` methods, and [`seq::SliceRandom::shuffle`].
//! The stream is fixed by this implementation — all determinism guarantees
//! in the workspace are relative to it, not to upstream `rand`.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the simulation workloads here.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing random-value methods (rand 0.9 naming).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Guard against an all-zero state (cannot occur from splitmix64
            // in practice, but keep the generator well-defined).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v;
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
